"""§5 future work: PARMONC on GPU and hybrid clusters, modelled.

The paper closes with "it is desirable to adapt the PARMONC to modern
powerful GPU computer clusters and, also, to hybrid computer clusters".
This bench runs that adaptation on the simulator: nodes with batch
accelerators (kernel-launch overhead + per-realization speedup), pure
GPU clusters, and mixed CPU+GPU clusters with throughput-proportional
work dealing.  The protocol is untouched — cumulative moment passes per
batch — demonstrating that the PARMONC design carries over.
"""

from __future__ import annotations

import pytest

from repro.cluster import Accelerator, ClusterSpec, DurationModel, \
    proportional_quotas
from repro.runtime.config import RunConfig
from repro.runtime.simcluster import run_simcluster

TAU = 7.7
GPU = Accelerator(batch=256, speedup=50.0, launch_overhead=5e-3)


def run(maxsv, processors, accelerators=None, quotas=None):
    spec = ClusterSpec(duration_model=DurationModel(mean=TAU),
                       accelerators=accelerators)
    return run_simcluster(
        None, RunConfig(maxsv=maxsv, processors=processors, perpass=0.0,
                        peraver=600.0),
        spec=spec, use_files=False, execute_realizations=False,
        quotas=quotas)


def test_gpu_cluster_scaling(benchmark, reporter):
    """A pure GPU cluster keeps the Fig. 2 linearity, rescaled."""
    def sweep():
        rows = {}
        for m in (1, 2, 4, 8):
            rows[m] = run(8192 * m, m, accelerators=(GPU,) * m)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line(f"GPU cluster (batch {GPU.batch}, {GPU.speedup:.0f}x, "
                  f"{GPU.launch_overhead * 1e3:.0f} ms launch), weak "
                  f"scaling: L = 8192 per node")
    reporter.line("   M       L    T_comp (s)   per-realization (ms)")
    per_node_time = None
    for m, result in rows.items():
        per_real = result.virtual_time / (8192 * m) * m * 1e3
        reporter.line(f"{m:4d}  {8192 * m:6d}  {result.virtual_time:10.1f}"
                      f"   {per_real:10.2f}")
        if per_node_time is None:
            per_node_time = result.virtual_time
        # Weak scaling: constant time per node as M grows.
        assert result.virtual_time == pytest.approx(per_node_time,
                                                    rel=0.02)
    reporter.line("weak scaling flat: the asynchronous protocol carries "
                  "over to GPU nodes unchanged  [future work modelled]")


def test_gpu_vs_cpu_throughput(benchmark, reporter):
    def compare():
        cpu = run(2048, 8)
        gpu = run(2048, 8, accelerators=(GPU,) * 8)
        return cpu, gpu

    cpu, gpu = benchmark.pedantic(compare, rounds=1, iterations=1)
    gain = cpu.virtual_time / gpu.virtual_time
    reporter.line("8 CPU nodes vs 8 GPU nodes, L = 2048, tau = 7.7s")
    reporter.line(f"CPU cluster T_comp : {cpu.virtual_time:10.1f} s")
    reporter.line(f"GPU cluster T_comp : {gpu.virtual_time:10.1f} s")
    reporter.line(f"gain               : {gain:10.1f}x "
                  f"(device speedup {GPU.speedup:.0f}x)")
    assert gain == pytest.approx(GPU.speedup, rel=0.15)
    reporter.line("cluster-level gain tracks the device speedup; batch "
                  "moment passes add negligible overhead")


def test_hybrid_cluster_dealing(benchmark, reporter):
    """Mixed CPU+GPU: proportional dealing recovers combined throughput."""
    accelerators = (GPU, GPU, None, None, None, None)

    def compare():
        maxsv = 4096
        even = run(maxsv, 6, accelerators=accelerators)
        weights = [GPU.speedup, GPU.speedup, 1.0, 1.0, 1.0, 1.0]
        weighted = run(maxsv, 6, accelerators=accelerators,
                       quotas=proportional_quotas(maxsv, weights))
        return even, weighted

    even, weighted = benchmark.pedantic(compare, rounds=1, iterations=1)
    combined_throughput = (2 * GPU.speedup + 4) / TAU
    ideal = 4096 / combined_throughput
    reporter.line("hybrid cluster: 2 GPU + 4 CPU nodes, L = 4096")
    reporter.line(f"even dealing         : T_comp = "
                  f"{even.virtual_time:9.1f} s (CPU-bound)")
    reporter.line(f"proportional dealing : T_comp = "
                  f"{weighted.virtual_time:9.1f} s")
    reporter.line(f"combined-throughput ideal: {ideal:9.1f} s")
    assert weighted.virtual_time < even.virtual_time / 10
    assert weighted.virtual_time == pytest.approx(ideal, rel=0.1)
    reporter.line("hybrid deployment works with throughput-proportional "
                  "work dealing; the estimator handles unequal volumes "
                  "by formula (5)  [future work modelled]")


def test_batch_size_tradeoff(benchmark, reporter):
    """The GPU port's one tuning knob: batch width vs launch overhead."""
    def sweep():
        rows = {}
        for batch in (1, 16, 256, 4096):
            accelerator = Accelerator(batch=batch, speedup=50.0,
                                      launch_overhead=0.1)
            rows[batch] = run(8192, 1, accelerators=(accelerator,))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("batch-width ablation, 1 GPU node, L = 8192, "
                  "launch overhead 100 ms")
    reporter.line("  batch    T_comp (s)    device efficiency")
    asymptote = 8192 * TAU / 50.0
    for batch, result in rows.items():
        efficiency = asymptote / result.virtual_time
        reporter.line(f"{batch:7d}  {result.virtual_time:10.1f}   "
                      f"{efficiency:10.3f}")
    assert rows[1].virtual_time > 1.5 * rows[4096].virtual_time
    assert asymptote / rows[4096].virtual_time > 0.95
    reporter.line("small batches drown in launch overhead; large batches "
                  "reach the device's asymptotic throughput  [mapped]")
