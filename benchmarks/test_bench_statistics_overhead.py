"""Cost of piggybacking extra statistics on the batched engine.

The generalized exchange (ISSUE 5) lets covariance, histogram and
extrema snapshots ride along on every data pass.  The promise: for a
small realization matrix the extra accumulation work is marginal —
under 10% of batched throughput for histogram+covariance — because the
batched fast path feeds each statistic whole ``(B, nrow, ncol)`` stacks
and the per-pass snapshot cost is amortized over ``perpass`` seconds'
worth of realizations.

The workload is a vectorized affine kernel on a 1x2 matrix (the
covariance state is 2x2, the histogram 2x66 — realistic "summarize a
small response vector" territory).  A 1000x2 covariance would build a
2000x2000 outer product per fold and is deliberately out of scope: the
nbytes model and ``docs/performance.md`` tell users to keep covariance
for small matrices.

Measuring the overhead as a ratio of two separately timed runs is
hopeless on a shared container — wall clock *and* process time swing
tens of percent with CPU steal and memory-bandwidth contention, far
above the effect being measured.  Instead the asserted figure is
measured **inside a single run**: the extra statistics' update and
snapshot calls are timed in situ, and the overhead is their share of
the rest of that same run, so numerator and denominator experience
identical machine conditions.  End-to-end throughput of separate runs
is still reported (with a deliberately loose cross-check ceiling) and
the JSON artifact records every figure.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.runtime.config import RunConfig
from repro.runtime.sequential import run_sequential
from repro.runtime.worker import batch_routine
from repro.stats.statistic import (
    Counter,
    Covariance,
    Extrema,
    Histogram,
    StatisticSet,
)

SMOKE = bool(os.environ.get("PARMONC_BENCH_SMOKE"))

MAXSV = 8_192 if SMOKE else 65_536
BATCH = 256 if SMOKE else 1_024
REPEATS = 2 if SMOKE else 5

# Ceiling for the in-situ histogram+covariance share of a batched run.
# The issue's target is <10%; smoke mode uses tiny batches where fixed
# per-batch costs weigh more, so it gets headroom.
OVERHEAD_CEILING = 0.25 if SMOKE else 0.10
# Loose cross-check on the ratio of separately timed end-to-end runs —
# only there to catch gross regressions, since run-to-run machine
# noise alone can exceed the real effect several times over.
END_TO_END_CEILING = 0.50

_EXTRA_CLASSES = (Histogram, Covariance, Extrema, Counter)


@batch_routine(BATCH)
def affine_pair(streams):
    """Vectorized (B, 1, 2) kernel from two base uniforms per stream."""
    uniforms = streams.uniforms(2)
    block = np.empty((uniforms.shape[0], 1, 2))
    block[:, 0, 0] = 0.5 + uniforms[:, 0]
    block[:, 0, 1] = uniforms[:, 1] * 2.0 - 1.0
    return block


def _config(statistics) -> RunConfig:
    return RunConfig(maxsv=MAXSV, nrow=1, ncol=2, perpass=0.0,
                     seqnum=1, statistics=statistics)


class _ExtrasTimer:
    """Times extra-statistic work in situ via patched hot methods.

    Wraps every extra statistic's ``_update`` and the set's
    ``extras_snapshot`` so their total time within one engine run can
    be compared against the rest of that same run.  The timer calls
    themselves land in the measured (numerator) side, biasing the
    ratio slightly upward — conservative for an upper-bound assert.
    """

    def __init__(self):
        self.seconds = 0.0
        self._originals = []

    def _wrap(self, function):
        def timed(*args, **kwargs):
            started = time.perf_counter()
            result = function(*args, **kwargs)
            self.seconds += time.perf_counter() - started
            return result
        return timed

    def __enter__(self):
        for cls in _EXTRA_CLASSES:
            self._originals.append((cls, "_update", cls._update))
            cls._update = self._wrap(cls._update)
        self._originals.append(
            (StatisticSet, "extras_snapshot", StatisticSet.extras_snapshot))
        StatisticSet.extras_snapshot = self._wrap(
            StatisticSet.extras_snapshot)
        return self

    def __exit__(self, *exc):
        for cls, name, original in self._originals:
            setattr(cls, name, original)
        self._originals.clear()
        return False


def _measured_run(statistics):
    """One run: (result, wall seconds, in-situ extras seconds)."""
    with _ExtrasTimer() as timer:
        started = time.perf_counter()
        result = run_sequential(affine_pair, _config(statistics),
                                use_files=False)
        wall = time.perf_counter() - started
    return result, wall, timer.seconds


def test_statistics_piggyback_overhead(reporter):
    reporter.line("Extra-statistic piggybacking on the batched engine")
    reporter.line(f"workload: affine 1x2, maxsv={MAXSV}, batch={BATCH}, "
                  f"perpass=0 (a pass per realization)")
    reporter.line("")

    configurations = (
        ("moments",),
        ("moments", "histogram", "covariance"),
        ("moments", "histogram", "covariance", "extrema", "counter"))
    results = [None] * len(configurations)
    walls = [None] * len(configurations)
    shares = [None] * len(configurations)
    for _ in range(REPEATS):
        for index, statistics in enumerate(configurations):
            result, wall, extras = _measured_run(statistics)
            share = extras / (wall - extras)
            results[index] = result
            if walls[index] is None or wall < walls[index]:
                walls[index] = wall
            if shares[index] is None or share < shares[index]:
                shares[index] = share
    (baseline, loaded, full) = results
    overhead = shares[1]
    full_overhead = shares[2]
    end_to_end = walls[1] / walls[0] - 1.0

    identical = np.array_equal(baseline.estimates.mean,
                               loaded.estimates.mean)

    for label, wall, extra in (
            ("moments only        ", walls[0], 0.0),
            ("+histogram+covariance", walls[1], overhead),
            ("+extrema+counter     ", walls[2], full_overhead)):
        reporter.line(f"{label}  {MAXSV / wall:9.0f} r/s   "
                      f"in-situ overhead {extra * 100:6.2f}%")
    reporter.line("")
    reporter.line(f"end-to-end wall ratio (noisy): "
                  f"{end_to_end * 100:+.2f}%")
    reporter.line(f"moment estimates bit-identical with extras riding "
                  f"along: {identical}")

    reporter.metric("maxsv", MAXSV)
    reporter.metric("batch", BATCH)
    reporter.metric("baseline_rps", MAXSV / walls[0])
    reporter.metric("hist_cov_rps", MAXSV / walls[1])
    reporter.metric("all_extras_rps", MAXSV / walls[2])
    reporter.metric("hist_cov_overhead", overhead)
    reporter.metric("all_extras_overhead", full_overhead)
    reporter.metric("end_to_end_ratio", end_to_end)
    reporter.metric("bit_identical", bool(identical))

    assert identical, "extras must not perturb the moment estimates"
    assert loaded.statistics["histogram"].volume == MAXSV
    assert loaded.statistics["covariance"].volume == MAXSV
    assert overhead < OVERHEAD_CEILING, (
        f"histogram+covariance cost {overhead * 100:.1f}% of batched "
        f"throughput (ceiling {OVERHEAD_CEILING * 100:.0f}%)")
    assert end_to_end < END_TO_END_CEILING, (
        f"end-to-end slowdown {end_to_end * 100:.1f}% exceeds the "
        f"gross-regression guard {END_TO_END_CEILING * 100:.0f}%")
