"""Scalar vs batched engine throughput on the paper's 1000x2 workload.

The paper's Fig. 2 performance test runs a cheap realization routine
under the strictest data-pass condition (``perpass=0``: a pass to the
collector after every realization) and asks what the library itself
costs.  This benchmark reproduces that condition on one processor and
compares the scalar inner loop against the batched fast path
(:func:`repro.runtime.worker.batch_routine`), asserting that both
produce bit-identical mean/error matrices.

Two workloads are measured:

* ``overhead`` — the routine returns a precomputed constant matrix
  (after consuming one base random number), so the measured time is
  pure engine overhead: stream placement, accumulation, data passes.
  This is the Fig. 2 condition, and where batching helps most.
* ``affine`` — the routine computes ``u * BASE + v * SLOPE`` from two
  base random numbers, writing a fresh 1000x2 matrix per realization.
  The kernel's memory traffic is paid by both paths, so the speedup is
  smaller; this workload is the non-trivial bit-identity check (the
  estimates depend on every drawn uniform).

Wall-clock on shared machines is noisy (CPU steal on this container
swings single-run throughput by ~30%), so each path is timed several
times and the best run is kept; the speedup floor asserted here is
deliberately below the typical measurement, which lands in the JSON
artifact for trend tracking.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.runtime.config import RunConfig
from repro.runtime.sequential import run_sequential
from repro.runtime.worker import batch_routine

SMOKE = bool(os.environ.get("PARMONC_BENCH_SMOKE"))

MAXSV = 2_048 if SMOKE else 16_384
BATCH = 128 if SMOKE else 512
REPEATS = 1 if SMOKE else 5

# Asserted floors: low enough to never flake on a noisy or slow
# machine, while the JSON artifact records the actual figure (typically
# 3.5-5.5x for the overhead workload on this container; the engine's
# target from ISSUE 2 is 5x, reached when the machine is quiet).
OVERHEAD_FLOOR = 1.0 if SMOKE else 2.5
AFFINE_FLOOR = 1.0

_BASE = np.linspace(0.5, 1.5, 2_000).reshape(1_000, 2)
_SLOPE = np.linspace(-0.25, 0.25, 2_000).reshape(1_000, 2)
_BASE_FLAT = np.ascontiguousarray(_BASE.ravel())
_SLOPE_FLAT = np.ascontiguousarray(_SLOPE.ravel())


def _config() -> RunConfig:
    return RunConfig(maxsv=MAXSV, nrow=1_000, ncol=2, perpass=0.0,
                     seqnum=1)


def _timed_run(routine):
    """Best wall time over REPEATS in-memory runs of ``routine``."""
    best = None
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_sequential(routine, _config(), use_files=False)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _identical(a, b) -> bool:
    return (np.array_equal(a.estimates.mean, b.estimates.mean)
            and np.array_equal(a.estimates.abs_error,
                               b.estimates.abs_error))


def _report(reporter, label, scalar_time, batched_time, identical):
    scalar_rps = MAXSV / scalar_time
    batched_rps = MAXSV / batched_time
    speedup = scalar_time / batched_time
    reporter.line(f"{label}: scalar {scalar_rps:9.0f} r/s   "
                  f"batched {batched_rps:9.0f} r/s   "
                  f"speedup {speedup:4.2f}x   "
                  f"bit-identical={identical}")
    reporter.metric(f"{label}_scalar_rps", round(scalar_rps, 1))
    reporter.metric(f"{label}_batched_rps", round(batched_rps, 1))
    reporter.metric(f"{label}_speedup", round(speedup, 3))
    reporter.metric(f"{label}_bit_identical", bool(identical))
    return speedup


def test_overhead_workload_speedup(reporter):
    """Fig. 2 condition: constant realization, perpass=0, one worker."""

    def scalar(rng):
        rng.random()
        return _BASE

    block = np.broadcast_to(_BASE, (BATCH, 1_000, 2))

    @batch_routine(BATCH)
    def batched(streams):
        streams.uniforms(1)
        return block[:len(streams)]

    scalar_result, scalar_time = _timed_run(scalar)
    batched_result, batched_time = _timed_run(batched)
    identical = _identical(scalar_result, batched_result)

    reporter.line("overhead workload: cheap routine (constant 1000x2 "
                  "matrix), perpass=0 — pure engine cost")
    speedup = _report(reporter, "overhead", scalar_time, batched_time,
                      identical)
    reporter.metric("maxsv", MAXSV)
    reporter.metric("batch_size", BATCH)
    reporter.metric("repeats", REPEATS)
    reporter.metric("target_speedup", 5.0)
    reporter.metric("smoke", SMOKE)

    assert identical, "batched estimates diverged from scalar"
    assert scalar_result.total_volume == MAXSV
    assert batched_result.total_volume == MAXSV
    assert speedup >= OVERHEAD_FLOOR, (
        f"batched path only {speedup:.2f}x faster "
        f"(floor {OVERHEAD_FLOOR}x)")


def test_affine_workload_bit_identity(reporter):
    """Random 1000x2 matrices: estimates must match bit for bit."""

    def scalar(rng):
        return _BASE * rng.random() + _SLOPE * rng.random()

    out = np.empty((BATCH, 2_000))
    tmp = np.empty((BATCH, 2_000))

    @batch_routine(BATCH)
    def batched(streams):
        uniforms = streams.uniforms(2)
        width = len(streams)
        left = out[:width]
        right = tmp[:width]
        np.multiply(uniforms[:, 0:1], _BASE_FLAT, out=left)
        np.multiply(uniforms[:, 1:2], _SLOPE_FLAT, out=right)
        np.add(left, right, out=left)
        return left.reshape(width, 1_000, 2)

    scalar_result, scalar_time = _timed_run(scalar)
    batched_result, batched_time = _timed_run(batched)
    identical = _identical(scalar_result, batched_result)

    reporter.line("affine workload: u*BASE + v*SLOPE per realization — "
                  "kernel traffic paid by both paths")
    speedup = _report(reporter, "affine", scalar_time, batched_time,
                      identical)

    assert identical, "batched estimates diverged from scalar"
    assert speedup >= AFFINE_FLOOR, (
        f"batched path slower than scalar ({speedup:.2f}x)")
