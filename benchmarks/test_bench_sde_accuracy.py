"""§4 numeric check: the diffusion estimates converge to the exact mean.

The paper's performance-test problem is also a correctness oracle: for
the additive SDE, E y_j(t_i) = y_j(0) + C_j t_i exactly, and the
PARMONC error matrices must bracket the deviation at the advertised
3-sigma level.  Runs the workload at reduced scale (coarser mesh,
shorter horizon) — the statistical structure is scale-free.
"""

from __future__ import annotations

import numpy as np

from repro import parmonc
from repro.apps.sde import EulerSpec, make_paper_realization, paper_system


def run_accuracy(volume: int):
    spec = EulerSpec(mesh=0.02, t_max=4.0, n_output=40)
    system = paper_system()
    result = parmonc(make_paper_realization(spec, system),
                     nrow=spec.n_output, ncol=system.dimension,
                     maxsv=volume, processors=4, use_files=False)
    return spec, system, result


def test_sde_estimates_converge(benchmark, reporter):
    spec, system, result = benchmark.pedantic(
        run_accuracy, args=(600,), rounds=1, iterations=1)
    estimates = result.estimates
    exact = system.exact_mean(spec.output_times)
    deviation = np.abs(estimates.mean - exact)
    coverage = float(np.mean(deviation <= estimates.abs_error + 1e-12))
    worst_rows = (9, 19, 39)
    reporter.line("§4 SDE diffusion: estimates vs exact E y_j(t_i) "
                  f"(L = {result.total_volume})")
    reporter.line("   t    E y1 est   exact     eps1     "
                  "E y2 est   exact     eps2")
    for row in worst_rows:
        t = spec.output_times[row]
        reporter.line(
            f"{t:5.1f}  {estimates.mean[row, 0]:9.4f}  "
            f"{exact[row, 0]:7.4f}  {estimates.abs_error[row, 0]:7.4f}  "
            f"{estimates.mean[row, 1]:9.4f}  {exact[row, 1]:7.4f}  "
            f"{estimates.abs_error[row, 1]:7.4f}")
    reporter.line(f"3-sigma coverage over all {exact.size} entries: "
                  f"{coverage * 100:.1f}% (paper promises ~99.7%)")
    assert coverage > 0.95
    # Deviations actually shrink with the sample volume.
    _, _, small = run_accuracy(100)
    assert estimates.abs_error_max < small.estimates.abs_error_max
    reporter.line("errors shrink as L grows  [reproduced]")


def test_sde_error_scaling(benchmark, reporter):
    """eps = 3 sigma / sqrt(L): quadrupling L halves the error bound."""
    def sweep():
        return {volume: run_accuracy(volume)[2].estimates.abs_error_max
                for volume in (100, 400, 1600)}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("absolute-error upper bound vs sample volume")
    reporter.line("     L    eps_max")
    for volume, eps in errors.items():
        reporter.line(f"{volume:6d}  {eps:9.5f}")
    ratio1 = errors[100] / errors[400]
    ratio2 = errors[400] / errors[1600]
    reporter.line(f"error ratios for 4x volume: {ratio1:.2f}, {ratio2:.2f} "
                  f"(theory: 2.00)")
    assert 1.6 < ratio1 < 2.5
    assert 1.6 < ratio2 < 2.5
