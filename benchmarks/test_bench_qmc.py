"""RQMC-within-PARMONC: the convergence-rate crossover.

An extension experiment: each PARMONC realization is one randomized-QMC
batch (Cranley–Patterson shift from the realization's substream), so
the library's error machinery applies unchanged while the per-batch
error decays near ``N^-1`` for smooth integrands — versus the plain
Monte Carlo batch's ``N^-1/2``.  The bench prints both scaling curves
and the effective sample-size multiplier RQMC buys at each batch size.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import parmonc
from repro.qmc import mc_batch_realization, rqmc_halton_realization

EXACT = (math.e - 1.0) * math.sin(1.0)
BATCHES = (16, 64, 256, 1024)
REPLICATES = 40


def integrand(x):
    return math.exp(x[0]) * math.cos(x[1])


def sweep():
    rows = {}
    for batch in BATCHES:
        mc = parmonc(mc_batch_realization(integrand, 2, batch),
                     maxsv=REPLICATES, use_files=False).estimates
        rqmc = parmonc(rqmc_halton_realization(integrand, 2, batch),
                       maxsv=REPLICATES, use_files=False).estimates
        rows[batch] = (math.sqrt(mc.variance[0, 0]),
                       math.sqrt(rqmc.variance[0, 0]))
    return rows


def test_rqmc_convergence_crossover(benchmark, reporter):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line(f"per-batch standard deviation, {REPLICATES} "
                  f"independent replicates each (smooth 2-D integrand)")
    reporter.line("  batch N    MC sigma    RQMC sigma   RQMC gain")
    for batch, (mc_sigma, rqmc_sigma) in rows.items():
        gain = (mc_sigma / rqmc_sigma) ** 2
        reporter.line(f"{batch:9d}  {mc_sigma:10.2e}  {rqmc_sigma:10.2e}"
                      f"  {gain:9.0f}x")
    # Empirical convergence orders from the endpoints.
    span = math.log(BATCHES[-1] / BATCHES[0])
    mc_order = math.log(rows[BATCHES[0]][0]
                        / rows[BATCHES[-1]][0]) / span
    rqmc_order = math.log(rows[BATCHES[0]][1]
                          / rows[BATCHES[-1]][1]) / span
    reporter.line(f"empirical orders: MC N^-{mc_order:.2f} "
                  f"(theory 0.5), RQMC N^-{rqmc_order:.2f} "
                  f"(theory ~1 for shifted Halton)")
    assert 0.3 < mc_order < 0.7
    assert rqmc_order > 0.75
    # At N = 1024 the variance gain is at least two orders of magnitude.
    final_gain = (rows[1024][0] / rows[1024][1]) ** 2
    assert final_gain > 100
    reporter.line("RQMC realizations plug into the PARMONC estimator "
                  "unchanged and dominate for smooth integrands  "
                  "[extension]")


def test_unbiasedness_under_parallel_runtime(benchmark, reporter):
    """RQMC batches stay unbiased across processors and sessions."""
    def run():
        return parmonc(rqmc_halton_realization(integrand, 2, 128),
                       maxsv=64, processors=4, use_files=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    estimates = result.estimates
    reporter.line(f"4-processor RQMC run: mean = "
                  f"{estimates.mean[0, 0]:.6f} (exact {EXACT:.6f}), "
                  f"eps = {estimates.abs_error[0, 0]:.2e}")
    assert abs(estimates.mean[0, 0] - EXACT) \
        <= 4 * estimates.abs_error[0, 0] + 1e-9
    reporter.line("independent shifts per realization substream keep "
                  "the parallel estimator exact  [extension]")
