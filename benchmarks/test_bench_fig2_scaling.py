"""Fig. 2 (a-d): T_comp(L) for M = 1 .. 512 under strictest exchange.

The paper's only evaluation figure.  Conditions reproduced exactly as
described in §4:

* mean computer time per realization tau = 7.7 s;
* every processor passes ~120 KB of subtotal moments to the 0-th
  processor after EVERY realization ("strictest conditions");
* T_comp is evaluated after the 0-th processor has received, averaged
  and saved the data.

Claim to reproduce: "for all the values of L the speedup of
parallelization is in direct proportion to the number of processors" —
i.e. each panel's curves are linear in L with slope proportional to
1/M.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.machine import DurationModel
from repro.cluster.simulation import ClusterSpec
from repro.runtime.config import RunConfig
from repro.runtime.messages import message_bytes
from repro.runtime.simcluster import run_simcluster

TAU = 7.7
#: The four panels of Fig. 2: processor sets and total sample volumes.
PANELS = {
    "a": ((1, 8), (200, 400, 600, 800, 1000)),
    "b": ((8, 16, 32), (1500, 3000, 4500, 6000, 7500)),
    "c": ((32, 64, 128), (5000, 10000, 15000, 20000, 25000)),
    "d": ((128, 256, 512), (15000, 30000, 45000, 60000, 75000)),
}


def paper_spec() -> ClusterSpec:
    """The §4 rig: fixed tau = 7.7 s, ~120 KB messages."""
    return ClusterSpec(
        duration_model=DurationModel(mean=TAU, distribution="fixed"),
        message_bytes=message_bytes(1000, 2),
        collector_service_time=200e-6)


def t_comp(processors: int, volume: int) -> float:
    """One Fig. 2 data point: virtual seconds to complete the sample."""
    result = run_simcluster(
        None,
        RunConfig(maxsv=volume, processors=processors, perpass=0.0,
                  peraver=600.0),
        spec=paper_spec(), use_files=False, execute_realizations=False)
    return result.virtual_time


def run_panel(panel: str) -> dict[int, list[float]]:
    processor_sets, volumes = PANELS[panel]
    return {m: [t_comp(m, volume) for volume in volumes]
            for m in processor_sets}


@pytest.mark.parametrize("panel", list(PANELS))
def test_fig2_panel(panel, benchmark, reporter):
    processor_sets, volumes = PANELS[panel]
    series = benchmark.pedantic(run_panel, args=(panel,), rounds=1,
                                iterations=1)
    reporter.line(f"Fig. 2{panel}: T_comp(L) in virtual seconds "
                  f"(tau = {TAU}s, pass after every realization)")
    header = "       L " + "".join(f"  M={m:<10d}" for m in processor_sets)
    reporter.line(header)
    for column, volume in enumerate(volumes):
        row = f"{volume:8d} " + "".join(
            f"  {series[m][column]:<11.1f}" for m in processor_sets)
        reporter.line(row)
    # --- the paper's claims, quantified -------------------------------
    for m in processor_sets:
        values = np.asarray(series[m])
        # (1) Linearity in L: a least-squares line through the points
        # leaves < 2% relative residual.
        coefficients = np.polyfit(volumes, values, 1)
        fitted = np.polyval(coefficients, volumes)
        residual = np.max(np.abs(fitted - values) / values)
        assert residual < 0.02, (panel, m, residual)
        # (2) The slope tracks tau / M within quota granularity.
        assert coefficients[0] == pytest.approx(TAU / m, rel=0.05), \
            (panel, m)
    # (3) Speedup proportional to M within each panel.
    base_m = processor_sets[0]
    for m in processor_sets[1:]:
        speedup = np.mean(np.asarray(series[base_m])
                          / np.asarray(series[m]))
        assert speedup == pytest.approx(m / base_m, rel=0.06), (panel, m)
    reporter.line(f"panel {panel}: linear in L, slope ~ tau/M, speedup "
                  f"proportional to M  [reproduced]")
    reporter.line()


def test_fig2_speedup_summary(benchmark, reporter):
    """Full-range speedup table, M = 1 .. 512 at a fixed L."""
    volume = 15_360  # divisible by every M up to 512

    def sweep():
        return {m: t_comp(m, volume)
                for m in (1, 8, 16, 32, 64, 128, 256, 512)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line(f"Fig. 2 summary: speedup at L = {volume}")
    reporter.line("   M    T_comp (s)    speedup   efficiency")
    for m, value in times.items():
        speedup = times[1] / value
        reporter.line(f"{m:4d}  {value:12.1f}  {speedup:9.2f}   "
                      f"{speedup / m:9.3f}")
        assert speedup / m > 0.93, (m, speedup)
    reporter.line("speedup stays proportional to M up to 512 processors "
                  "despite per-realization exchange  [reproduced]")
