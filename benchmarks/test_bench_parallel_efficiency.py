"""§2.2 optimality claims: cost reduction, no load balancing, exchange ablation.

Three prose claims of the parallelization section, quantified on the
simulated cluster:

1. "the value of C(zeta) is decreased by M times thus giving the
   optimal parallelization" — the measured cost tau_zeta * Var(zeta)
   drops by the processor count.
2. "There is also no need to use any load balancing techniques because
   all the processors work independently" — with a 4x speed spread,
   fast processors deliver proportionally more realizations when work
   is dealt dynamically-equivalently (here: quota ∝ speed), and the
   merged estimator handles the unequal l_m exactly.
3. The exchange-period ablation: perpass from 0 (every realization) to
   minutes changes message volume by orders of magnitude but T_comp by
   well under 1% — the reason the paper can afford its strictest test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.machine import DurationModel
from repro.cluster.simulation import (
    ClusterSimulation,
    ClusterSpec,
    proportional_quotas,
)
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.messages import message_bytes
from repro.runtime.simcluster import run_simcluster
from repro.stats.accumulator import MomentSnapshot

TAU = 7.7


def spec(**kwargs) -> ClusterSpec:
    kwargs.setdefault("duration_model",
                      DurationModel(mean=TAU, distribution="fixed"))
    kwargs.setdefault("message_bytes", message_bytes(1000, 2))
    return ClusterSpec(**kwargs)


def test_cost_reduction_by_m(benchmark, reporter):
    """Claim 1: C(zeta) = tau_zeta * Var(zeta) drops by M times."""
    def sweep():
        costs = {}
        for m in (1, 4, 16, 64):
            result = run_simcluster(
                None, RunConfig(maxsv=1024, processors=m, perpass=0.0,
                                peraver=600.0),
                spec=spec(), use_files=False,
                execute_realizations=False)
            # Effective per-realization wall time of the ensemble: the
            # variance is workload-fixed, so cost ∝ T_comp / L.
            costs[m] = result.virtual_time / result.session_volume
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("estimator cost per realization (virtual s) vs M")
    reporter.line("   M    tau_eff    reduction  (ideal = M)")
    for m, cost in costs.items():
        reduction = costs[1] / cost
        reporter.line(f"{m:4d}  {cost:9.4f}  {reduction:9.2f}")
        assert reduction == pytest.approx(m, rel=0.05)
    reporter.line("C(zeta) decreases by M times  [reproduced]")


def test_no_load_balancing_needed(benchmark, reporter):
    """Claim 2: heterogeneous processors, exact merged estimates anyway."""
    def run():
        speed_factors = (2.0, 1.0, 1.0, 0.5)
        # Deal work proportionally to speed (what dynamic self-scheduling
        # converges to): total 120 realizations.
        config = RunConfig(maxsv=120, processors=4, perpass=0.0,
                           peraver=600.0)
        quotas = proportional_quotas(120, speed_factors)
        cluster_spec = spec(speed_factors=speed_factors)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        simulation = ClusterSimulation(config, cluster_spec, collector,
                                       routine=lambda rng: rng.random(),
                                       quotas=quotas)
        result = simulation.run()
        return result, collector, quotas

    result, collector, quotas = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    reporter.line("heterogeneous cluster (speed factors 2.0/1.0/1.0/0.5), "
                  "work dealt proportionally")
    reporter.line("rank  speed  quota  finish-time share")
    finish = result.t_comp
    for rank, quota in enumerate(quotas):
        reporter.line(f"{rank:4d}  {[2.0, 1.0, 1.0, 0.5][rank]:5.1f}  "
                      f"{quota:5d}")
    reporter.line(f"T_comp = {finish:.1f}s vs ideal "
                  f"{sum(quotas) * TAU / 4.5:.1f}s")
    # All processors finish within 10% of each other => no balancing
    # needed beyond proportional dealing.
    assert finish <= sum(quotas) * TAU / 4.5 * 1.10
    # The merged estimator used the unequal volumes exactly.
    estimates = collector.estimates()
    assert estimates.volume == sum(quotas)
    assert abs(estimates.mean[0, 0] - 0.5) < 5 * estimates.abs_error[0, 0]
    reporter.line("unequal per-processor volumes merge exactly "
                  "(formula (5)); no load balancer required  [reproduced]")


def test_exchange_period_ablation(benchmark, reporter):
    """Claim 3: even per-realization exchange costs (almost) nothing."""
    def sweep():
        rows = {}
        for perpass in (0.0, 60.0, 600.0):
            result = run_simcluster(
                None, RunConfig(maxsv=2048, processors=32,
                                perpass=perpass, peraver=600.0),
                spec=spec(), use_files=False,
                execute_realizations=False)
            rows[perpass] = result
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("exchange-period ablation, M = 32, L = 2048")
    reporter.line("perpass (s)   messages   T_comp (s)")
    baseline = rows[600.0].virtual_time
    for perpass, result in rows.items():
        label = "every realization" if perpass == 0.0 else f"{perpass:.0f}"
        reporter.line(f"{label:>17s}   {result.messages_received:8d}   "
                      f"{result.virtual_time:10.1f}")
    overhead = rows[0.0].virtual_time / baseline - 1.0
    assert rows[0.0].messages_received > 10 * rows[600.0].messages_received
    assert overhead < 0.01
    reporter.line(f"per-realization exchange inflates T_comp by "
                  f"{overhead * 100:.3f}% — negligible, as §2.2 argues  "
                  f"[reproduced]")


def test_network_sensitivity(benchmark, reporter):
    """The 120 KB message claim: bandwidth headroom quantified.

    §4 reports ~120 KB per pass and still-linear speedup; this ablation
    shows why — on a 1 GB/s interconnect a pass costs ~0.1 ms against
    tau = 7.7 s — and finds where it stops being true (a ~1 MB/s link
    with per-realization passing).
    """
    from repro.cluster.network import NetworkModel

    def sweep():
        rows = {}
        for bandwidth in (1e9, 1e7, 1e6):
            result = run_simcluster(
                None, RunConfig(maxsv=512, processors=16, perpass=0.0,
                                peraver=600.0),
                spec=spec(network=NetworkModel(bandwidth=bandwidth)),
                use_files=False, execute_realizations=False)
            rows[bandwidth] = result.virtual_time
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("bandwidth ablation, M = 16, L = 512, ~125 KB per "
                  "pass after every realization")
    reporter.line("bandwidth (B/s)   T_comp (s)")
    for bandwidth, t_comp in rows.items():
        reporter.line(f"{bandwidth:15.0e}   {t_comp:10.1f}")
    # Gigabit: transfer is invisible.  At 1 MB/s a 125 KB message takes
    # ~0.125 s — messages overlap compute (asynchronous sends), so the
    # run only degrades once the *collector's serialized receive path*
    # is considered; the paper's rig sits 3 orders of magnitude away
    # from trouble.
    assert rows[1e9] == pytest.approx(rows[1e7], rel=0.01)
    reporter.line("gigabit-class links leave orders of magnitude of "
                  "headroom for the ~120 KB passes  [reproduced]")


def test_collector_saturation_boundary(benchmark, reporter):
    """Where the paper's linearity WOULD break: a slow collector.

    An ablation the paper does not run but its model implies: linear
    speedup holds while M * service_time < tau; push service time up
    and the collector serializes the run.
    """
    def sweep():
        results = {}
        for service in (200e-6, 0.1, 1.0):
            result = run_simcluster(
                None, RunConfig(maxsv=512, processors=64, perpass=0.0,
                                peraver=600.0),
                spec=spec(collector_service_time=service),
                use_files=False, execute_realizations=False)
            results[service] = result
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("collector service-time ablation, M = 64, L = 512, "
                  "per-realization exchange")
    reporter.line("service (s)   T_comp (s)   collector utilization")
    for service, result in results.items():
        reporter.line(f"{service:11.4f}   {result.virtual_time:10.1f}")
    fast = results[200e-6].virtual_time
    slow = results[1.0].virtual_time
    assert slow > 5 * fast
    reporter.line("linearity requires M * t_service << tau; satisfied by "
                  "orders of magnitude on the paper's rig  [boundary "
                  "mapped]")
