"""Makespan of a heterogeneous job mix: shared scheduler vs. serial.

The Job/Scheduler split's performance claim: multiplexing N experiments
over one shared worker pool beats running them one at a time whenever
the mix is heterogeneous, because narrow jobs (few ranks) leave most of
the machine idle when run alone.  The workload is 6 narrow jobs (1
rank) plus 2 wide jobs (4 ranks), every realization costing a fixed
``TAU`` of wall time:

* **serial** — each job is its own ``parmonc()`` multiprocess run, one
  after another (the pre-scheduler workflow); a narrow job then runs
  ``TAU * maxsv`` seconds on one process while three slots idle.
* **shared** — one ``parmonc(jobs=[...], workers=4)`` batch: the
  scheduler keeps all 4 slots busy across jobs, so the makespan
  approaches ``total_work / 4``.

Ideal ratio for this mix is 3.25x; the assertion requires >= 2x
(the issue's acceptance bar) outside smoke mode, and per-job estimates
must stay bit-identical between the two schedules — scheduling must
never change the numbers.
"""

from __future__ import annotations

import os
import time

from repro.core.parmonc import parmonc

SMOKE = bool(os.environ.get("PARMONC_BENCH_SMOKE"))

#: Seconds of simulated work per realization.
TAU = 0.002 if SMOKE else 0.005
#: Realizations per job.
MAXSV = 60 if SMOKE else 240
#: Shared worker slots (and the wide jobs' rank count).
WORKERS = 4
#: Makespan-improvement floor: the acceptance bar full-size, a loose
#: floor in smoke mode where process startup rivals the work itself.
RATIO_FLOOR = 1.2 if SMOKE else 2.0


def busy(rng):
    time.sleep(TAU)
    return rng.random()


def job_mix():
    """6 narrow jobs + 2 wide jobs, each its own experiment."""
    mix = []
    for index in range(6):
        mix.append({"name": f"narrow{index}", "processors": 1,
                    "seqnum": index})
    for index in range(2):
        mix.append({"name": f"wide{index}", "processors": WORKERS,
                    "seqnum": 6 + index})
    for entry in mix:
        entry.update({"realization": busy, "maxsv": MAXSV,
                      "perpass": 0.0, "peraver": 0.0,
                      "use_files": False})
    return mix


def test_shared_pool_beats_serial_makespan(reporter):
    mix = job_mix()

    began = time.perf_counter()
    serial_results = []
    for entry in mix:
        entry = dict(entry)
        entry.pop("name")
        entry.pop("use_files")
        routine = entry.pop("realization")
        serial_results.append(
            parmonc(routine, backend="multiprocess",
                    start_method="fork", use_files=False, **entry))
    serial_seconds = time.perf_counter() - began

    began = time.perf_counter()
    shared_results = parmonc(jobs=mix, backend="multiprocess",
                             workers=WORKERS, start_method="fork")
    shared_seconds = time.perf_counter() - began

    # Scheduling must never change the numbers: per-job estimates are
    # bit-identical between the serial and the shared schedule.
    for serial, shared in zip(serial_results, shared_results):
        assert serial.total_volume == shared.total_volume == MAXSV
        assert (serial.estimates.mean.tobytes()
                == shared.estimates.mean.tobytes())
        assert (serial.estimates.variance.tobytes()
                == shared.estimates.variance.tobytes())

    ratio = serial_seconds / shared_seconds
    assert ratio >= RATIO_FLOOR, (
        f"shared pool gave only {ratio:.2f}x over serial "
        f"(floor {RATIO_FLOOR}x)")

    total_work = len(mix) * MAXSV * TAU
    reporter.metric("jobs", len(mix))
    reporter.metric("maxsv_per_job", MAXSV)
    reporter.metric("tau_seconds", TAU)
    reporter.metric("workers", WORKERS)
    reporter.metric("seconds_serial", serial_seconds)
    reporter.metric("seconds_shared", shared_seconds)
    reporter.metric("makespan_improvement", ratio)
    waits = [result.sla["wait_seconds"] for result in shared_results]
    reporter.metric("mean_wait_seconds", sum(waits) / len(waits))
    reporter.line(f"8-job heterogeneous mix (6x1 + 2x{WORKERS} ranks), "
                  f"{MAXSV} realizations x {TAU * 1e3:.0f} ms each "
                  f"({total_work:.1f} s of work):")
    reporter.line(f"  serial runs: {serial_seconds:.2f} s   shared "
                  f"{WORKERS}-slot pool: {shared_seconds:.2f} s   "
                  f"improvement {ratio:.2f}x")
    reporter.line("per-job estimates bit-identical across schedules; "
                  "the win is pure slot utilization (ideal 3.25x)")
