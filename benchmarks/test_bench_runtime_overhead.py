"""Library overhead: what the runtime costs per realization.

Not a paper figure — the engineering table a prospective user wants:
per-realization wall cost of each backend on a trivial workload, the
stream-positioning cost, and the savings from batching.  The paper's
workloads (tau ~ seconds) dwarf all of these; the numbers matter for
micro-realizations.
"""

from __future__ import annotations

import pytest

from repro import batched_realization, parmonc
from repro.runtime.config import RunConfig
from repro.runtime.sequential import run_sequential


def trivial(rng):
    return rng.random()


def test_sequential_overhead(benchmark, reporter):
    config = RunConfig(maxsv=5_000, processors=1, perpass=1e9,
                       peraver=1e9)
    result = benchmark(run_sequential, trivial, config, False)
    assert result.total_volume == 5_000
    reporter.line("sequential backend, 5000 trivial realizations per "
                  "round (see timing table; ~15-30 us/realization)")


def test_sequential_with_files_overhead(benchmark, reporter, tmp_path):
    def run():
        config = RunConfig(maxsv=5_000, processors=1, perpass=1e9,
                           peraver=1e9, workdir=tmp_path)
        return run_sequential(trivial, config, True)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_volume == 5_000
    reporter.line("sequential + result files: the save-point cycle "
                  "adds a fixed per-session cost, not per-realization")


def test_multiprocess_overhead(benchmark, reporter, tmp_path):
    def run():
        return parmonc(trivial, maxsv=5_000, processors=2,
                       backend="multiprocess", use_files=False,
                       workdir=tmp_path)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_volume == 5_000
    reporter.line("multiprocess backend: process spawn + IPC amortized "
                  "over 5000 realizations")


def test_batching_amortizes_overhead(benchmark, reporter):
    def run():
        wrapped = batched_realization(trivial, 100)
        config = RunConfig(maxsv=50, processors=1, perpass=1e9,
                           peraver=1e9)
        return run_sequential(wrapped, config, False)

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert result.total_volume == 50
    reporter.line("batched(100): the same 5000 draws as the sequential "
                  "bench with 1/100th of the runtime bookkeeping")


def test_telemetry_overhead(benchmark, reporter, tmp_path):
    """Telemetry must be free when off and cheap when on."""
    import time

    def run(telemetry: bool):
        config = RunConfig(maxsv=5_000, processors=1, perpass=1e9,
                           peraver=1e9, telemetry=telemetry)
        return run_sequential(trivial, config, False)

    samples = {True: [], False: []}
    for _ in range(5):
        for flag in (False, True):
            began = time.perf_counter()
            result = run(flag)
            samples[flag].append(time.perf_counter() - began)
            assert result.total_volume == 5_000
    off, on = min(samples[False]), min(samples[True])
    ratio = on / off if off > 0 else float("nan")
    benchmark(run, False)
    reporter.metric("seconds_telemetry_off", off)
    reporter.metric("seconds_telemetry_on", on)
    reporter.metric("on_off_ratio", ratio)
    reporter.line(f"telemetry off: {off * 1e3:.2f} ms   "
                  f"on: {on * 1e3:.2f} ms   ratio {ratio:.3f} "
                  f"(5000 trivial realizations, best of 5)")
    reporter.line("the disabled path is the default path: every "
                  "instrumentation site hides behind `telemetry is "
                  "not None`")


def test_stream_positioning_overhead(benchmark, reporter):
    from repro.rng.streams import StreamTree
    tree = StreamTree()
    processor = tree.experiment(0).processor(0)

    def position_thousand():
        for index in range(1000):
            processor.realization(index)

    benchmark(position_thousand)
    reporter.line("1000 realization-stream placements per round "
                  "(three modular exponentiations each)")
