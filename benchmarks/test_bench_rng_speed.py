"""The "fast ... generator" claim (§1): rnd128 throughput.

The original is 64-bit-integer FORTRAN; this reproduction's performant
path is the numpy limb-vectorized block generator.  The bench measures
draws/second for: the scalar exact-integer generator, the vectorized
generator at several lane widths, the small-modulus baselines, and
numpy's PCG64 as an ambient reference point.  The reproduction claim is
relative: vectorization buys >= 10x over the scalar path, bringing the
generator into the regime where realization simulation, not base random
number production, dominates (as in the paper, where tau = 7.7 s
dwarfs RNG time).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng.baseline import MinStd, legacy40
from repro.rng.lcg128 import Lcg128
from repro.rng.vectorized import VectorLcg128

BLOCK = 100_000


def test_scalar_lcg128(benchmark, reporter):
    generator = Lcg128()
    benchmark(generator.block, BLOCK)
    reporter.line(f"scalar Lcg128: {BLOCK} draws per round "
                  "(see timing table)")


@pytest.mark.parametrize("lanes", [64, 1024, 4096])
def test_vectorized_lcg128(benchmark, reporter, lanes):
    generator = VectorLcg128(1, lanes=lanes)
    values = benchmark(generator.uniforms, BLOCK)
    assert values.size == BLOCK
    reporter.line(f"VectorLcg128 lanes={lanes}: {BLOCK} draws per round")


def test_legacy40_baseline(benchmark, reporter):
    generator = legacy40()
    benchmark(generator.block, BLOCK // 10)
    reporter.line(f"legacy40: {BLOCK // 10} draws per round")


def test_minstd_baseline(benchmark, reporter):
    generator = MinStd()
    benchmark(generator.block, BLOCK // 10)
    reporter.line(f"MINSTD: {BLOCK // 10} draws per round")


def test_numpy_pcg64_reference(benchmark, reporter):
    generator = np.random.default_rng(0)
    benchmark(generator.random, BLOCK)
    reporter.line(f"numpy PCG64 (ambient reference): {BLOCK} draws "
                  "per round")


def test_vectorization_speedup_claim(benchmark, reporter):
    """The headline ratio, measured inside one test for a fair clock."""
    import time

    def measure():
        scalar = Lcg128()
        start = time.perf_counter()
        scalar.block(20_000)
        scalar_time = (time.perf_counter() - start) / 20_000
        vector = VectorLcg128(1, lanes=4096)
        vector.uniforms(100_000)  # warm up
        start = time.perf_counter()
        vector.uniforms(1_000_000)
        vector_time = (time.perf_counter() - start) / 1_000_000
        return scalar_time / vector_time, 1.0 / vector_time

    speedup, throughput = benchmark.pedantic(measure, rounds=1,
                                             iterations=1)
    reporter.line(f"vectorized / scalar throughput ratio: {speedup:.1f}x "
                  f"({throughput / 1e6:.1f}M draws/s vectorized)")
    assert speedup > 3.0
    reporter.line("the library's fast path recovers the 'fast generator' "
                  "property lost to exact Python integers  [reproduced]")
