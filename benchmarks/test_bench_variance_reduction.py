"""Variance-reduction ablation: the other lever on C(zeta) = tau * Var.

Section 2.2 parallelizes to cut the estimator cost by M; this bench
quantifies the orthogonal lever the library's vr package provides.
For the smooth test integrand ``exp(U)`` (exact mean e - 1), each
method's measured variance translates directly into an equivalent
processor count via the paper's own cost model: a 60x variance
reduction buys what 60 processors would.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import parmonc
from repro.vr import (
    StratifiedRealization,
    antithetic_realization,
    control_variate_realization,
    fit_control_coefficient,
    importance_realization,
    polynomial_proposal,
)

EXACT = math.e - 1.0
VOLUME = 20_000


def exp_realization(rng):
    return math.exp(rng.random())


def run_methods():
    rows = {}
    plain = parmonc(exp_realization, maxsv=VOLUME, processors=2,
                    use_files=False).estimates
    rows["plain Monte Carlo"] = plain

    anti = parmonc(antithetic_realization(exp_realization),
                   maxsv=VOLUME // 2, processors=2,
                   use_files=False).estimates
    rows["antithetic variates"] = anti

    control = lambda rng: rng.random()
    beta, _ = fit_control_coefficient(exp_realization, control)
    rows["control variate (beta fitted)"] = parmonc(
        control_variate_realization(exp_realization, control, 0.5, beta),
        maxsv=VOLUME, processors=2, use_files=False).estimates

    rows["importance (poly k=1)"] = parmonc(
        importance_realization(math.exp, polynomial_proposal(1.0)),
        maxsv=VOLUME, processors=2, use_files=False).estimates
    return rows


def test_variance_reduction_table(benchmark, reporter):
    rows = benchmark.pedantic(run_methods, rounds=1, iterations=1)
    plain_variance = rows["plain Monte Carlo"].variance[0, 0]
    reporter.line(f"variance reduction on E exp(U) = {EXACT:.5f} "
                  f"(L = {VOLUME})")
    reporter.line(f"{'method':<32s} {'mean':>9s} {'variance':>11s} "
                  f"{'reduction':>10s}")
    for name, estimates in rows.items():
        variance = estimates.variance[0, 0]
        reduction = plain_variance / variance if variance > 0 else np.inf
        reporter.line(f"{name:<32s} {estimates.mean[0, 0]:9.5f} "
                      f"{variance:11.2e} {reduction:10.1f}x")
        # Unbiasedness of every method.
        assert abs(estimates.mean[0, 0] - EXACT) \
            <= 3 * estimates.abs_error[0, 0] + 1e-9, name
    assert rows["antithetic variates"].variance[0, 0] \
        < plain_variance / 10
    assert rows["control variate (beta fitted)"].variance[0, 0] \
        < plain_variance / 10
    reporter.line("each 10-60x variance cut equals 10-60 processors in "
                  "the paper's cost model C = tau * Var  [extension]")


def test_stratification_tightens_estimates(benchmark, reporter):
    """Stratification reduces estimate spread, not sample variance."""
    def spreads():
        def spread_of(factory):
            means = [
                parmonc(factory(), maxsv=256, seqnum=s, use_files=False)
                .estimates.mean[0, 0]
                for s in range(30)]
            return float(np.var(means))

        return (spread_of(lambda: exp_realization),
                spread_of(lambda: StratifiedRealization(exp_realization,
                                                        16)))

    plain_spread, stratified_spread = benchmark.pedantic(
        spreads, rounds=1, iterations=1)
    reporter.line("variance of the *estimate* over 30 repeated "
                  "experiments, L = 256 each")
    reporter.line(f"plain      : {plain_spread:.3e}")
    reporter.line(f"stratified : {stratified_spread:.3e}  "
                  f"({plain_spread / stratified_spread:.0f}x tighter)")
    assert stratified_spread < plain_spread / 3
    reporter.line("PARMONC's iid error formula is conservative for "
                  "stratified runs (documented in repro.vr.stratified)")
