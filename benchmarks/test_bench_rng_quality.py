"""§2.2 RNG quality: rnd128 vs the insufficient r=40 baseline.

Two claims are regenerated:

1. "In case of a 'good' generator ... base random numbers produced on
   different processors must have good statistical properties" — the
   battery passes rnd128 and its substreams, and rejects bad
   generators.
2. "a period of a well known RNG with r = 40 and A = 5**17 is equal to
   2**38 ... not sufficient: the simulation of a single realization may
   demand a quantity of base random numbers comparable with the whole
   period" — demonstrated on a small-modulus analogue where wrapping is
   reachable: once a stream wraps, successive "independent" streams
   repeat the same numbers exactly.
"""

from __future__ import annotations

import numpy as np

from repro.rng.baseline import MiddleSquare, MinStd, SmallLcg, legacy40
from repro.rng.streams import StreamTree
from repro.rng.testing import (
    interstream_correlation_test,
    run_battery,
    two_level_substream_test,
)
from repro.rng.vectorized import VectorLcg128

SAMPLE = 120_000


def battery_scores():
    scores = {}
    scores["rnd128"] = run_battery(
        VectorLcg128(1).uniforms(SAMPLE), "rnd128")
    tree = StreamTree()
    scores["rnd128 proc-255 substream"] = run_battery(
        VectorLcg128(tree.rng(0, 255, 0)).uniforms(SAMPLE),
        "rnd128 substream")
    scores["legacy40 (r=40, A=5^17)"] = run_battery(
        legacy40().block(SAMPLE), "legacy40")
    scores["minstd"] = run_battery(MinStd(42).block(SAMPLE), "minstd")
    scores["middle-square"] = run_battery(
        np.clip(MiddleSquare().block(20_000), 1e-12, 1 - 1e-12),
        "middle-square")
    return scores


def test_battery_scoreboard(benchmark, reporter):
    scores = benchmark.pedantic(battery_scores, rounds=1, iterations=1)
    reporter.line(f"statistical battery, {SAMPLE} draws each, "
                  f"alpha = 0.01 per test")
    reporter.line(f"{'generator':<28s} passed/total")
    for name, report in scores.items():
        reporter.line(f"{name:<28s} {report.n_passed}/"
                      f"{len(report.results)}")
    assert scores["rnd128"].n_failed <= 1
    assert scores["rnd128 proc-255 substream"].n_failed <= 1
    assert scores["middle-square"].n_failed >= 5
    reporter.line("rnd128 and its substreams pass; degenerate generators "
                  "are rejected  [reproduced]")


def test_substream_independence(benchmark, reporter):
    """Cross-correlations between processor substreams are null."""
    def correlations():
        tree = StreamTree()
        base = VectorLcg128(tree.rng(0, 0, 0)).uniforms(50_000)
        return {
            f"proc 0 vs {p}": interstream_correlation_test(
                base, VectorLcg128(tree.rng(0, p, 0)).uniforms(50_000))
            for p in (1, 2, 17, 1000, 2 ** 17 - 1)}

    results = benchmark.pedantic(correlations, rounds=1, iterations=1)
    reporter.line("inter-substream correlation (50k paired draws)")
    for label, result in results.items():
        reporter.line(f"{label:<18s} r = {result.details['r']:+.5f}  "
                      f"p = {result.p_value:.3f}")
        assert result.passed, label
    reporter.line("processor substreams statistically independent  "
                  "[reproduced]")


def test_period_exhaustion_of_legacy_family(benchmark, reporter):
    """Wraparound makes 'independent' streams repeat each other exactly.

    Uses an r=24 member of the same multiplicative family (period
    2**22, walkable in seconds) so the failure mode of the r=40
    generator is demonstrated rather than asserted: leaping by more
    than the period aliases streams onto each other.
    """
    def demo():
        bits = 24
        period = 1 << (bits - 2)
        first = SmallLcg(bits, pow(5, 17, 1 << bits))
        # "Processor 1"'s stream leaps by the realization budget; with a
        # budget beyond the period it lands back inside processor 0's
        # stretch of the orbit.
        second = first.jumped(period + 12345)
        equal_after_wrap = first.jumped(12345).state == second.state
        # And the draws themselves repeat verbatim.
        overlap = np.array_equal(first.jumped(12345).block(1000),
                                 second.block(1000))
        # Consuming the whole period on one stream flags the wrap.
        walker = SmallLcg(bits, pow(5, 17, 1 << bits))
        walker.block(period)
        return equal_after_wrap, overlap, walker.wrapped, period

    equal_after_wrap, overlap, wrapped, period = benchmark.pedantic(
        demo, rounds=1, iterations=1)
    reporter.line("period exhaustion demo (r=24 member of the 5**17 "
                  "family, period 2**22)")
    reporter.line(f"stream leaped past the period aliases an existing "
                  f"stream: {equal_after_wrap}")
    reporter.line(f"its 1000 draws repeat the other stream verbatim: "
                  f"{overlap}")
    reporter.line(f"wrap detector fires after {period} draws: {wrapped}")
    assert equal_after_wrap and overlap and wrapped
    reporter.line("the r=40 generator (period 2**38 ~ 2.75e11) fails the "
                  "same way once a realization consumes the period; "
                  "rnd128's 2**126 period makes this unreachable "
                  "[reproduced]")


def test_two_level_parallel_certificate(benchmark, reporter):
    """Second-order uniformity across 64 processor substreams.

    The decisive parallel-quality check: first-level chi-square per
    substream, second-level KS on the p-values — sensitive to both
    global bias and inter-stream correlation.
    """
    result = benchmark.pedantic(
        lambda: two_level_substream_test(n_substreams=64,
                                         draws_per_stream=20_000),
        rounds=1, iterations=1)
    reporter.line("two-level certificate: chi-square per substream, "
                  "KS over the 64 p-values")
    reporter.line(f"KS distance = {result.statistic:.4f}, "
                  f"p = {result.p_value:.3f}, total draws = "
                  f"{result.sample_size}")
    assert result.passed
    reporter.line("substream p-values are uniform — no second-order "
                  "defects across processors  [reproduced]")


def test_rnd128_scale_headroom(benchmark, reporter):
    """The paper's scaling claim: 'practically infinite' processors."""
    def check():
        tree = StreamTree()
        leaps = tree.leaps
        # A 512-processor run consuming 10**12 numbers per processor
        # uses a 10**-17 fraction of each processor subsequence.
        utilization = 1e12 / leaps.processor_leap
        return utilization

    utilization = benchmark.pedantic(check, rounds=1, iterations=1)
    reporter.line(f"fraction of a processor subsequence consumed by a "
                  f"10**12-draw workload: {utilization:.2e}")
    assert utilization < 1e-15
    reporter.line("subsequence capacity leaves ~15 orders of magnitude "
                  "of headroom  [reproduced]")
