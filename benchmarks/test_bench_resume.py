"""§3.2/§3.4 resume semantics: correctness and overhead.

Claims regenerated:

* a resumed simulation (res = 1) with automatic averaging produces the
  SAME estimator a single longer run over the same streams would — the
  chain-vs-monolithic check is exact, not statistical;
* manaver recovers a killed job's subtotals without losing a single
  realization;
* session overhead (save-point write + load) is milliseconds —
  "endless" simulations chopped into cluster jobs cost essentially
  nothing.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import MonteCarloRun, parmonc
from repro.cli.manaver import manual_average
from repro.rng.streams import StreamTree
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.worker import run_worker
from repro.stats.accumulator import MomentAccumulator


def realization(rng):
    return rng.random() ** 2


def test_chain_equals_monolithic(benchmark, reporter, tmp_path):
    """Three resumed sessions == hand-built union of the same streams."""
    def chain():
        run = MonteCarloRun(realization, workdir=tmp_path / "chain",
                            processors=2)
        run.run(maxsv=200)
        run.resume(maxsv=200)
        return run.resume(maxsv=200)

    final = benchmark.pedantic(chain, rounds=1, iterations=1)
    tree = StreamTree()
    reference = MomentAccumulator(1, 1)
    for seqnum in (0, 1, 2):
        for rank in (0, 1):
            for index in range(100):
                reference.add(realization(tree.rng(seqnum, rank, index)))
    expected = reference.estimates()
    reporter.line("three resumed sessions vs monolithic union of the "
                  "same realization streams")
    reporter.line(f"chained    : mean = {final.estimates.mean[0, 0]:.12f}"
                  f"  L = {final.total_volume}")
    reporter.line(f"monolithic : mean = {expected.mean[0, 0]:.12f}"
                  f"  L = {expected.volume}")
    assert final.total_volume == expected.volume == 600
    assert final.estimates.mean[0, 0] == pytest.approx(
        expected.mean[0, 0], rel=1e-12)
    assert final.estimates.variance[0, 0] == pytest.approx(
        expected.variance[0, 0], rel=1e-9)
    reporter.line("resume-with-averaging is exact (formula (5))  "
                  "[reproduced]")


def test_manaver_recovery_is_lossless(benchmark, reporter, tmp_path):
    def crash_and_recover():
        workdir = tmp_path / "crash"
        parmonc(realization, maxsv=90, processors=3, workdir=workdir)
        config = RunConfig(maxsv=90, processors=3, res=1, seqnum=1,
                           workdir=workdir)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        for rank in range(3):
            run_worker(realization, config, rank, 30,
                       send=lambda m: collector.receive(m, 0.0))
        # Job killed here: no finalize_session.  Recover:
        summary = manual_average(workdir)
        resumed = parmonc(realization, maxsv=30, res=1, seqnum=2,
                          processors=3, workdir=workdir)
        return summary, resumed

    summary, resumed = benchmark.pedantic(crash_and_recover, rounds=1,
                                          iterations=1)
    reporter.line("kill-recover-resume accounting")
    reporter.line(f"session 1 (clean)     :  90 realizations")
    reporter.line(f"session 2 (killed)    :  90 realizations, recovered "
                  f"{summary['volume'] - 90} + base {90}")
    reporter.line(f"session 3 (resumed)   :  30 realizations")
    reporter.line(f"final total           : {resumed.total_volume}")
    assert summary["volume"] == 180
    assert resumed.total_volume == 210
    reporter.line("no realization lost across crash + manaver + resume  "
                  "[reproduced]")


def test_session_overhead(benchmark, reporter, tmp_path):
    """Save-point machinery costs milliseconds per session."""
    def measure():
        workdir = tmp_path / "overhead"
        run = MonteCarloRun(realization, workdir=workdir)
        run.run(maxsv=10)
        durations = []
        for _ in range(20):
            start = time.perf_counter()
            run.resume(maxsv=10)
            durations.append(time.perf_counter() - start)
        return float(np.median(durations))

    median = benchmark.pedantic(measure, rounds=1, iterations=1)
    reporter.line(f"median resumed-session wall time (10 realizations + "
                  f"full save-point cycle): {median * 1000:.1f} ms")
    assert median < 0.5
    reporter.line("resume overhead is negligible against cluster-job "
                  "granularity  [reproduced]")
