"""§2.4 capacity table: period and hierarchy arithmetic.

Regenerates every number of the section: the 2**126 period, the
recommendation to use the first half only, the default leap lengths,
and the "10**3 experiments x 10**5 processors x 10**16 realizations"
capacity claims.
"""

from __future__ import annotations

import pytest

from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    DEFAULT_LEAPS,
    MODULUS,
    PERIOD,
    RECOMMENDED_LIMIT,
)


def compute_table():
    leaps = DEFAULT_LEAPS
    return {
        "modulus": MODULUS,
        "multiplier": BASE_MULTIPLIER,
        "period": PERIOD,
        "recommended": RECOMMENDED_LIMIT,
        "n_e": leaps.experiment_leap,
        "n_p": leaps.processor_leap,
        "n_r": leaps.realization_leap,
        "experiments": leaps.experiment_capacity,
        "processors": leaps.processor_capacity,
        "realizations": leaps.realization_capacity,
        "A_ne": leaps.multipliers()[0],
        "order_check": pow(BASE_MULTIPLIER, PERIOD // 2, MODULUS) != 1,
    }


def test_capacity_table(benchmark, reporter):
    table = benchmark(compute_table)
    reporter.line("§2.4 generator and hierarchy parameters")
    reporter.line(f"modulus            : 2**128")
    reporter.line(f"multiplier A       : 5**101 mod 2**128 = "
                  f"{table['multiplier']}")
    reporter.line(f"period             : 2**126 ~ "
                  f"{float(table['period']):.2e}  (paper: ~10**38)")
    reporter.line(f"recommended use    : first 2**125 numbers")
    reporter.line(f"n_e                : 2**115 ~ "
                  f"{float(table['n_e']):.2e}")
    reporter.line(f"n_p                : 2**98  ~ "
                  f"{float(table['n_p']):.2e}")
    reporter.line(f"n_r                : 2**43  ~ "
                  f"{float(table['n_r']):.2e}  (paper: ~10**13)")
    reporter.line(f"experiments        : 2**10 = {table['experiments']}"
                  f"  (paper: ~10**3)")
    reporter.line(f"processors/exp     : 2**17 = {table['processors']}"
                  f"  (paper: ~10**5)")
    reporter.line(f"realizations/proc  : 2**55 = {table['realizations']}"
                  f"  (paper: ~10**16)")
    # The claims, asserted.
    assert table["period"] == 2 ** 126
    assert table["recommended"] == 2 ** 125
    assert table["experiments"] == 2 ** 10
    assert table["processors"] == 2 ** 17
    assert table["realizations"] == 2 ** 55
    # 2**126 ~ 8.5e37, which the paper rounds to "~10**38".
    assert 5e37 < float(table["period"]) < 2e38
    assert 8e12 < float(table["n_r"]) < 9e12  # "~10**13"
    assert table["order_check"], "multiplier order is the full 2**126"
    reporter.line("all §2.4 capacity figures reproduced exactly")


def test_leap_multiplier_cost(benchmark, reporter):
    """genparam-style multiplier computation is cheap (ms, not hours)."""
    result = benchmark(DEFAULT_LEAPS.multipliers)
    assert len(result) == 3
    reporter.line("computing A(n_e), A(n_p), A(n_r) by modular "
                  "exponentiation: see timing table")


@pytest.mark.parametrize("processors", [1, 512, 2 ** 17])
def test_stream_placement_cost(benchmark, reporter, processors):
    """Positioning the last processor's stream is O(log n) — instant."""
    from repro.rng.streams import StreamTree
    tree = StreamTree()
    generator = benchmark(tree.rng, 0, processors - 1, 0)
    assert generator.state % 2 == 1
    reporter.line(f"stream head for processor {processors - 1}: computed "
                  f"via modular exponentiation (see timing table)")


def test_full_capacity_cluster_run(benchmark, reporter):
    """§1's "practically infinite" processors: a 2**17-processor run.

    The hierarchy's entire per-experiment processor capacity (131072
    streams — the paper's "10**5 processors at most") is exercised in
    one simulated session, one realization per processor, with
    per-realization exchange.  Beyond the arithmetic, this certifies
    the runtime itself scales to the hierarchy bound.
    """
    from repro.cluster import ClusterSpec, DurationModel
    from repro.runtime.config import RunConfig
    from repro.runtime.simcluster import run_simcluster

    processors = 2 ** 17

    def run():
        return run_simcluster(
            None,
            RunConfig(maxsv=processors, processors=processors,
                      perpass=0.0, peraver=3600.0),
            spec=ClusterSpec(duration_model=DurationModel(mean=7.7)),
            use_files=False, execute_realizations=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter.line(f"one session on the full hierarchy width: "
                  f"M = {processors} processors, 1 realization each")
    reporter.line(f"T_comp = {result.virtual_time:.2f} virtual s "
                  f"(compute is 7.7 s; the rest is the exchange tail)")
    reporter.line(f"messages received: {result.messages_received}")
    assert result.session_volume == processors
    assert all(volume == 1
               for volume in result.per_rank_volumes.values())
    # The exchange tail is collector-bound: 2*M messages at 200us each.
    assert result.virtual_time < 7.7 + 2 * processors * 250e-6
    reporter.line("the PARMONC hierarchy and runtime sustain the full "
                  "2**17-processor width  [reproduced]")
