"""Saturation boundary of the flat exchange versus the reduction tree.

The paper's Fig. 2 regime dies at the collector: under per-realization
passes rank 0 serves O(M) workers, so once ``M * service_time``
approaches ``tau`` the exchange queue grows without bound and T_comp
decouples from ``tau * L / M``.  Two figures quantify what the k-ary
tree buys back:

* **Saturation boundary** — on the deterministic simulated cluster,
  the largest M whose exchange overhead stays under 50% of ideal
  compute time.  Interior reducers coalesce their subtree into one
  combined message per busy period, so the collector's load stops
  growing with M and the boundary moves by well over an order of
  magnitude (the asserted floor is 10x).  A full-hierarchy tree point
  at M = 10**5 simulated workers certifies the cost model at the
  paper's "practically infinite" processor count.
* **Same-host transport** — wall-clock of the real multiprocess
  backend shipping paper-sized (1000x2) per-realization passes over
  pickle-on-``mp.Queue`` versus the zero-copy shared-memory ring.
  Wall-clock on a shared container is noisy, so the assertions are
  correctness (bit-identical estimates, full volume) plus a loose
  regression ceiling; the JSON artifact records the raw seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cluster import ClusterSimulation, ClusterSpec
from repro.cluster.machine import DurationModel
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.messages import message_bytes
from repro.runtime.multiprocess import run_multiprocess
from repro.stats.accumulator import MomentSnapshot

SMOKE = bool(os.environ.get("PARMONC_BENCH_SMOKE"))

TAU = 7.7
#: Collector/reducer service time chosen so the flat exchange saturates
#: within a cheap sweep: arrival rate M/tau crosses 1/s near M = 77.
SERVICE = 0.1
FANOUT = 16
QUOTA = 2 if SMOKE else 4
SWEEP_CAP = 1024 if SMOKE else 4096
#: A point is "unsaturated" while exchange overhead stays below 50%.
OVERHEAD_LIMIT = 0.5
FULL_TREE_M = 20_000 if SMOKE else 100_000
#: The scale point carries a larger per-worker quota: the tree cuts the
#: collector's message count, not the bytes, so the trailing wave of
#: subtree-sized combined transfers is a fixed cost that honest
#: accounting amortizes over more compute.
FULL_TREE_QUOTA = 4 if SMOKE else 8

MP_MAXSV = 120 if SMOKE else 400
MP_PROCESSORS = 4
#: Loose ceiling on shm/queue wall-time ratio for the same workload —
#: the ring must never be a regression, noise margin included.
TRANSPORT_CEILING = 3.0


def _spec() -> ClusterSpec:
    return ClusterSpec(
        duration_model=DurationModel(mean=TAU, distribution="fixed"),
        message_bytes=message_bytes(1000, 2),
        collector_service_time=SERVICE)


def _simulate(processors: int, fanout: int | None, quota: int = QUOTA):
    config = RunConfig(maxsv=processors * quota, processors=processors,
                       perpass=0.0, peraver=3600.0,
                       reduction_fanout=fanout)
    collector = Collector(config, MomentSnapshot.zero(1, 1), None)
    simulation = ClusterSimulation(config, _spec(), collector)
    return simulation.run()


def _overhead(processors: int, fanout: int | None,
              quota: int = QUOTA) -> tuple[float, object]:
    """Exchange overhead relative to ideal compute, plus the result."""
    result = _simulate(processors, fanout, quota)
    ideal = TAU * quota
    return result.t_comp / ideal - 1.0, result


def _boundary(fanout: int | None, reporter, label: str) -> int:
    """Largest power-of-two M whose overhead stays under the limit."""
    boundary = 0
    m = 16
    while m <= SWEEP_CAP:
        overhead, result = _overhead(m, fanout)
        reporter.line(
            f"  {label:4s} M={m:6d}  overhead={overhead * 100:8.1f}%  "
            f"served={result.collector_served:7d}  "
            f"combined={result.combined_messages:6d}")
        reporter.metric(f"{label}_overhead_at_{m}", overhead)
        if overhead > OVERHEAD_LIMIT:
            break
        boundary = m
        m *= 2
    return boundary


def test_saturation_boundary_tree_vs_flat(reporter):
    reporter.line("Saturation boundary under per-realization passes "
                  f"(tau={TAU}s, service={SERVICE * 1e3:.0f}ms, "
                  f"quota={QUOTA}/worker)")
    flat = _boundary(None, reporter, "flat")
    tree = _boundary(FANOUT, reporter, "tree")
    ratio = tree / flat
    reporter.line(f"flat boundary: M = {flat}")
    reporter.line(f"tree boundary: M >= {tree} (fanout {FANOUT})")
    reporter.line(f"boundary ratio: {ratio:.0f}x  (floor: 10x)")
    reporter.metric("flat_boundary", flat)
    reporter.metric("tree_boundary", tree)
    reporter.metric("boundary_ratio", ratio)
    assert flat > 0
    assert ratio >= 10.0, (flat, tree)


def test_equal_estimate_bits_at_the_boundary(reporter):
    """The topology buys throughput, never a different estimate."""
    processors = 64

    def run(fanout):
        config = RunConfig(maxsv=processors * QUOTA,
                           processors=processors, perpass=0.0,
                           peraver=3600.0, reduction_fanout=fanout)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        simulation = ClusterSimulation(
            config, _spec(), collector,
            routine=lambda rng: rng.random())
        result = simulation.run()
        merged = collector.merged()
        return result, merged.sum1.tobytes(), merged.sum2.tobytes()

    flat_result, flat_sum1, flat_sum2 = run(None)
    tree_result, tree_sum1, tree_sum2 = run(FANOUT)
    assert (flat_sum1, flat_sum2) == (tree_sum1, tree_sum2)
    assert flat_result.total_volume == tree_result.total_volume
    reporter.line(f"M={processors}: flat and tree merged moments are "
                  f"byte-identical at equal volume "
                  f"({flat_result.total_volume})")
    reporter.line(f"collector served {flat_result.collector_served} "
                  f"(flat) vs {tree_result.collector_served} (tree) "
                  f"messages for the same bits")
    reporter.metric("flat_served", flat_result.collector_served)
    reporter.metric("tree_served", tree_result.collector_served)
    assert tree_result.collector_served < flat_result.collector_served


def test_full_hierarchy_tree_point(reporter):
    """fanout-16 tree at the paper's 10**5-processor scale."""
    started = time.perf_counter()
    overhead, result = _overhead(FULL_TREE_M, FANOUT,
                                 quota=FULL_TREE_QUOTA)
    elapsed = time.perf_counter() - started
    reporter.line(f"tree point at M = {FULL_TREE_M}: "
                  f"overhead = {overhead * 100:.1f}%, "
                  f"collector served {result.collector_served} combined "
                  f"messages for {result.messages_sent} worker passes "
                  f"({elapsed:.1f}s wall)")
    reporter.metric("full_tree_m", FULL_TREE_M)
    reporter.metric("full_tree_overhead", overhead)
    reporter.metric("full_tree_collector_served", result.collector_served)
    reporter.metric("full_tree_messages_sent", result.messages_sent)
    assert result.total_volume == FULL_TREE_M * FULL_TREE_QUOTA
    assert overhead <= OVERHEAD_LIMIT
    # The coalescing claim at scale: rank 0 sees orders of magnitude
    # fewer messages than the workers sent.
    assert result.collector_served * 10 <= result.messages_sent


def paper_sized(rng):
    return np.full((1000, 2), rng.random())


def test_multiprocess_transport_queue_vs_shm(reporter):
    timings = {}
    estimates = {}
    for transport in ("queue", "shm"):
        config = RunConfig(maxsv=MP_MAXSV, processors=MP_PROCESSORS,
                           nrow=1000, ncol=2, perpass=0.0, peraver=0.0,
                           transport=transport)
        started = time.perf_counter()
        result = run_multiprocess(paper_sized, config, use_files=False)
        timings[transport] = time.perf_counter() - started
        estimates[transport] = (result.estimates.mean.tobytes(),
                                result.estimates.variance.tobytes())
        assert result.total_volume == MP_MAXSV
        reporter.line(
            f"{transport:5s}: {timings[transport]:6.2f}s for {MP_MAXSV} "
            f"paper-sized (1000x2) per-realization passes on "
            f"{MP_PROCESSORS} workers "
            f"({MP_MAXSV / timings[transport]:.0f} msg/s)")
        reporter.metric(f"{transport}_seconds", timings[transport])
    assert estimates["shm"] == estimates["queue"]
    ratio = timings["shm"] / timings["queue"]
    reporter.line(f"shm/queue wall-time ratio: {ratio:.2f} "
                  f"(ceiling {TRANSPORT_CEILING})")
    reporter.metric("shm_over_queue_ratio", ratio)
    assert ratio < TRANSPORT_CEILING
