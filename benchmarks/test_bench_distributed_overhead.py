"""Overhead of the distributed TCP backend versus multiprocess.

Two figures frame the cost of going over the network:

* **Framing throughput** — encode+decode cycles of a paper-sized
  (1000x2, §3.6 "about 120 Kbytes") cumulative ``MomentMessage`` frame
  through ``runtime/wire.py``: length-prefixed header, JSON body,
  CRC-32 verify.  This bounds the per-pass serialization tax a pool
  link pays that a multiprocessing queue does not.
* **End-to-end dispatch overhead** — the same trivial-realization run
  (the regime of the paper's Fig. 2 where overhead dominates because
  tau is tiny) on the multiprocess backend and on the distributed
  backend against one local ``parmonc-pool``.  The estimates must stay
  bit-identical; the wall-clock delta is the price of TCP framing,
  heartbeats and the asyncio hop.

Wall-clock ratios of separate runs on a shared container are noisy, so
the assertions are correctness (parity, volumes) plus a deliberately
loose regression ceiling; the JSON artifact records the raw seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.parmonc import parmonc
from repro.runtime.messages import MomentMessage
from repro.runtime.pool import PoolServer
from repro.runtime.wire import (
    FrameKind,
    decode_frame,
    encode_frame,
    message_from_payload,
    message_to_payload,
)
from repro.stats.statistic import StatisticSet

SMOKE = bool(os.environ.get("PARMONC_BENCH_SMOKE"))

FRAME_CYCLES = 100 if SMOKE else 1_000
MAXSV = 2_000 if SMOKE else 20_000
REPEATS = 2 if SMOKE else 3
#: Gross-regression ceiling on distributed/multiprocess wall time for
#: the trivial workload.  Connection setup plus framing should cost a
#: small multiple at worst, even on a noisy shared machine.
END_TO_END_CEILING = 20.0


def trivial(rng):
    return rng.random()


def paper_sized_message() -> MomentMessage:
    """A cumulative snapshot of the paper's default 1000x2 matrix."""
    stats = StatisticSet.for_run(("moments",), 1000, 2)
    rng = np.random.default_rng(11)
    for _ in range(3):
        stats.update(rng.random((1000, 2)), compute_time=0.01)
    return MomentMessage(rank=1, snapshot=stats.moments.snapshot(),
                         sent_at=3.5, final=False)


def test_framing_throughput(benchmark, reporter):
    message = paper_sized_message()
    frame = encode_frame(FrameKind.DATA, message_to_payload(message))

    def cycle():
        kind, payload = decode_frame(
            encode_frame(FrameKind.DATA, message_to_payload(message)))
        assert kind is FrameKind.DATA
        return message_from_payload(payload)

    began = time.perf_counter()
    for _ in range(FRAME_CYCLES):
        cycle()
    elapsed = time.perf_counter() - began
    per_frame = elapsed / FRAME_CYCLES
    benchmark.pedantic(cycle, rounds=3, iterations=10)
    reporter.metric("frame_bytes", len(frame))
    reporter.metric("cycles", FRAME_CYCLES)
    reporter.metric("seconds_per_cycle", per_frame)
    reporter.metric("frames_per_second", 1.0 / per_frame)
    reporter.line(f"DATA frame: {len(frame)} bytes for the 1000x2 "
                  f"cumulative snapshot (paper: ~120 Kbytes)")
    reporter.line(f"encode+decode+rebuild: {per_frame * 1e3:.2f} ms "
                  f"per pass ({1.0 / per_frame:,.0f} frames/s)")
    reporter.line("one data pass per perpass seconds per worker -> "
                  "framing is negligible for the paper's tau >= seconds")


def test_distributed_matches_multiprocess_end_to_end(reporter, tmp_path):
    def run_multiprocess(round_index):
        return parmonc(trivial, maxsv=MAXSV, processors=2,
                       backend="multiprocess", perpass=1e9, peraver=1e9,
                       workdir=tmp_path / f"mp{round_index}")

    def run_distributed(round_index):
        server = PoolServer(port=0, workers=2, start_method="fork")
        host, port = server.start()
        try:
            return parmonc(trivial, maxsv=MAXSV, processors=2,
                           backend="distributed",
                           connect=f"{host}:{port}",
                           perpass=1e9, peraver=1e9,
                           workdir=tmp_path / f"dist{round_index}")
        finally:
            server.stop()

    times = {"multiprocess": [], "distributed": []}
    results = {}
    for index in range(REPEATS):
        for name, runner in (("multiprocess", run_multiprocess),
                             ("distributed", run_distributed)):
            began = time.perf_counter()
            results[name] = runner(index)
            times[name].append(time.perf_counter() - began)

    for name in ("multiprocess", "distributed"):
        assert results[name].total_volume == MAXSV
    assert (results["distributed"].estimates.mean[0, 0]
            == results["multiprocess"].estimates.mean[0, 0])
    assert (results["distributed"].estimates.variance[0, 0]
            == results["multiprocess"].estimates.variance[0, 0])

    best_mp = min(times["multiprocess"])
    best_dist = min(times["distributed"])
    ratio = best_dist / best_mp if best_mp > 0 else float("nan")
    assert ratio < END_TO_END_CEILING
    reporter.metric("maxsv", MAXSV)
    reporter.metric("seconds_multiprocess", best_mp)
    reporter.metric("seconds_distributed", best_dist)
    reporter.metric("distributed_over_multiprocess", ratio)
    reporter.line(f"{MAXSV} trivial realizations, M=2, best of "
                  f"{REPEATS}:")
    reporter.line(f"  multiprocess: {best_mp:.3f} s   "
                  f"distributed (local TCP pool): {best_dist:.3f} s   "
                  f"ratio {ratio:.2f}")
    reporter.line("estimates bit-identical across the wire; the delta "
                  "is pool connection setup + framing + heartbeats")
