"""The streaming scheduler service under load (PR 10's two claims).

Two experiments:

* **Million-submission load study** — ~10^6 synthetic submissions
  replayed against the *live* admission loop on a virtual clock
  (:mod:`repro.apps.loadstudy`), validated two ways: the rejection
  count must equal the G/G/c/K reference simulation *exactly* (shared
  generator, same event order), and both the mean wait and the
  blocking fraction must land within 50% of an independent Monte Carlo
  prediction computed with the library's own machinery on the
  ``simcluster`` backend.
* **Staggered arrivals vs. sealed batch** — jobs that trickle in over
  a submission window.  The streaming service starts each job the
  moment it arrives; the sealed batch must wait for the window to
  close before its first dispatch.  The makespan ratio is the payoff
  of the event-driven refactor, and per-job estimates must stay
  bit-identical between the two schedules.
"""

from __future__ import annotations

import os
import time

from repro.apps.loadstudy import run_load_study
from repro.apps.queueing import GGcKQueue, make_ggck_realization, \
    simulate_ggck
from repro.core.parmonc import parmonc
from repro.rng.distributions import exponential
from repro.rng.lcg128 import Lcg128
from repro.runtime.config import RunConfig
from repro.runtime.engine import create_backend
from repro.runtime.job import JobSpec, JobStatus
from repro.runtime.scheduler import Scheduler

SMOKE = bool(os.environ.get("PARMONC_BENCH_SMOKE"))

#: Arrivals pushed at the live admission loop.
SUBMISSIONS = 50_000 if SMOKE else 1_000_000
#: Monte Carlo realizations (simulated G/G/c/K days) for the
#: independent prediction.
PREDICTION_DAYS = 16 if SMOKE else 64

#: Staggered-arrival experiment shape.
STAGGER_JOBS = 6
STAGGER_GAP = 0.1 if SMOKE else 0.25
TAU = 0.005 if SMOKE else 0.01
MAXSV = 24
WORKERS = 4


def busy(rng):
    time.sleep(TAU)
    return rng.random()


def test_million_submission_load_study(reporter):
    queue = GGcKQueue(servers=4, capacity=8, customers=SUBMISSIONS,
                      interarrival=lambda rng: exponential(rng, 3.5),
                      service=lambda rng: exponential(rng, 1.0))

    began = time.perf_counter()
    study = run_load_study(queue, Lcg128(43))
    study_seconds = time.perf_counter() - began

    reference_wait, reference_blocked, _ = simulate_ggck(queue,
                                                         Lcg128(43))

    # Independent MC prediction: 2000-customer days, library machinery,
    # simcluster backend, different seed.
    prediction_queue = GGcKQueue(
        servers=queue.servers, capacity=queue.capacity, customers=2_000,
        interarrival=queue.interarrival, service=queue.service)
    prediction = parmonc(make_ggck_realization(prediction_queue),
                         ncol=3, maxsv=PREDICTION_DAYS, processors=4,
                         perpass=0.0, peraver=0.0, backend="simcluster",
                         use_files=False)
    predicted_wait = prediction.estimates.mean[0, 0]
    predicted_block = prediction.estimates.mean[0, 1]

    reporter.line("million-submission load study (G/G/c/K, c=4, K=8)")
    reporter.line(f"  submissions            {study.submitted:>10d}")
    reporter.line(f"  admitted               {study.admitted:>10d}")
    reporter.line(f"  rejected               {study.rejected:>10d}")
    reporter.line(f"  reference blocked      "
                  f"{round(reference_blocked * queue.customers):>10d}")
    reporter.line(f"  mean wait (measured)   {study.mean_wait:>10.6f}")
    reporter.line(f"  mean wait (reference)  {reference_wait:>10.6f}")
    reporter.line(f"  mean wait (MC)         {predicted_wait:>10.6f}")
    reporter.line(f"  blocking (MC)          {predicted_block:>10.6f}")
    reporter.line(f"  throughput             "
                  f"{study.submitted / study_seconds:>10.0f} arrivals/s")
    reporter.metric("submissions", study.submitted)
    reporter.metric("rejected", study.rejected)
    reporter.metric("mean_wait", study.mean_wait)
    reporter.metric("reference_wait", reference_wait)
    reporter.metric("predicted_wait", float(predicted_wait))
    reporter.metric("predicted_block", float(predicted_block))
    reporter.metric("arrivals_per_second",
                    study.submitted / study_seconds)

    # Exact leg: shared generator, same event order — no tolerance.
    assert study.rejected == round(reference_blocked * queue.customers)
    assert study.mean_wait == reference_wait
    # Statistical leg: the ISSUE's 50% envelope around the MC forecast.
    assert abs(study.mean_wait - predicted_wait) <= 0.5 * predicted_wait
    assert (abs(study.rejected / study.submitted - predicted_block)
            <= 0.5 * predicted_block)


def _stagger_specs():
    specs = []
    for index in range(STAGGER_JOBS):
        config = RunConfig(maxsv=MAXSV, processors=2, perpass=0.0,
                           peraver=0.0, seqnum=index)
        specs.append(JobSpec(routine=busy, config=config,
                             name=f"job{index}", use_files=False))
    return specs


def test_staggered_arrivals_beat_sealed_batch(reporter):
    # Streaming: each job starts the moment it arrives.
    backend = create_backend("multiprocess", start_method="fork")
    scheduler = Scheduler(backend, workers=WORKERS)
    scheduler.start()
    began = time.perf_counter()
    streamed = []
    for spec in _stagger_specs():
        if streamed:
            time.sleep(STAGGER_GAP)
        streamed.append(scheduler.submit(spec))
    scheduler.shutdown(timeout=300.0)
    streaming_seconds = time.perf_counter() - began
    assert all(job.status is JobStatus.DONE for job in streamed)

    # Sealed batch: the same arrival schedule, but dispatch can only
    # begin once the submission window closes.
    began = time.perf_counter()
    time.sleep(STAGGER_GAP * (STAGGER_JOBS - 1))
    sealed = parmonc(jobs=[{"realization": busy, "name": f"job{i}",
                            "maxsv": MAXSV, "processors": 2,
                            "seqnum": i, "perpass": 0.0, "peraver": 0.0,
                            "use_files": False}
                           for i in range(STAGGER_JOBS)],
                     backend="multiprocess", workers=WORKERS,
                     start_method="fork")
    sealed_seconds = time.perf_counter() - began

    ratio = sealed_seconds / streaming_seconds
    reporter.line("staggered arrivals: streaming service vs sealed batch")
    reporter.line(f"  jobs                 {STAGGER_JOBS}")
    reporter.line(f"  arrival gap          {STAGGER_GAP:.2f} s")
    reporter.line(f"  streaming makespan   {streaming_seconds:8.3f} s")
    reporter.line(f"  sealed makespan      {sealed_seconds:8.3f} s")
    reporter.line(f"  speedup              {ratio:8.2f}x")
    reporter.metric("streaming_seconds", streaming_seconds)
    reporter.metric("sealed_seconds", sealed_seconds)
    reporter.metric("speedup", ratio)

    # Scheduling must never change the numbers: the streamed jobs'
    # estimates are bit-identical to the sealed batch's.
    for job, result in zip(streamed, sealed):
        assert job.result.total_volume == result.total_volume == MAXSV
        assert (job.result.estimates.mean.tobytes()
                == result.estimates.mean.tobytes())
        assert (job.result.estimates.abs_error.tobytes()
                == result.estimates.abs_error.tobytes())

    # The event-driven service must not be slower than sealing the
    # batch; full-size it overlaps most of the submission window.
    assert ratio >= (1.0 if SMOKE else 1.1)
