"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper (see
DESIGN.md's experiment index), prints it through pytest's capture so it
appears in ``bench_output.txt``, and appends it to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class Reporter:
    """Prints a reproduction table to the live terminal and a file."""

    def __init__(self, name: str, capsys) -> None:
        self._name = name
        self._capsys = capsys
        self._lines: list[str] = []

    def line(self, text: str = "") -> None:
        """Emit one line of the reproduction report."""
        self._lines.append(text)
        with self._capsys.disabled():
            print(text)

    def flush(self) -> None:
        """Persist the collected report under benchmarks/results/."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self._name}.txt"
        path.write_text("\n".join(self._lines) + "\n")


@pytest.fixture
def reporter(request, capsys):
    """A :class:`Reporter` named after the requesting test."""
    name = request.node.name.replace("[", "_").replace("]", "")
    instance = Reporter(name, capsys)
    yield instance
    instance.flush()
