"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper (see
DESIGN.md's experiment index), prints it through pytest's capture so it
appears in ``bench_output.txt``, and appends it to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.  Numeric series
recorded via :meth:`Reporter.metric` additionally land in
``benchmarks/results/<name>.json`` so downstream tooling (plots,
regression tracking) never has to parse the human tables.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class Reporter:
    """Prints a reproduction table to the live terminal and a file."""

    def __init__(self, name: str, capsys) -> None:
        self._name = name
        self._capsys = capsys
        self._lines: list[str] = []
        self._metrics: dict = {}

    def line(self, text: str = "") -> None:
        """Emit one line of the reproduction report."""
        self._lines.append(text)
        with self._capsys.disabled():
            print(text)

    def metric(self, name: str, value) -> None:
        """Record one machine-readable figure (repeats become a series).

        Values must be JSON-serializable plain data; recording the same
        name again turns the entry into a list, so per-point series
        (``reporter.metric("t_comp", t)`` inside a sweep) come out as
        arrays in the JSON artifact.
        """
        if name in self._metrics:
            existing = self._metrics[name]
            if not isinstance(existing, list):
                self._metrics[name] = [existing]
            self._metrics[name].append(value)
        else:
            self._metrics[name] = value

    def flush(self) -> None:
        """Persist the collected report under benchmarks/results/."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self._name}.txt"
        path.write_text("\n".join(self._lines) + "\n")
        payload = {
            "benchmark": self._name,
            "written_at": datetime.now(timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"),
            "metrics": self._metrics,
            "report_lines": len(self._lines),
        }
        (RESULTS_DIR / f"{self._name}.json").write_text(
            json.dumps(payload, indent=2) + "\n")


@pytest.fixture
def reporter(request, capsys):
    """A :class:`Reporter` named after the requesting test."""
    name = request.node.name.replace("[", "_").replace("]", "")
    instance = Reporter(name, capsys)
    yield instance
    instance.flush()
