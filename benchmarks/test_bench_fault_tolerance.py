"""Fault-tolerance ablation: what perpass actually buys.

The paper motivates periodic data passes with error control and
"save-points" (§2.2).  This bench quantifies the save-point value: on a
cluster where nodes fail mid-run, the work lost to a failure is bounded
by the pass period — per-realization passing loses at most the
realization in flight, while hour-scale periods lose the whole window.
Combined with ``manaver``-style recovery of collector-side subtotals,
this is the library's end-to-end fault story.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DurationModel
from repro.cluster.simulation import ClusterSimulation
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.stats.accumulator import MomentSnapshot

TAU = 7.7


def run_with_failures(perpass: float):
    """16 nodes, 4 of which die at staggered times mid-run."""
    config = RunConfig(maxsv=1600, processors=16, perpass=perpass,
                       peraver=3600.0)
    failures = {3: 200.5, 7: 350.5, 11: 500.5, 15: 650.5}
    spec = ClusterSpec(
        duration_model=DurationModel(mean=TAU, distribution="fixed"),
        failures=failures)
    collector = Collector(config, MomentSnapshot.zero(1, 1), None)
    simulation = ClusterSimulation(config, spec, collector)
    result = simulation.run()
    return result, collector


def test_lost_work_bounded_by_pass_period(benchmark, reporter):
    def sweep():
        return {perpass: run_with_failures(perpass)
                for perpass in (0.0, 60.0, 600.0)}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.line("fault-tolerance ablation: 16 nodes, 4 staggered "
                  f"failures, tau = {TAU}s")
    reporter.line("perpass (s)        computed  delivered  lost  "
                  "bound (4*ceil(perpass/tau)+4)")
    for perpass, (result, collector) in rows.items():
        label = ("every realization" if perpass == 0.0
                 else f"{perpass:.0f}")
        bound = 4 * (int(perpass // TAU) + 1)
        reporter.line(f"{label:>17s}  {result.total_volume:9d}  "
                      f"{collector.total_volume:9d}  "
                      f"{result.lost_realizations:4d}  {bound:6d}")
        assert result.lost_realizations <= bound
    strict_loss = rows[0.0][0].lost_realizations
    lax_loss = rows[600.0][0].lost_realizations
    assert strict_loss <= 4
    assert lax_loss > strict_loss
    reporter.line("lost work is bounded by the pass period — the "
                  "save-point argument of §2.2, quantified  [extension]")


def test_estimates_survive_failures_unbiased(benchmark, reporter):
    def run():
        config = RunConfig(maxsv=2000, processors=8, perpass=0.0,
                           peraver=3600.0)
        spec = ClusterSpec(
            duration_model=DurationModel(mean=1.0),
            failures={5: 100.5, 6: 150.5})
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        ClusterSimulation(config, spec, collector,
                          routine=lambda rng: rng.random()).run()
        return collector.estimates()

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter.line("estimate quality after two node failures "
                  f"(L delivered = {estimates.volume})")
    reporter.line(f"mean = {estimates.mean[0, 0]:.5f} (exact 0.5), "
                  f"eps = {estimates.abs_error[0, 0]:.5f}")
    assert abs(estimates.mean[0, 0] - 0.5) \
        <= 3 * estimates.abs_error[0, 0]
    reporter.line("failures shrink the sample but never bias it: "
                  "every delivered realization is a complete, "
                  "stream-pure sample  [extension]")
