"""The Dyadkin–Hamilton selection criterion (paper reference [14]).

The 128-bit multiplier was chosen by "a study of 128-bit multipliers
for congruential pseudorandom number generators" — a spectral-test
survey.  This bench regenerates a table in that style: normalized
figures of merit ``S_d`` (1.0 = theoretically optimal lattice) for the
PARMONC multiplier against the r=40 legacy multiplier, MINSTD, and the
canonical negative control RANDU.
"""

from __future__ import annotations

import pytest

from repro.rng.multiplier import BASE_MULTIPLIER, MODULUS
from repro.rng.spectral import spectral_report

CANDIDATES = {
    "rnd128 (5^101, m=2^128)": (BASE_MULTIPLIER, MODULUS),
    "legacy40 (5^17, m=2^40)": (pow(5, 17, 1 << 40), 1 << 40),
    "MINSTD (16807, m=2^31-1)": (16807, (1 << 31) - 1),
    "RANDU (65539, m=2^31)": (65539, 1 << 31),
}
DIMENSIONS = (2, 3, 4, 5, 6)


def compute_merits():
    return {name: spectral_report(multiplier, modulus,
                                  dimensions=DIMENSIONS)
            for name, (multiplier, modulus) in CANDIDATES.items()}


def test_spectral_table(benchmark, reporter):
    reports = benchmark.pedantic(compute_merits, rounds=1, iterations=1)
    reporter.line("spectral figures of merit S_d "
                  "(1.0 = optimal lattice; < 0.1 = defective)")
    header = f"{'multiplier':<26s}" + "".join(
        f"   S_{d}  " for d in DIMENSIONS)
    reporter.line(header)
    for name, report in reports.items():
        row = f"{name:<26s}" + "".join(
            f" {report.merits[d]:6.3f} " for d in DIMENSIONS)
        reporter.line(row)
    # The selection property: the PARMONC multiplier is healthy in all
    # tested dimensions...
    assert reports["rnd128 (5^101, m=2^128)"].worst > 0.3
    # ...RANDU is catastrophic exactly in dimension 3...
    assert reports["RANDU (65539, m=2^31)"].merits[3] < 0.02
    assert reports["RANDU (65539, m=2^31)"].merits[2] > 0.3
    # ...and the legacy generator's lattice is fine; its problem is the
    # period (shown in test_bench_rng_quality), not the merit.
    assert reports["legacy40 (5^17, m=2^40)"].worst > 0.1
    reporter.line("PARMONC multiplier passes the Dyadkin-Hamilton "
                  "criterion in dimensions 2-6; RANDU's d=3 defect is "
                  "detected  [reproduced]")
