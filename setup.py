"""Setup shim so `setup.py develop` works offline (no wheel package).

All real metadata lives in pyproject.toml; this file exists because the
build environment has no network access and no `wheel` distribution,
which PEP 660 editable installs require with this setuptools version.
"""

from setuptools import setup

setup()
