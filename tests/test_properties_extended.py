"""Extended property-based tests across the newer subsystems."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.qmc import halton_points, lattice_points, radical_inverse
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import STATE_MASK
from repro.rng.spectral import dual_lattice_basis, gauss_reduce
from repro.stats.covariance import CovarianceAccumulator
from repro.vr import AntitheticStream, antithetic_realization

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)


class TestQmcProperties:
    @given(index=st.integers(0, 10 ** 9), base=st.integers(2, 50))
    @settings(max_examples=100)
    def test_radical_inverse_in_unit_interval(self, index, base):
        value = radical_inverse(index, base)
        assert 0.0 <= value < 1.0

    @given(index=st.integers(1, 10 ** 6), base=st.integers(2, 20))
    @settings(max_examples=60)
    def test_radical_inverse_injective_per_base(self, index, base):
        # Distinct indices map to distinct values (digit reversal is a
        # bijection on finite-digit expansions).
        assert radical_inverse(index, base) \
            != radical_inverse(index + 1, base)

    @given(n=st.integers(1, 200), dim=st.integers(1, 8))
    @settings(max_examples=40)
    def test_halton_points_shape_and_range(self, n, dim):
        points = halton_points(n, dim)
        assert points.shape == (n, dim)
        assert np.all((points >= 0.0) & (points < 1.0))

    @given(n=st.integers(1, 128),
           z=st.tuples(st.integers(0, 500), st.integers(0, 500)))
    @settings(max_examples=60)
    def test_lattice_group_structure(self, n, z):
        # x_i + x_j = x_{(i+j) mod n} (mod 1): lattices are groups.
        points = lattice_points(n, z)
        i, j = 1 % n, (n - 1)
        summed = (points[i] + points[j]) % 1.0
        # Compare on the circle: 0.9999... and 0.0 are the same point.
        difference = np.abs(summed - points[(i + j) % n])
        circular = np.minimum(difference, 1.0 - difference)
        assert np.all(circular < 1e-9)


class TestVrProperties:
    @given(coefficients=st.lists(
        st.floats(-3.0, 3.0, allow_nan=False), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_antithetic_preserves_polynomial_means(self, coefficients):
        # For any polynomial integrand, the antithetic pair average has
        # the same expectation; check the *sample* means over the same
        # stream budget agree within a loose statistical margin.
        def poly(rng):
            u = rng.random()
            return sum(c * u ** k for k, c in enumerate(coefficients))

        exact = sum(c / (k + 1) for k, c in enumerate(coefficients))
        wrapped = antithetic_realization(poly)
        from repro.rng.streams import StreamTree
        tree = StreamTree()
        values = [float(wrapped(tree.rng(0, 0, r))) for r in range(64)]
        scale = sum(abs(c) for c in coefficients) + 1e-9
        assert abs(np.mean(values) - exact) < 0.6 * scale

    @given(draws=st.integers(1, 200))
    @settings(max_examples=30)
    def test_antithetic_stream_is_involution(self, draws):
        # Mirroring twice recovers the original draws exactly.
        inner = Lcg128()
        double = AntitheticStream(AntitheticStream(inner))
        reference = Lcg128()
        for _ in range(draws % 20 + 1):
            assert double.random() == reference.random()


class TestSpectralProperties:
    @given(multiplier=st.integers(1, 2 ** 16 - 1).filter(lambda m: m % 2),
           log_modulus=st.integers(6, 16))
    @settings(max_examples=50)
    def test_gauss_reduced_vector_is_dual(self, multiplier, log_modulus):
        modulus = 1 << log_modulus
        multiplier %= modulus
        assume(multiplier % 2 == 1)
        basis = dual_lattice_basis(multiplier, modulus, 2)
        shortest, second = gauss_reduce(basis[0], basis[1])
        for vector in (shortest, second):
            assert (vector[0] + vector[1] * multiplier) % modulus == 0
        # Reduced property: |u| <= |v|.
        assert sum(c * c for c in shortest) \
            <= sum(c * c for c in second)


class TestCovarianceProperties:
    @given(data=st.lists(
        st.tuples(st.floats(-50, 50, allow_nan=False),
                  st.floats(-50, 50, allow_nan=False)),
        min_size=2, max_size=40))
    @settings(max_examples=50)
    def test_covariance_psd_and_symmetric(self, data):
        accumulator = CovarianceAccumulator(1, 2)
        for x, y in data:
            accumulator.add(np.array([[x, y]]))
        covariance = accumulator.covariance()
        assert np.allclose(covariance, covariance.T)
        eigenvalues = np.linalg.eigvalsh(covariance)
        scale = max(1.0, float(np.abs(covariance).max()))
        assert eigenvalues.min() >= -1e-8 * scale

    @given(data=st.lists(
        st.tuples(st.floats(-10, 10, allow_nan=False),
                  st.floats(-10, 10, allow_nan=False)),
        min_size=3, max_size=30),
        weights=st.tuples(st.floats(-2, 2, allow_nan=False),
                          st.floats(-2, 2, allow_nan=False)))
    @settings(max_examples=50)
    def test_contrast_error_matches_direct_computation(self, data,
                                                       weights):
        accumulator = CovarianceAccumulator(1, 2)
        combined = []
        for x, y in data:
            accumulator.add(np.array([[x, y]]))
            combined.append(weights[0] * x + weights[1] * y)
        direct = 3.0 * math.sqrt(np.var(combined) / len(combined))
        # The accumulator uses uncentered moment sums; catastrophic
        # cancellation bounds its agreement with the centered numpy
        # computation at ~sqrt(eps)*scale, not machine epsilon.
        scale = 1.0 + max(abs(v) for v in combined)
        assert accumulator.contrast_error(list(weights)) \
            == pytest.approx(direct, rel=1e-6, abs=3e-6 * scale)


class TestStatePurityProperties:
    @given(state=st.integers(1, STATE_MASK).map(lambda v: v | 1),
           draws=st.integers(0, 50))
    @settings(max_examples=50)
    def test_getstate_roundtrip_any_position(self, state, draws):
        generator = Lcg128(state)
        for _ in range(draws):
            generator.random()
        saved = generator.getstate()
        tail = [generator.random() for _ in range(5)]
        restored = Lcg128()
        restored.setstate(saved)
        assert [restored.random() for _ in range(5)] == tail
