"""Tests for the statistical test battery (repro.rng.testing).

Strategy: every test must (a) pass on a healthy sample from the
reference generator, (b) reject a sample crafted to violate exactly the
property it checks, and (c) validate its inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rng.streams import StreamTree
from repro.rng.testing import (
    BatteryReport,
    autocorrelation_test,
    chi_square_uniformity,
    gap_test,
    interstream_collision_check,
    interstream_correlation_test,
    ks_uniformity,
    permutation_test,
    run_battery,
    runs_above_below_test,
    runs_up_down_test,
    serial_pairs_test,
)
from repro.rng.vectorized import VectorLcg128


@pytest.fixture
def biased_sample(uniform_sample):
    """Uniforms squashed toward zero: fails marginal-distribution tests."""
    return uniform_sample ** 2


@pytest.fixture
def correlated_sample(uniform_sample):
    """A strongly autocorrelated sequence (moving average of uniforms)."""
    return np.convolve(uniform_sample, np.ones(8) / 8.0, mode="valid")


class TestChiSquare:
    def test_passes_good_sample(self, uniform_sample):
        assert chi_square_uniformity(uniform_sample).passed

    def test_rejects_biased_sample(self, biased_sample):
        assert not chi_square_uniformity(biased_sample).passed

    def test_details(self, uniform_sample):
        result = chi_square_uniformity(uniform_sample, bins=32)
        assert result.details["dof"] == 31
        assert result.sample_size == uniform_sample.size

    def test_too_few_bins(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            chi_square_uniformity(uniform_sample, bins=1)

    def test_small_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            chi_square_uniformity(np.full(10, 0.5), bins=64)

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ConfigurationError):
            chi_square_uniformity(np.array([0.5] * 1000 + [1.5]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            chi_square_uniformity(np.array([]))


class TestKolmogorovSmirnov:
    def test_passes_good_sample(self, uniform_sample):
        assert ks_uniformity(uniform_sample).passed

    def test_rejects_biased_sample(self, biased_sample):
        assert not ks_uniformity(biased_sample).passed

    def test_statistic_is_max_deviation(self):
        # A sample concentrated at 0.9 has D ~ 0.9.
        result = ks_uniformity(np.full(1000, 0.9))
        assert result.statistic == pytest.approx(0.9, abs=0.01)


class TestSerialPairs:
    def test_passes_good_sample(self, uniform_sample):
        assert serial_pairs_test(uniform_sample).passed

    def test_rejects_pairwise_dependence(self, uniform_sample):
        # Duplicate each draw: pairs (x, x) live on the diagonal.
        doubled = np.repeat(uniform_sample[:20_000], 2)
        assert not serial_pairs_test(doubled).passed

    def test_grid_validation(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            serial_pairs_test(uniform_sample, grid=1)

    def test_small_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            serial_pairs_test(np.full(100, 0.5), grid=8)


class TestRuns:
    def test_above_below_passes_good_sample(self, uniform_sample):
        assert runs_above_below_test(uniform_sample).passed

    def test_above_below_rejects_alternation(self):
        values = np.tile([0.2, 0.8], 5000)
        assert not runs_above_below_test(values).passed

    def test_above_below_rejects_blocks(self):
        values = np.concatenate([np.full(5000, 0.2), np.full(5000, 0.8)])
        assert not runs_above_below_test(values).passed

    def test_above_below_degenerate_sample(self):
        result = runs_above_below_test(np.full(100, 0.9))
        assert not result.passed
        assert result.p_value == 0.0

    def test_up_down_passes_good_sample(self, uniform_sample):
        assert runs_up_down_test(uniform_sample).passed

    def test_up_down_rejects_monotone_sections(self, uniform_sample):
        sorted_blocks = np.sort(
            uniform_sample[:10_000].reshape(100, 100), axis=1).ravel()
        assert not runs_up_down_test(sorted_blocks).passed

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            runs_above_below_test(np.full(5, 0.5))
        with pytest.raises(ConfigurationError):
            runs_up_down_test(np.full(5, 0.5))


class TestGap:
    def test_passes_good_sample(self, uniform_sample):
        assert gap_test(uniform_sample).passed

    def test_rejects_periodic_marker_hits(self):
        # Marker interval hit exactly every 4th draw: gaps are constant.
        values = np.tile([0.25, 0.75, 0.8, 0.9], 10_000)
        assert not gap_test(values, low=0.0, high=0.5).passed

    def test_interval_validation(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            gap_test(uniform_sample, low=0.5, high=0.5)
        with pytest.raises(ConfigurationError):
            gap_test(uniform_sample, low=-0.1, high=0.5)

    def test_adaptive_max_gap(self, uniform_sample):
        result = gap_test(uniform_sample[:5000])
        assert result.details["max_gap"] >= 1

    def test_explicit_max_gap_too_large(self):
        with pytest.raises(ConfigurationError):
            gap_test(np.tile([0.25, 0.75], 100), max_gap=40)


class TestAutocorrelation:
    def test_passes_good_sample(self, uniform_sample):
        assert autocorrelation_test(uniform_sample, lag=1).passed
        assert autocorrelation_test(uniform_sample, lag=13).passed

    def test_rejects_moving_average(self, correlated_sample):
        assert not autocorrelation_test(correlated_sample, lag=1).passed

    def test_constant_sample_rejected_with_p_zero(self):
        result = autocorrelation_test(np.full(1000, 0.5))
        assert result.p_value == 0.0

    def test_lag_validation(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            autocorrelation_test(uniform_sample, lag=0)
        with pytest.raises(ConfigurationError):
            autocorrelation_test(np.full(10, 0.5), lag=5)


class TestPermutation:
    def test_passes_good_sample(self, uniform_sample):
        assert permutation_test(uniform_sample).passed

    def test_rejects_sawtooth(self):
        # Strictly increasing inside every tuple: one ordering only.
        values = np.tile([0.1, 0.5, 0.9], 5000)
        values = values + np.random.default_rng(0).uniform(
            0, 1e-6, values.size)
        assert not permutation_test(values, tuple_size=3).passed

    def test_tuple_size_validation(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            permutation_test(uniform_sample, tuple_size=1)
        with pytest.raises(ConfigurationError):
            permutation_test(uniform_sample, tuple_size=7)

    def test_small_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            permutation_test(np.full(20, 0.5), tuple_size=4)


class TestInterstream:
    def test_disjoint_streams_uncorrelated(self):
        tree = StreamTree()
        a = VectorLcg128(tree.rng(0, 0, 0)).uniforms(20_000)
        b = VectorLcg128(tree.rng(0, 1, 0)).uniforms(20_000)
        assert interstream_correlation_test(a, b).passed

    def test_identical_streams_rejected(self, uniform_sample):
        result = interstream_correlation_test(uniform_sample,
                                              uniform_sample)
        assert not result.passed

    def test_shape_validation(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            interstream_correlation_test(uniform_sample,
                                         uniform_sample[:-1])

    def test_collision_check_passes_within_budget(self, tree):
        result = interstream_collision_check(
            tree, experiment=0, processors=512,
            draws_per_processor=10 ** 12)
        assert result.passed
        assert result.details["arithmetic_ok"]

    def test_collision_check_fails_beyond_budget(self, tree):
        result = interstream_collision_check(
            tree, experiment=0, processors=2,
            draws_per_processor=tree.leaps.processor_leap + 1)
        assert not result.passed

    def test_collision_check_capacity_guard(self, tree):
        with pytest.raises(ConfigurationError):
            interstream_collision_check(
                tree, experiment=0, processors=2 ** 18,
                draws_per_processor=10)


class TestBattery:
    def test_reference_generator_passes(self, uniform_sample):
        report = run_battery(uniform_sample, "rnd128")
        assert isinstance(report, BatteryReport)
        assert report.all_passed, report.render()

    def test_bad_generator_fails_most_tests(self, biased_sample):
        report = run_battery(biased_sample, "biased")
        assert report.n_failed >= 3

    def test_subset_selection(self, uniform_sample):
        report = run_battery(uniform_sample, tests=["chi_square", "ks"])
        assert len(report.results) == 2

    def test_unknown_test_rejected(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            run_battery(uniform_sample, tests=["nope"])

    def test_render_contains_summary(self, uniform_sample):
        report = run_battery(uniform_sample, "demo",
                             tests=["chi_square"])
        rendered = report.render()
        assert "demo" in rendered
        assert "1/1 tests passed" in rendered
        assert str(report) == rendered

    def test_result_str_marks_failures(self, biased_sample):
        result = chi_square_uniformity(biased_sample)
        assert "FAIL" in str(result)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ConfigurationError):
            run_battery(np.full((10, 10), 0.5))
