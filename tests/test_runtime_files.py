"""Tests for repro.runtime.files: result files, save-points, genparam."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ResumeError
from repro.rng.multiplier import DEFAULT_LEAPS
from repro.runtime.files import (
    DataDirectory,
    read_genparam_file,
    render_ci_table,
    render_log,
    render_mean_matrix,
    write_genparam_file,
)
from repro.runtime.messages import MomentMessage, message_bytes
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot


@pytest.fixture
def estimates():
    accumulator = MomentAccumulator(2, 2)
    accumulator.add(np.array([[1.0, 2.0], [3.0, 4.0]]), compute_time=0.5)
    accumulator.add(np.array([[2.0, 2.0], [5.0, 4.0]]), compute_time=0.7)
    return accumulator.estimates()


class TestRendering:
    def test_mean_matrix_layout(self, estimates):
        text = render_mean_matrix(estimates)
        rows = text.strip().splitlines()
        assert len(rows) == 2
        first_row = [float(v) for v in rows[0].split()]
        assert first_row == pytest.approx([1.5, 2.0])

    def test_ci_table_columns(self, estimates):
        text = render_ci_table(estimates)
        lines = text.strip().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 1 + 4
        fields = lines[1].split()
        assert fields[0] == "1" and fields[1] == "1"
        assert float(fields[2]) == pytest.approx(1.5)

    def test_log_contents(self, estimates):
        text = render_log(estimates, seqnum=3, processors=8, sessions=2,
                          elapsed=12.5)
        assert "total_sample_volume: 2" in text
        assert "seqnum: 3" in text
        assert "processors: 8" in text
        assert "sessions: 2" in text
        assert "elapsed_sec" in text
        assert "mean_time_per_realization_sec: 6.0" in text


class TestResultsRoundtrip:
    def test_write_and_read_results(self, tmp_path, estimates):
        data = DataDirectory(tmp_path)
        data.write_results(estimates, seqnum=0, processors=2, sessions=1)
        mean = data.read_mean_matrix()
        assert np.allclose(mean, estimates.mean)
        log = data.read_log()
        assert log["total_sample_volume"] == "2"
        assert log["processors"] == "2"

    def test_read_missing_results(self, tmp_path):
        data = DataDirectory(tmp_path)
        with pytest.raises(ResumeError):
            data.read_mean_matrix()
        with pytest.raises(ResumeError):
            data.read_log()

    def test_directory_layout(self, tmp_path, estimates):
        data = DataDirectory(tmp_path).ensure()
        data.write_results(estimates, seqnum=0, processors=1, sessions=1)
        assert (tmp_path / "parmonc_data" / "results" / "func.dat").exists()
        assert (tmp_path / "parmonc_data" / "results"
                / "func_ci.dat").exists()
        assert (tmp_path / "parmonc_data" / "results"
                / "func_log.dat").exists()


class TestSavepoint:
    def test_roundtrip(self, tmp_path):
        data = DataDirectory(tmp_path)
        accumulator = MomentAccumulator(1, 2)
        accumulator.add(np.array([[1.0, 2.0]]))
        data.save_savepoint(accumulator.snapshot(), used_seqnums=(0, 2),
                            sessions=2)
        snapshot, meta = data.load_savepoint()
        assert snapshot.volume == 1
        assert meta.used_seqnums == (0, 2)
        assert meta.sessions == 2
        assert tuple(meta.shape) == (1, 2)

    def test_missing_savepoint(self, tmp_path):
        with pytest.raises(ResumeError):
            DataDirectory(tmp_path).load_savepoint()

    def test_corrupted_savepoint(self, tmp_path):
        data = DataDirectory(tmp_path).ensure()
        data.savepoint_path.write_text("{not json")
        with pytest.raises(ResumeError):
            data.load_savepoint()

    def test_savepoint_write_is_atomic(self, tmp_path):
        data = DataDirectory(tmp_path)
        data.save_savepoint(MomentSnapshot.zero(1, 1), used_seqnums=(0,),
                            sessions=1)
        # No temp file left behind.
        leftovers = list(data.root.glob("*.tmp"))
        assert leftovers == []

    def test_has_savepoint(self, tmp_path):
        data = DataDirectory(tmp_path)
        assert not data.has_savepoint()
        data.save_savepoint(MomentSnapshot.zero(1, 1), used_seqnums=(0,),
                            sessions=1)
        assert data.has_savepoint()

    def test_seqnums_deduplicated_and_sorted(self, tmp_path):
        data = DataDirectory(tmp_path)
        data.save_savepoint(MomentSnapshot.zero(1, 1),
                            used_seqnums=(3, 1, 3), sessions=1)
        _, meta = data.load_savepoint()
        assert meta.used_seqnums == (1, 3)

    def test_legacy_v1_savepoint_still_loads(self, tmp_path):
        # Pre-envelope save-points (no format/checksum wrapper) must
        # keep resuming: the bare document is treated as the payload.
        data = DataDirectory(tmp_path).ensure()
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(5.0)
        legacy = {"version": 1,
                  "snapshot": accumulator.snapshot().to_dict(),
                  "shape": [1, 1], "used_seqnums": [0, 2], "sessions": 2}
        data.savepoint_path.write_text(json.dumps(legacy))
        snapshot, meta = data.load_savepoint()
        assert snapshot.volume == 1
        assert meta.used_seqnums == (0, 2)
        assert meta.sessions == 2
        assert meta.manifest is None
        assert meta.processors is None


class TestProcessorSnapshots:
    def test_roundtrip(self, tmp_path):
        data = DataDirectory(tmp_path)
        for rank in (0, 3):
            accumulator = MomentAccumulator(1, 1)
            accumulator.add(float(rank + 1))
            data.save_processor_snapshot(rank, accumulator.snapshot())
        snapshots = data.load_processor_snapshots()
        assert set(snapshots) == {0, 3}
        assert snapshots[3].sum1[0, 0] == 4.0

    def test_empty_directory(self, tmp_path):
        assert DataDirectory(tmp_path).load_processor_snapshots() == {}

    def test_clear(self, tmp_path):
        data = DataDirectory(tmp_path)
        data.save_processor_snapshot(0, MomentSnapshot.zero(1, 1))
        data.clear_processor_snapshots()
        assert data.load_processor_snapshots() == {}

    def test_corrupted_processor_file_quarantined(self, tmp_path):
        # A torn subtotal is set aside and skipped; the healthy ones
        # still load (manaver must not lose them over one bad file).
        data = DataDirectory(tmp_path).ensure()
        good = MomentAccumulator(1, 1)
        good.add(2.0)
        data.save_processor_snapshot(1, good.snapshot())
        data.processor_savepoint_path(0).write_text("garbage")
        snapshots = data.load_processor_snapshots()
        assert set(snapshots) == {1}
        assert not data.processor_savepoint_path(0).exists()
        quarantined = data.quarantined_files()
        assert len(quarantined) == 1
        assert quarantined[0].name == "processor_00000.json.corrupt"

    def test_overwrite_keeps_latest(self, tmp_path):
        data = DataDirectory(tmp_path)
        first = MomentAccumulator(1, 1)
        first.add(1.0)
        data.save_processor_snapshot(0, first.snapshot())
        first.add(2.0)
        data.save_processor_snapshot(0, first.snapshot())
        snapshots = data.load_processor_snapshots()
        assert snapshots[0].volume == 2


class TestRegistry:
    def test_register_and_read(self, tmp_path):
        data = DataDirectory(tmp_path)
        data.register_experiment(seqnum=0, processors=4, maxsv=100, res=0)
        data.register_experiment(seqnum=1, processors=4, maxsv=100, res=1)
        lines = data.read_registry()
        assert len(lines) == 2
        assert "seqnum=0" in lines[0]
        assert "res=1" in lines[1]

    def test_empty_registry(self, tmp_path):
        assert DataDirectory(tmp_path).read_registry() == []


class TestGenparamFile:
    def test_roundtrip(self, tmp_path):
        multipliers = DEFAULT_LEAPS.multipliers()
        path = write_genparam_file(tmp_path, 115, 98, 43, multipliers)
        assert path.name == "parmonc_genparam.dat"
        values = read_genparam_file(tmp_path)
        assert values["ne_exponent"] == 115
        assert values["A_nr"] == multipliers[2]

    def test_missing_file_returns_none(self, tmp_path):
        assert read_genparam_file(tmp_path) is None

    def test_malformed_value(self, tmp_path):
        (tmp_path / "parmonc_genparam.dat").write_text("ne_exponent: abc\n")
        with pytest.raises(ConfigurationError):
            read_genparam_file(tmp_path)

    def test_missing_keys(self, tmp_path):
        (tmp_path / "parmonc_genparam.dat").write_text("ne_exponent: 20\n")
        with pytest.raises(ConfigurationError):
            read_genparam_file(tmp_path)


class TestMessages:
    def test_message_validation(self):
        snapshot = MomentSnapshot.zero(1, 1)
        with pytest.raises(ConfigurationError):
            MomentMessage(rank=-1, snapshot=snapshot, sent_at=0.0)
        with pytest.raises(ConfigurationError):
            MomentMessage(rank=0, snapshot=snapshot, sent_at=-1.0)

    def test_paper_message_size(self):
        # §4: "the bulk of data which is periodically sent by every
        # processor ... is approximately 120 Kbytes" for the 1000x2
        # problem.
        size = message_bytes(1000, 2)
        assert 110_000 <= size <= 135_000

    def test_message_nbytes_property(self):
        message = MomentMessage(rank=0, snapshot=MomentSnapshot.zero(10, 2),
                                sent_at=1.0)
        assert message.nbytes == message_bytes(10, 2)

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            message_bytes(0, 1)
