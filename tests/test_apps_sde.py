"""Tests for repro.apps.sde: the §4 performance-test workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.apps.sde import (
    AdditiveSDE,
    EulerSpec,
    GeneralSDE,
    make_paper_realization,
    ornstein_uhlenbeck,
    paper_system,
    simulate_additive_trajectory,
    simulate_general_trajectory,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def small_spec():
    return EulerSpec(mesh=0.01, t_max=2.0, n_output=20)


class TestAdditiveSDE:
    def test_paper_system_shape(self):
        system = paper_system()
        assert system.dimension == 2
        assert np.array_equal(system.initial, np.zeros(2))

    def test_exact_mean_is_linear(self):
        system = paper_system()
        times = np.array([0.0, 1.0, 2.0])
        exact = system.exact_mean(times)
        assert np.allclose(exact[:, 0], [0.0, 1.5, 3.0])
        assert np.allclose(exact[:, 1], [0.0, 0.25, 0.5])

    def test_exact_variance_grows_linearly(self):
        system = paper_system()
        variance = system.exact_variance(np.array([1.0, 2.0]))
        assert variance[1, 0] == pytest.approx(2 * variance[0, 0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdditiveSDE(initial=np.zeros(2), drift=np.zeros(3),
                        diffusion=np.eye(2))
        with pytest.raises(ConfigurationError):
            AdditiveSDE(initial=np.zeros(2), drift=np.zeros(2),
                        diffusion=np.eye(3))


class TestEulerSpec:
    def test_paper_defaults(self):
        spec = EulerSpec()
        assert spec.t_max == 100.0
        assert spec.n_output == 1000
        assert spec.output_times[0] == pytest.approx(0.1)
        assert spec.output_times[-1] == pytest.approx(100.0)

    def test_step_bookkeeping(self, small_spec):
        assert small_spec.output_spacing == pytest.approx(0.1)
        assert small_spec.steps_per_output == 10
        assert small_spec.total_steps == 200

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EulerSpec(mesh=0.0)
        with pytest.raises(ConfigurationError):
            EulerSpec(n_output=0)
        with pytest.raises(ConfigurationError):
            EulerSpec(mesh=1.0, t_max=1.0, n_output=10)  # mesh too coarse


class TestAdditiveTrajectory:
    def test_output_shape(self, small_spec, tree):
        trajectory = simulate_additive_trajectory(
            paper_system(), small_spec, tree.rng(0, 0, 0))
        assert trajectory.shape == (20, 2)

    def test_deterministic_per_stream(self, small_spec, tree):
        a = simulate_additive_trajectory(paper_system(), small_spec,
                                         tree.rng(0, 0, 3))
        b = simulate_additive_trajectory(paper_system(), small_spec,
                                         tree.rng(0, 0, 3))
        assert np.array_equal(a, b)

    def test_different_streams_differ(self, small_spec, tree):
        a = simulate_additive_trajectory(paper_system(), small_spec,
                                         tree.rng(0, 0, 0))
        b = simulate_additive_trajectory(paper_system(), small_spec,
                                         tree.rng(0, 0, 1))
        assert not np.array_equal(a, b)

    def test_matches_manual_reference_implementation(self, tree):
        # Recompute the trajectory with a plain, obviously-correct
        # numpy implementation consuming the same uniforms in the same
        # order, and require bit-identity.
        from repro.rng.distributions import normals_from_uniforms
        from repro.rng.vectorized import VectorLcg128
        spec = EulerSpec(mesh=0.01, t_max=1.0, n_output=10)
        system = paper_system()
        fast = simulate_additive_trajectory(system, spec,
                                            tree.rng(0, 0, 0))
        source = VectorLcg128(tree.rng(0, 0, 0))
        h = spec.output_spacing / spec.steps_per_output
        state = system.initial.copy()
        reference = np.empty((10, 2))
        for i in range(10):
            u = source.uniforms(2 * spec.steps_per_output * 2)
            normals = normals_from_uniforms(u[0::2], u[1::2]).reshape(
                spec.steps_per_output, 2)
            increments = (h * system.drift
                          + np.sqrt(h) * normals @ system.diffusion.T)
            state = state + increments.sum(axis=0)
            reference[i] = state
        assert np.array_equal(fast, reference)

    def test_guard_against_memory_blowup(self, tree):
        spec = EulerSpec(mesh=1e-9, t_max=1.0, n_output=10)
        with pytest.raises(ConfigurationError):
            simulate_additive_trajectory(paper_system(), spec,
                                         tree.rng(0, 0, 0))

    def test_mean_converges_to_exact_line(self, small_spec, tree):
        system = paper_system()
        total = np.zeros((20, 2))
        n = 300
        for index in range(n):
            total += simulate_additive_trajectory(system, small_spec,
                                                  tree.rng(0, 0, index))
        mean = total / n
        exact = system.exact_mean(small_spec.output_times)
        sigma = np.sqrt(system.exact_variance(small_spec.output_times))
        # 4-sigma tolerance entrywise (3-sigma would flake ~2% of runs).
        assert np.all(np.abs(mean - exact) <= 4 * sigma / np.sqrt(n) + 1e-9)

    def test_trajectory_variance_scale(self, small_spec, tree):
        # The noisy component's empirical variance at t=2 must be near
        # D_11**2 * t = 2.0.
        system = paper_system()
        finals = [simulate_additive_trajectory(system, small_spec,
                                               tree.rng(0, 1, i))[-1, 0]
                  for i in range(400)]
        assert np.var(finals) == pytest.approx(2.0, rel=0.25)


class TestPaperRealizationEndToEnd:
    def test_parmonc_reproduces_exact_mean(self, tmp_path):
        spec = EulerSpec(mesh=0.02, t_max=2.0, n_output=10)
        system = paper_system()
        result = parmonc(make_paper_realization(spec, system),
                         nrow=10, ncol=2, maxsv=200, processors=2,
                         workdir=tmp_path)
        exact = system.exact_mean(spec.output_times)
        inside = np.abs(result.estimates.mean - exact) \
            <= result.estimates.abs_error * 1.5 + 1e-9
        assert inside.mean() > 0.9

    def test_default_factory_uses_paper_geometry(self):
        routine = make_paper_realization()
        # Don't run it (10**4 steps x 1000 outputs); check the captured
        # spec via a cheap probe instead.
        assert callable(routine)


class TestGeneralSDE:
    def test_ou_mean_decay(self, tree):
        process = ornstein_uhlenbeck(theta=2.0, mu=0.5, sigma=0.3,
                                     initial=2.0)
        spec = EulerSpec(mesh=0.01, t_max=1.0, n_output=5)
        total = np.zeros((5, 1))
        n = 200
        for index in range(n):
            total += simulate_general_trajectory(process, spec,
                                                 tree.rng(0, 0, index))
        mean = total[:, 0] / n
        exact = 0.5 + (2.0 - 0.5) * np.exp(-2.0 * spec.output_times)
        assert np.allclose(mean, exact, atol=0.1)

    def test_zero_noise_is_deterministic_ode(self, tree):
        process = GeneralSDE(
            initial=np.array([1.0]),
            drift=lambda t, y: -y,
            diffusion=lambda t, y: np.zeros((1, 1)))
        spec = EulerSpec(mesh=0.001, t_max=1.0, n_output=4)
        trajectory = simulate_general_trajectory(process, spec,
                                                 tree.rng(0, 0, 0))
        exact = np.exp(-spec.output_times)
        assert np.allclose(trajectory[:, 0], exact, rtol=1e-2)

    def test_ou_validation(self):
        with pytest.raises(ConfigurationError):
            ornstein_uhlenbeck(theta=0.0)
        with pytest.raises(ConfigurationError):
            ornstein_uhlenbeck(sigma=-1.0)
