"""Tests for repro.apps.kinetics: Gillespie SSA."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.apps.kinetics import (
    Reaction,
    ReactionNetwork,
    dimerization,
    isomerization,
    make_realization,
    predator_prey,
    simulate_ssa,
)
from repro.exceptions import ConfigurationError


class TestReaction:
    def test_first_order_propensity(self):
        reaction = Reaction({0: 1}, {1: 1}, rate=2.0)
        assert reaction.propensity(np.array([5, 0])) == 10.0

    def test_second_order_same_species(self):
        # A + A: c * x (x-1) / 2 combinatorial pairs.
        reaction = Reaction({0: 2}, {1: 1}, rate=1.0)
        assert reaction.propensity(np.array([4, 0])) == 6.0

    def test_bimolecular_distinct_species(self):
        reaction = Reaction({0: 1, 1: 1}, {1: 2}, rate=0.5)
        assert reaction.propensity(np.array([4, 3])) == 6.0

    def test_zero_copies_zero_propensity(self):
        reaction = Reaction({0: 1}, {1: 1}, rate=2.0)
        assert reaction.propensity(np.array([0, 9])) == 0.0

    def test_apply_updates_state(self):
        reaction = Reaction({0: 2}, {1: 1}, rate=1.0)
        state = np.array([5, 1])
        reaction.apply(state)
        assert state.tolist() == [3, 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Reaction({0: 1}, {}, rate=0.0)
        with pytest.raises(ConfigurationError):
            Reaction({0: 3}, {}, rate=1.0)  # third order unsupported
        with pytest.raises(ConfigurationError):
            Reaction({-1: 1}, {}, rate=1.0)


class TestNetworkValidation:
    def test_species_initial_mismatch(self):
        with pytest.raises(ConfigurationError):
            ReactionNetwork(("A",), (1, 2),
                            (Reaction({0: 1}, {}, 1.0),), (1.0,))

    def test_reaction_referencing_unknown_species(self):
        with pytest.raises(ConfigurationError):
            ReactionNetwork(("A",), (1,),
                            (Reaction({3: 1}, {}, 1.0),), (1.0,))

    def test_output_times_must_increase(self):
        with pytest.raises(ConfigurationError):
            isomerization(output_times=(2.0, 1.0))

    def test_empty_reactions(self):
        with pytest.raises(ConfigurationError):
            ReactionNetwork(("A",), (1,), (), (1.0,))


class TestTrajectories:
    def test_deterministic_per_stream(self, tree):
        network = isomerization()
        a = simulate_ssa(network, tree.rng(0, 0, 2))
        b = simulate_ssa(network, tree.rng(0, 0, 2))
        assert np.array_equal(a, b)

    def test_isomerization_monotone(self, tree):
        trajectory = simulate_ssa(isomerization(), tree.rng(0, 0, 0))
        assert np.all(np.diff(trajectory[:, 0]) <= 0)  # A decays
        assert np.all(np.diff(trajectory[:, 1]) >= 0)  # B grows

    def test_isomerization_conservation(self, tree):
        trajectory = simulate_ssa(isomerization(a0=150),
                                  tree.rng(0, 0, 1))
        assert np.all(trajectory.sum(axis=1) == 150)

    def test_dimerization_mass_conservation(self, tree):
        trajectory = simulate_ssa(dimerization(a0=100),
                                  tree.rng(0, 0, 0))
        assert np.all(trajectory[:, 0] + 2 * trajectory[:, 1] == 100)

    def test_exhausted_system_freezes(self, tree):
        # With a huge rate everything converts before the first output.
        network = isomerization(a0=10, rate=1e6,
                                output_times=(1.0, 2.0))
        trajectory = simulate_ssa(network, tree.rng(0, 0, 0))
        assert trajectory[0].tolist() == [0, 10]
        assert np.array_equal(trajectory[0], trajectory[1])

    def test_event_cap_freezes_gracefully(self, tree):
        network = predator_prey(output_times=(1000.0,))
        trajectory = simulate_ssa(network, tree.rng(0, 0, 0),
                                  max_events=50)
        assert trajectory.shape == (1, 2)
        assert np.all(trajectory >= 0)


class TestAgainstMasterEquation:
    def test_isomerization_mean_decay(self):
        network = isomerization(a0=100, rate=1.0,
                                output_times=(0.25, 0.75, 1.5))
        result = parmonc(make_realization(network), nrow=3, ncol=2,
                         maxsv=600, processors=2, use_files=False)
        exact = 100.0 * np.exp(-np.array([0.25, 0.75, 1.5]))
        deviation = np.abs(result.estimates.mean[:, 0] - exact)
        assert np.all(deviation <= 3 * result.estimates.abs_error[:, 0]
                      + 1e-9)

    def test_isomerization_variance_is_binomial(self):
        # A(t) ~ Binomial(a0, exp(-kt)): Var = a0 p (1-p).
        t = 0.7
        probability = np.exp(-t)
        network = isomerization(a0=100, rate=1.0, output_times=(t,))
        result = parmonc(make_realization(network), nrow=1, ncol=2,
                         maxsv=2_000, processors=2, use_files=False)
        expected_variance = 100 * probability * (1 - probability)
        assert result.estimates.variance[0, 0] == pytest.approx(
            expected_variance, rel=0.2)

    def test_dimerization_mean_monotone_and_conserved(self):
        network = dimerization(a0=100)
        result = parmonc(make_realization(network), nrow=3, ncol=2,
                         maxsv=300, processors=2, use_files=False)
        means = result.estimates.mean
        assert np.all(np.diff(means[:, 0]) <= 0)
        conserved = means[:, 0] + 2 * means[:, 1]
        assert np.allclose(conserved, 100.0)
