"""Golden regression tests: pinned values of the public contracts.

These values were computed from the formulas of the paper (formula (6)
with A = 5^101 mod 2^128, u_0 = 1; leap algebra of formula (8)) and are
frozen here so that any future change to the generator arithmetic, the
float conversion, the stream placement or the file formats is caught as
an explicit diff rather than a silent statistical drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import BASE_MULTIPLIER
from repro.rng.streams import StreamTree
from repro.runtime.files import DataDirectory

#: The exact multiplier 5**101 mod 2**128.
GOLDEN_MULTIPLIER = 250037011538279330113129619742442556597

#: First six outputs of the general sequence (u_0 = 1).
GOLDEN_FIRST_OUTPUTS = [
    0.7347927363993362,
    0.7322174134961129,
    0.8444657343613531,
    0.6842864013325684,
    0.21467347941241133,
    0.86588481650548,
]

#: State after jumping the general sequence by 10**6 draws.
GOLDEN_STATE_1E6 = 0x419d56c72922e1daa14e082d1eed1301

#: Head state of hierarchy stream (experiment=1, processor=2,
#: realization=3) under default leaps.
GOLDEN_STREAM_1_2_3 = 0x7ba5296259ffa038dc66200000000001


class TestGeneratorGolden:
    def test_multiplier_value(self):
        assert BASE_MULTIPLIER == GOLDEN_MULTIPLIER

    def test_first_outputs(self):
        generator = Lcg128()
        for expected in GOLDEN_FIRST_OUTPUTS:
            assert generator.random() == expected

    def test_jump_state(self):
        assert Lcg128().jumped(10 ** 6).state == GOLDEN_STATE_1E6

    def test_stream_head(self):
        assert StreamTree().rng(1, 2, 3).state == GOLDEN_STREAM_1_2_3

    def test_vectorized_agrees_with_golden(self):
        from repro.rng.vectorized import generate_block
        values, _ = generate_block(1, len(GOLDEN_FIRST_OUTPUTS))
        assert values.tolist() == GOLDEN_FIRST_OUTPUTS


class TestEstimatorGolden:
    def test_known_run_is_frozen(self, tmp_path):
        # A fully pinned end-to-end run: 1 processor, 4 realizations of
        # the identity on the general-sequence substream of stream
        # (0, 0, r).
        result = parmonc(lambda rng: rng.random(), maxsv=4,
                         workdir=tmp_path)
        tree = StreamTree()
        values = [tree.rng(0, 0, r).random() for r in range(4)]
        assert result.estimates.mean[0, 0] == np.mean(values)
        assert result.estimates.variance[0, 0] == pytest.approx(
            np.var(values))

    def test_error_formula_constants(self):
        # eps = 3 sigma / sqrt(L) with gamma fixed at exactly 3.0.
        from repro.stats.estimators import CONFIDENCE_FACTOR
        assert CONFIDENCE_FACTOR == 3.0


class TestFileFormatGolden:
    def test_func_dat_layout(self, tmp_path):
        parmonc(lambda rng: np.array([[1.0, 2.0], [3.0, 4.0]]),
                nrow=2, ncol=2, maxsv=3, workdir=tmp_path)
        content = (DataDirectory(tmp_path).results_dir
                   / "func.dat").read_text()
        lines = content.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].split() == ["1.000000000000000e+00",
                                    "2.000000000000000e+00"]

    def test_func_ci_dat_header(self, tmp_path):
        parmonc(lambda rng: 1.0, maxsv=2, workdir=tmp_path)
        content = (DataDirectory(tmp_path).results_dir
                   / "func_ci.dat").read_text()
        assert content.splitlines()[0] \
            == "# i j mean abs_error rel_error_percent variance"

    def test_func_log_keys(self, tmp_path):
        parmonc(lambda rng: 1.0, maxsv=2, workdir=tmp_path)
        log = DataDirectory(tmp_path).read_log()
        assert set(log) >= {
            "total_sample_volume", "mean_time_per_realization_sec",
            "abs_error_upper_bound", "rel_error_upper_bound_percent",
            "variance_upper_bound", "matrix_shape", "seqnum",
            "processors", "sessions", "written_at"}

    def test_genparam_file_format(self, tmp_path):
        from repro.cli.genparam import main as genparam_main
        genparam_main(["30", "20", "10", "--workdir", str(tmp_path)])
        content = (tmp_path / "parmonc_genparam.dat").read_text()
        keys = [line.split(":")[0] for line in
                content.strip().splitlines()]
        assert keys == ["ne_exponent", "np_exponent", "nr_exponent",
                        "A_ne", "A_np", "A_nr"]
