"""Tests for repro.stats.estimators: the §2.1 formulas."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.stats.estimators import (
    CONFIDENCE_FACTOR,
    CONFIDENCE_LEVEL,
    computational_cost,
    confidence_factor,
    estimates_from_moments,
    required_sample_volume,
)


def make_estimates(values):
    """Estimates for a 1x1 problem from a list of realizations."""
    values = np.asarray(values, dtype=np.float64)
    return estimates_from_moments(
        np.array([[values.sum()]]), np.array([[np.sum(values ** 2)]]),
        values.size)


class TestFormulas:
    def test_sample_mean_formula_1(self):
        estimates = make_estimates([1.0, 2.0, 3.0, 4.0])
        assert estimates.mean[0, 0] == pytest.approx(2.5)

    def test_sample_variance(self):
        # sigma**2 = xi - mean**2 with xi the second-moment mean.
        values = [1.0, 2.0, 3.0, 4.0]
        estimates = make_estimates(values)
        expected = np.mean(np.square(values)) - 2.5 ** 2
        assert estimates.variance[0, 0] == pytest.approx(expected)

    def test_absolute_error_three_sigma(self):
        values = [0.0, 1.0] * 50
        estimates = make_estimates(values)
        sigma = math.sqrt(0.25)
        assert estimates.abs_error[0, 0] == pytest.approx(
            3.0 * sigma / math.sqrt(100))

    def test_relative_error_percent(self):
        values = [0.0, 1.0] * 50
        estimates = make_estimates(values)
        assert estimates.rel_error[0, 0] == pytest.approx(
            estimates.abs_error[0, 0] / 0.5 * 100.0)

    def test_zero_mean_relative_error_is_inf(self):
        estimates = make_estimates([-1.0, 1.0])
        assert np.isinf(estimates.rel_error[0, 0])

    def test_constant_zero_sample_relative_error_is_zero(self):
        estimates = make_estimates([0.0, 0.0, 0.0])
        assert estimates.rel_error[0, 0] == 0.0
        assert estimates.variance[0, 0] == 0.0

    def test_variance_clipped_at_zero(self):
        # A constant sample can produce a tiny negative difference in
        # floating point; the variance must never be negative.
        value = 0.1234567890123456
        estimates = make_estimates([value] * 1000)
        assert estimates.variance[0, 0] >= 0.0

    def test_mean_time(self):
        estimates = estimates_from_moments(
            np.array([[10.0]]), np.array([[60.0]]), 5, total_time=2.5)
        assert estimates.mean_time == pytest.approx(0.5)


class TestEstimatesContainer:
    def test_matrix_shape_and_bounds(self):
        sum1 = np.array([[2.0, 4.0], [6.0, 0.0]])
        sum2 = np.array([[4.0, 16.0], [36.0, 2.0]])
        estimates = estimates_from_moments(sum1, sum2, 2)
        assert estimates.shape == (2, 2)
        assert estimates.abs_error_max == estimates.abs_error.max()
        assert estimates.variance_max == estimates.variance.max()
        assert np.isinf(estimates.rel_error_max)

    def test_confidence_interval_formula_3(self):
        values = [0.0, 1.0] * 200
        estimates = make_estimates(values)
        lower, upper = estimates.confidence_interval()
        half = CONFIDENCE_FACTOR * math.sqrt(
            estimates.variance[0, 0] / estimates.volume)
        # gamma(0.997) is 2.9677; the paper rounds it to 3.
        assert (upper - lower)[0, 0] == pytest.approx(
            2 * confidence_factor(CONFIDENCE_LEVEL)
            * math.sqrt(estimates.variance[0, 0] / estimates.volume))
        assert (upper - lower)[0, 0] == pytest.approx(2 * half, rel=0.02)

    def test_str(self):
        estimates = make_estimates([1.0, 2.0])
        text = str(estimates)
        assert "L=2" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            estimates_from_moments(np.zeros((2, 2)), np.zeros((2, 3)), 5)

    def test_zero_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            estimates_from_moments(np.zeros((1, 1)), np.zeros((1, 1)), 0)


class TestConfidenceFactor:
    def test_paper_value_0997_is_about_3(self):
        # "According to Tables of a standard normal distribution,
        # gamma(lambda) = 3 for lambda = 0.997".
        assert confidence_factor(0.997) == pytest.approx(3.0, abs=0.04)

    def test_095_is_about_196(self):
        assert confidence_factor(0.95) == pytest.approx(1.96, abs=0.01)

    def test_monotone_in_level(self):
        assert confidence_factor(0.99) > confidence_factor(0.9)

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            confidence_factor(1.0)
        with pytest.raises(ConfigurationError):
            confidence_factor(0.0)


class TestCostAndVolume:
    def test_cost_definition(self):
        # C(zeta) = tau * Var(zeta), §2.2.
        assert computational_cost(7.7, 2.0) == pytest.approx(15.4)

    def test_cost_validation(self):
        with pytest.raises(ConfigurationError):
            computational_cost(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            computational_cost(1.0, -1.0)

    def test_required_volume_inverts_error_formula(self):
        variance = 4.0
        target = 0.01
        volume = required_sample_volume(variance, target)
        achieved = CONFIDENCE_FACTOR * math.sqrt(variance / volume)
        assert achieved <= target
        # And one fewer realization would miss the target.
        almost = CONFIDENCE_FACTOR * math.sqrt(variance / (volume - 1))
        assert almost > target

    def test_required_volume_proportional_to_variance(self):
        # §2.2: "the sample volume L needed ... is proportional to the
        # variance Var zeta".
        v1 = required_sample_volume(1.0, 0.01)
        v4 = required_sample_volume(4.0, 0.01)
        assert v4 == pytest.approx(4 * v1, rel=0.001)

    def test_required_volume_zero_variance(self):
        assert required_sample_volume(0.0, 0.01) == 1

    def test_required_volume_validation(self):
        with pytest.raises(ConfigurationError):
            required_sample_volume(-1.0, 0.1)
        with pytest.raises(ConfigurationError):
            required_sample_volume(1.0, 0.0)


class TestStatisticalSoundness:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_mean_variance_match_numpy(self, seed):
        generator = np.random.default_rng(seed)
        values = generator.normal(size=200)
        estimates = make_estimates(values)
        assert estimates.mean[0, 0] == pytest.approx(values.mean())
        assert estimates.variance[0, 0] == pytest.approx(
            values.var(), rel=1e-9, abs=1e-12)
