"""Analytic cross-validation of the discrete-event engine.

For fixed-duration workloads with static even quotas the PARMONC
simulation has a closed form; these tests derive it and require the
engine to match *exactly* (up to float round-off), which validates the
event mechanics independently of the Fig. 2 shape claims.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DurationModel, NetworkModel
from repro.cluster.simulation import ClusterSimulation
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.stats.accumulator import MomentSnapshot


def run(maxsv, processors, *, tau, latency, bandwidth, service,
        nbytes, perpass=0.0):
    config = RunConfig(maxsv=maxsv, processors=processors,
                       perpass=perpass, peraver=1e9)
    spec = ClusterSpec(
        duration_model=DurationModel(mean=tau, distribution="fixed"),
        network=NetworkModel(latency=latency, bandwidth=bandwidth),
        collector_service_time=service,
        message_bytes=nbytes)
    collector = Collector(config, MomentSnapshot.zero(1, 1), None)
    return ClusterSimulation(config, spec, collector).run()


class TestClosedForms:
    def test_single_processor_exact(self):
        # M=1: rank 0's messages are local (zero transfer).  The last
        # (final) message arrives at L*tau and queues behind the
        # per-realization message sent at the same instant:
        # T = L*tau + 2*service.
        tau, service = 2.0, 0.25
        result = run(7, 1, tau=tau, latency=0.0, bandwidth=1e9,
                     service=service, nbytes=1000)
        assert result.t_comp == pytest.approx(7 * tau + 2 * service,
                                              abs=1e-9)

    def test_multi_processor_exact(self):
        # M processors, L = q*M, fixed tau: every worker finishes its
        # final realization at q*tau and sends both a per-realization
        # and a final message.  Rank 0's two messages are local and
        # start service immediately at q*tau; the remote messages
        # arrive one transfer later, by which time the server is still
        # busy (transfer < 2*service), so the 2*M services run
        # back-to-back: T = q*tau + 2*M*service.
        tau, service, latency = 3.0, 0.01, 0.001
        quota, processors = 5, 4
        result = run(quota * processors, processors, tau=tau,
                     latency=latency, bandwidth=1e12,
                     service=service, nbytes=1000)
        assert latency < 2 * service  # the regime this form assumes
        expected = quota * tau + 2 * processors * service
        assert result.t_comp == pytest.approx(expected, abs=1e-9)

    def test_transfer_delay_enters_linearly(self):
        # Doubling latency moves T_comp by exactly the latency delta
        # (the final wave's transfer is on the critical path once).
        base = run(8, 2, tau=1.0, latency=0.010, bandwidth=1e12,
                   service=1e-4, nbytes=100)
        slow = run(8, 2, tau=1.0, latency=0.020, bandwidth=1e12,
                   service=1e-4, nbytes=100)
        assert slow.t_comp - base.t_comp == pytest.approx(0.010,
                                                          abs=1e-9)

    def test_bandwidth_term_enters_linearly(self):
        nbytes = 10 ** 6
        fast = run(4, 2, tau=1.0, latency=0.0, bandwidth=1e9,
                   service=1e-4, nbytes=nbytes)
        slow = run(4, 2, tau=1.0, latency=0.0, bandwidth=1e8,
                   service=1e-4, nbytes=nbytes)
        delta = nbytes / 1e8 - nbytes / 1e9
        assert slow.t_comp - fast.t_comp == pytest.approx(delta,
                                                          abs=1e-9)

    def test_rare_passing_closed_form(self):
        # perpass large: each worker sends ONLY its final message.
        tau, service = 2.0, 0.5
        quota, processors = 3, 3
        result = run(quota * processors, processors, tau=tau,
                     latency=0.0, bandwidth=1e12, service=service,
                     nbytes=100, perpass=1e6)
        # M finals arrive together at quota*tau and serialize.
        expected = quota * tau + processors * service
        assert result.t_comp == pytest.approx(expected, abs=1e-6)
        assert result.messages_sent == processors

    def test_message_count_closed_form(self):
        # perpass=0 and L = q*M: q messages per worker + 1 final each.
        result = run(20, 4, tau=1.0, latency=0.0, bandwidth=1e12,
                     service=1e-4, nbytes=100)
        assert result.messages_sent == 20 + 4

    def test_collector_busy_time_exact(self):
        service = 0.125
        result = run(10, 2, tau=1.0, latency=0.0, bandwidth=1e12,
                     service=service, nbytes=100)
        expected_busy = (10 + 2) * service
        assert result.collector_utilization * result.t_comp \
            == pytest.approx(expected_busy, rel=1e-9)
