"""Documentation-integrity tests: the docs must track the code.

Stale documentation is a bug class like any other; these tests pin the
load-bearing claims of README, docs/ and pyproject to the actual code.
"""

from __future__ import annotations

import importlib
import re
import tomllib
from pathlib import Path


ROOT = Path(__file__).parent.parent


def read(relative: str) -> str:
    return (ROOT / relative).read_text()


class TestConsoleScripts:
    def test_every_declared_script_resolves(self):
        pyproject = tomllib.loads(read("pyproject.toml"))
        scripts = pyproject["project"]["scripts"]
        assert len(scripts) >= 5
        for name, target in scripts.items():
            module_name, _, attribute = target.partition(":")
            module = importlib.import_module(module_name)
            entry = getattr(module, attribute)
            assert callable(entry), name

    def test_readme_mentions_every_script(self):
        pyproject = tomllib.loads(read("pyproject.toml"))
        readme = read("README.md")
        for name in pyproject["project"]["scripts"]:
            assert name in readme, f"README does not mention {name}"

    def test_cli_doc_covers_every_script(self):
        pyproject = tomllib.loads(read("pyproject.toml"))
        cli_doc = read("docs/cli.md")
        for name in pyproject["project"]["scripts"]:
            assert name in cli_doc, f"docs/cli.md misses {name}"


class TestReadmeClaims:
    def test_quickstart_snippet_runs(self, tmp_path, monkeypatch):
        readme = read("README.md")
        match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
        assert match, "README lost its quickstart snippet"
        snippet = match.group(1)
        monkeypatch.chdir(tmp_path)
        # Shrink the sample volume so the doc snippet stays fast.
        snippet = snippet.replace("200_000", "2_000")
        namespace: dict = {}
        exec(compile(snippet, "README-quickstart", "exec"), namespace)

    def test_architecture_section_names_real_packages(self):
        readme = read("README.md")
        for package in ("repro.rng", "repro.stats", "repro.runtime",
                        "repro.cluster", "repro.core", "repro.cli",
                        "repro.vr", "repro.qmc", "repro.apps"):
            assert package in readme
            importlib.import_module(package)

    def test_listed_examples_exist(self):
        readme = read("README.md")
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), \
                match.group(0)

    def test_docs_files_exist(self):
        for name in ("rng.md", "protocol.md", "simulator.md",
                     "user-guide.md", "api.md", "cli.md",
                     "performance.md"):
            assert (ROOT / "docs" / name).exists(), name


class TestDesignInventory:
    def test_every_bench_in_design_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(test_bench_\w+\.py)",
                                 design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), \
                match.group(0)

    def test_experiments_references_real_benches(self):
        experiments = read("EXPERIMENTS.md")
        for match in re.finditer(r"`(test_bench_\w+\.py)", experiments):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), \
                match.group(0)

    def test_design_names_every_subpackage(self):
        design = read("DESIGN.md")
        src = ROOT / "src" / "repro"
        subpackages = [p.name for p in src.iterdir()
                       if p.is_dir() and (p / "__init__.py").exists()]
        for name in subpackages:
            assert f"repro.{name}" in design or f"`{name}" in design, \
                f"DESIGN.md does not mention subpackage {name}"


class TestApiDocIntegrity:
    def test_top_level_items_in_api_doc_exist(self):
        import repro
        api = read("docs/api.md")
        # Every backtick-quoted bare identifier in the top-level table
        # that looks like an exported name must actually be exported.
        for name in ("parmonc", "MonteCarloRun", "batched_realization",
                     "rnd128", "Lcg128", "VectorLcg128", "StreamTree",
                     "RunConfig", "RunResult", "Estimates"):
            assert name in api
            assert hasattr(repro, name), name

    def test_apps_table_matches_modules(self):
        api = read("docs/api.md")
        apps_dir = ROOT / "src" / "repro" / "apps"
        modules = {p.stem for p in apps_dir.glob("*.py")
                   if p.stem != "__init__"}
        for module in modules:
            assert f"`{module}`" in api, \
                f"docs/api.md apps table misses {module}"
