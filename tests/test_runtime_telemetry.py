"""End-to-end telemetry: every backend leaves a coherent run record."""

from __future__ import annotations

import json
import os

import pytest

from repro import parmonc
from repro.exceptions import BackendError
from repro.obs.events import read_events
from repro.obs.render import load_metrics
from repro.runtime.config import RunConfig
from repro.runtime.multiprocess import run_multiprocess
from repro.runtime.simcluster import run_simcluster


def tiny(rng):
    return rng.random()


def exits_cleanly_midway(rng):
    """A worker bug: the process vanishes without a final message."""
    os._exit(0)


def crashes_hard(rng):
    os._exit(3)


def artifacts(workdir):
    directory = workdir / "parmonc_data" / "telemetry"
    return directory / "events.jsonl", directory


class TestSequentialTelemetry:
    def test_disabled_by_default(self, tmp_path):
        result = parmonc(tiny, maxsv=20, processors=2, workdir=tmp_path)
        assert result.telemetry is None
        assert not (tmp_path / "parmonc_data" / "telemetry").exists()

    def test_record_and_summary(self, tmp_path):
        result = parmonc(tiny, maxsv=30, processors=3, workdir=tmp_path,
                         telemetry=True)
        summary = result.telemetry
        assert summary["workers"] == 3
        assert summary["realizations"] == 30
        events_path, directory = artifacts(tmp_path)
        payload = load_metrics(directory)
        assert payload["metrics"]["gauges"]["run.volume"] == 30
        workers = payload["workers"]
        assert sum(w["realizations"] for w in workers.values()) == 30
        kinds = {e.kind for e in read_events(events_path)}
        assert {"session_start", "worker_start", "message", "save",
                "worker_final", "span", "session_end"} <= kinds

    def test_telemetry_does_not_change_estimates(self, tmp_path):
        plain = parmonc(tiny, maxsv=50, processors=2,
                        workdir=tmp_path / "plain")
        traced = parmonc(tiny, maxsv=50, processors=2,
                         workdir=tmp_path / "traced", telemetry=True)
        assert plain.estimates.mean[0, 0] == traced.estimates.mean[0, 0]

    def test_fresh_session_clears_previous_artifacts(self, tmp_path):
        parmonc(tiny, maxsv=10, processors=1, workdir=tmp_path,
                telemetry=True)
        events_path, _ = artifacts(tmp_path)
        first = len(list(read_events(events_path)))
        parmonc(tiny, maxsv=10, processors=1, workdir=tmp_path,
                telemetry=True)  # res=0 again: a new simulation
        assert len(list(read_events(events_path))) == first

    def test_resumed_session_appends(self, tmp_path):
        parmonc(tiny, maxsv=10, processors=1, workdir=tmp_path,
                telemetry=True)
        events_path, _ = artifacts(tmp_path)
        first = len(list(read_events(events_path)))
        parmonc(tiny, maxsv=5, processors=1, res=1, seqnum=1,
                workdir=tmp_path, telemetry=True)
        events = list(read_events(events_path))
        assert len(events) > first
        assert len([e for e in events if e.kind == "session_start"]) == 2


class TestMultiprocessTelemetry:
    def test_full_record(self, tmp_path):
        config = RunConfig(maxsv=60, processors=3, workdir=tmp_path,
                           perpass=0.0, telemetry=True)
        result = run_multiprocess(tiny, config)
        events_path, directory = artifacts(tmp_path)
        payload = load_metrics(directory)
        workers = payload["workers"]
        assert len(workers) == 3
        assert (sum(w["realizations"] for w in workers.values())
                == result.total_volume == 60)
        assert all(w["messages"] >= 1 for w in workers.values())
        histogram = payload["metrics"]["histograms"][
            "collector.save_seconds"]
        assert histogram["count"] == result.saves_performed
        finals = [e for e in read_events(events_path, kind="worker_final")]
        assert sorted(e.fields["rank"] for e in finals) == [0, 1, 2]
        assert payload["metrics"]["counters"]["collector.messages"] \
            == result.messages_received

    def test_timestamps_are_run_relative(self, tmp_path):
        config = RunConfig(maxsv=20, processors=2, workdir=tmp_path,
                           telemetry=True)
        result = run_multiprocess(tiny, config)
        events_path, _ = artifacts(tmp_path)
        stamps = [e.ts for e in read_events(events_path)]
        assert min(stamps) >= 0.0
        assert max(stamps) < result.elapsed + 5.0

    def test_clean_exit_without_final_raises(self, tmp_path):
        config = RunConfig(maxsv=10, processors=2, workdir=tmp_path,
                           telemetry=True)
        with pytest.raises(BackendError, match="rank"):
            run_multiprocess(exits_cleanly_midway, config)
        events_path, _ = artifacts(tmp_path)
        died = list(read_events(events_path, kind="worker_died"))
        assert {e.fields["rank"] for e in died} == {0, 1}
        assert all(e.fields["exitcode"] == 0 for e in died)

    def test_nonzero_exit_raises_quickly(self, tmp_path):
        config = RunConfig(maxsv=10, processors=1, workdir=tmp_path)
        with pytest.raises(BackendError, match="exitcode 3"):
            run_multiprocess(crashes_hard, config)


class TestSimclusterTelemetry:
    def test_virtual_clock_stamps(self, tmp_path):
        config = RunConfig(maxsv=40, processors=4, workdir=tmp_path,
                           perpass=0.0, telemetry=True)
        result = run_simcluster(tiny, config)
        assert result.virtual_time > result.elapsed  # tau ~ seconds each
        events_path, directory = artifacts(tmp_path)
        payload = load_metrics(directory)
        gauges = payload["metrics"]["gauges"]
        assert gauges["run.virtual_seconds"] == pytest.approx(
            result.virtual_time)
        (end,) = read_events(events_path, kind="session_end")
        assert end.fields["t_comp"] == pytest.approx(result.virtual_time)
        # Every event is stamped in virtual seconds within the run.
        for event in read_events(events_path):
            assert 0.0 <= event.ts <= result.virtual_time + 1e-9

    def test_worker_stats_cover_every_rank(self, tmp_path):
        config = RunConfig(maxsv=40, processors=4, workdir=tmp_path,
                           telemetry=True)
        result = run_simcluster(tiny, config)
        payload = load_metrics(artifacts(tmp_path)[1])
        workers = payload["workers"]
        assert len(workers) == 4
        assert (sum(w["realizations"] for w in workers.values())
                == result.session_volume)
        # Virtual rates: realizations take tau ~ seconds of virtual time.
        assert all(0 < w["realizations_per_second"] < 10
                   for w in workers.values())


class TestReportView:
    def test_report_telemetry_flag(self, tmp_path, capsys):
        from repro.cli.report import main as report_main
        parmonc(tiny, maxsv=20, processors=2, workdir=tmp_path,
                telemetry=True)
        assert report_main(["--workdir", str(tmp_path),
                            "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "PARMONC run summary" in out
        assert "per-worker stats" in out

    def test_report_telemetry_flag_degrades_gracefully(self, tmp_path,
                                                       capsys):
        parmonc(tiny, maxsv=20, processors=2, workdir=tmp_path)
        assert report_main_ok(tmp_path)
        out = capsys.readouterr().out
        assert "telemetry:" in out  # explains there is nothing to show


def report_main_ok(workdir) -> bool:
    from repro.cli.report import main as report_main
    return report_main(["--workdir", str(workdir), "--telemetry"]) == 0
