"""Edge cases of the multiprocess backend: start methods, limits, IPC."""

from __future__ import annotations

import time

import numpy as np

from repro import parmonc
from repro.runtime.config import RunConfig
from repro.runtime.multiprocess import run_multiprocess
from repro.runtime.sequential import run_sequential


def module_level_square(rng):
    """Importable (hence picklable) realization for spawn tests."""
    return rng.random() ** 2


def module_level_slow(rng):
    time.sleep(0.05)
    return 1.0


def module_level_matrix(rng):
    return np.array([[rng.random(), rng.random() ** 2]])


class TestStartMethods:
    def test_spawn_start_method(self, tmp_path):
        # spawn re-imports the module in the child: requires the
        # routine to be picklable, which module-level functions are.
        config = RunConfig(maxsv=20, processors=2, workdir=tmp_path)
        result = run_multiprocess(module_level_square, config,
                                  start_method="spawn")
        reference = run_sequential(
            module_level_square,
            config.with_updates(workdir=tmp_path / "ref"))
        assert np.array_equal(result.estimates.mean,
                              reference.estimates.mean)

    def test_fork_keeps_closures(self, tmp_path):
        scale = 3.0
        result = parmonc(lambda rng: scale * rng.random(), maxsv=100,
                         processors=2, backend="multiprocess",
                         start_method="fork", workdir=tmp_path)
        assert 1.2 < result.estimates.mean[0, 0] < 1.8


class TestTimeLimit:
    def test_time_limit_truncates_run(self, tmp_path):
        config = RunConfig(maxsv=10_000, processors=2,
                           workdir=tmp_path, time_limit=0.4)
        result = run_multiprocess(module_level_slow, config)
        assert 0 < result.total_volume < 10_000

    def test_truncated_run_still_produces_estimates(self, tmp_path):
        config = RunConfig(maxsv=10_000, processors=2,
                           workdir=tmp_path, time_limit=0.4)
        result = run_multiprocess(module_level_slow, config)
        assert result.estimates.mean[0, 0] == 1.0

    def test_truncated_run_is_resumable(self, tmp_path):
        config = RunConfig(maxsv=10_000, processors=2,
                           workdir=tmp_path, time_limit=0.4)
        first = run_multiprocess(module_level_slow, config)
        resumed = parmonc(module_level_slow, maxsv=4, res=1, seqnum=1,
                          processors=2, workdir=tmp_path)
        assert resumed.total_volume == first.total_volume + 4


class TestIpcBehaviour:
    def test_matrix_messages_cross_process_boundary(self, tmp_path):
        config = RunConfig(nrow=1, ncol=2, maxsv=40, processors=2,
                           workdir=tmp_path)
        result = run_multiprocess(module_level_matrix, config)
        reference = run_sequential(
            module_level_matrix,
            config.with_updates(workdir=tmp_path / "ref"))
        assert np.array_equal(result.estimates.mean,
                              reference.estimates.mean)
        assert np.array_equal(result.estimates.variance,
                              reference.estimates.variance)

    def test_many_workers_on_one_core(self, tmp_path):
        # Oversubscription must not deadlock or lose messages.
        config = RunConfig(maxsv=64, processors=16, workdir=tmp_path,
                           perpass=0.0)
        result = run_multiprocess(module_level_square, config)
        assert result.total_volume == 64
        assert sum(result.per_rank_volumes.values()) == 64

    def test_single_worker_degenerate_case(self, tmp_path):
        config = RunConfig(maxsv=10, processors=1, workdir=tmp_path)
        result = run_multiprocess(module_level_square, config)
        assert result.total_volume == 10
