"""Smoke tests: every bundled example must run green.

Each example is executed in a subprocess with the repository's Python;
slower examples are exercised with reduced workloads elsewhere, so here
we simply require a clean exit and sane output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", "pi estimate"),
    ("cluster_scaling.py", "speedup"),
    ("hybrid_gpu_cluster.py", "hybrid cluster"),
    ("sde_diffusion.py", "trajectories simulated"),
    ("population_biology.py", "supercritical"),
    ("resume_workflow.py", "manaver recovered"),
]

SLOW_EXAMPLES = [
    ("radiation_transport.py", "pure-absorption"),
    ("variance_reduction.py", "variance reduction"),
    ("convergence_monitoring.py", "save-points"),
    ("quasi_monte_carlo.py", "fibonacci lattice"),
    ("pde_laplace.py", "dirichlet problem"),
    ("chemical_kinetics.py", "coagulation"),
]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, (name, result.stderr[-2000:])
    return result.stdout


@pytest.mark.parametrize("name,marker", FAST_EXAMPLES)
def test_fast_example(name, marker):
    output = run_example(name)
    assert marker.lower() in output.lower(), output


@pytest.mark.slow
@pytest.mark.parametrize("name,marker", SLOW_EXAMPLES)
def test_slow_example(name, marker):
    output = run_example(name)
    assert marker.lower() in output.lower(), output


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    listed = {name for name, _ in FAST_EXAMPLES + SLOW_EXAMPLES}
    assert on_disk == listed, (
        "examples on disk and in the smoke-test lists diverge: "
        f"{on_disk ^ listed}")
