"""Tests for the distributed TCP backend and the parmonc-pool daemon.

The headline property is the issue's acceptance criterion: a run
dispatched to local pools over real TCP — including a pool that joins
late and a worker SIGKILLed mid-run — completes with estimates
bit-identical to the sequential backend, because reassignment re-issues
the undelivered remainder on fresh subsequences and merges in rank
order.  (Cross-backend happy-path parity, resume and batched parity run
in ``test_runtime_engine.py::TestBackendParity``.)
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest

from repro.core.parmonc import parmonc
from repro.exceptions import ConfigurationError
from repro.obs.events import read_events
from repro.runtime.config import RunConfig
from repro.runtime.distributed import parse_connect
from repro.runtime.pool import PoolServer
from repro.runtime.worker import run_worker
from repro.stats.merging import merge_snapshots
from repro.stats.statistic import payload_map


def square(rng):
    return rng.random() ** 2


#: Directory (via environment, so it crosses the fork into pool worker
#: processes) where the hanging routine leaves its pid; unset = benign.
_HANG_DIR_ENV = "PARMONC_TEST_HANG_DIR"

_CALLS = {"n": 0}


def hang_on_sixth(rng):
    """Uniform squares, except one worker process hangs on its 6th call.

    The pid file is created ``O_EXCL``, so across every worker process
    exactly one wins the race, records its pid for the test to SIGKILL,
    and sleeps forever — after having delivered exactly 5 realizations
    (``perpass=0`` ships after every one).  Everyone else computes on.
    """
    directory = os.environ.get(_HANG_DIR_ENV)
    if directory:
        _CALLS["n"] += 1
        if _CALLS["n"] == 6:
            try:
                fd = os.open(os.path.join(directory, "hang.pid"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                while True:
                    time.sleep(3600)
    return rng.random() ** 2


def free_port() -> int:
    """Reserve a port number for a pool that will start later."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestParseConnect:
    def test_comma_separated_string(self):
        assert parse_connect("a:1, b:2") == (("a", 1), ("b", 2))

    def test_iterables_and_pairs(self):
        assert parse_connect([("a", 1), "b:2"]) == (("a", 1), ("b", 2))

    def test_duplicates_collapse(self):
        assert parse_connect("a:1,a:1,b:2") == (("a", 1), ("b", 2))

    @pytest.mark.parametrize("bad", [None, "", "hostonly", "host:xyz"])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_connect(bad)


class TestDistributedRuns:
    def test_statistics_payloads_bit_identical_to_sequential(self, tmp_path):
        sequential = parmonc(square, maxsv=40, perpass=0.0, peraver=0.0,
                             processors=2, backend="sequential",
                             statistics="extrema,histogram",
                             workdir=tmp_path / "seq")
        server = PoolServer(port=0, workers=2, start_method="fork")
        host, port = server.start()
        try:
            distributed = parmonc(square, maxsv=40, perpass=0.0,
                                  peraver=0.0, processors=2,
                                  backend="distributed",
                                  connect=f"{host}:{port}",
                                  statistics="extrema,histogram",
                                  workdir=tmp_path / "dist")
        finally:
            server.stop()
        assert distributed.total_volume == sequential.total_volume == 40
        assert (distributed.estimates.mean[0, 0]
                == sequential.estimates.mean[0, 0])
        assert (distributed.estimates.variance[0, 0]
                == sequential.estimates.variance[0, 0])
        # The wire carries the same versioned payloads the save-points
        # persist — byte-identical statistics, not just close ones.
        assert (payload_map(distributed.statistics)
                == payload_map(sequential.statistics))

    def test_elastic_run_survives_late_join_and_sigkill(self, tmp_path,
                                                        monkeypatch):
        """The acceptance scenario, made deterministic.

        M=2, quota 10 each, one single-slot pool up front: rank 0
        hangs after delivering exactly 5 realizations; rank 1 waits,
        pending.  A second pool then joins late (takes rank 1), the
        hung worker is SIGKILLed (its EXIT arrives after its 5 queued
        passes — drain-before-verdict), and the engine reissues the
        remaining 5 realizations as rank 2 on a fresh subsequence.
        The merged estimate must equal the rank-ordered merge of the
        three pieces, computed locally, bit for bit.
        """
        monkeypatch.setenv(_HANG_DIR_ENV, str(tmp_path))
        late_port = free_port()
        first = PoolServer(port=0, workers=1, start_method="fork")
        host, port = first.start()
        late = PoolServer(port=late_port, workers=1, start_method="fork")
        pid_path = tmp_path / "hang.pid"

        def chaos():
            while not pid_path.exists() or not pid_path.read_text():
                time.sleep(0.05)
            late.start()  # the late joiner picks up pending rank 1
            time.sleep(0.3)
            os.kill(int(pid_path.read_text()), signal.SIGKILL)

        agitator = threading.Thread(target=chaos, daemon=True)
        agitator.start()
        try:
            result = parmonc(
                hang_on_sixth, maxsv=20, perpass=0.0, peraver=0.0,
                processors=2, backend="distributed",
                connect=f"{host}:{port},127.0.0.1:{late_port}",
                on_worker_death="reassign", telemetry=True,
                workdir=tmp_path / "run")
        finally:
            agitator.join(timeout=30)
            first.stop()
            late.stop()
        assert result.total_volume == 20
        assert result.recovered_ranks == (0,)
        # Reference: the three pieces the run actually kept, merged in
        # rank order on a local worker loop (no environment -> benign).
        monkeypatch.delenv(_HANG_DIR_ENV)
        config = RunConfig(nrow=1, ncol=1, maxsv=20, perpass=0.0,
                           peraver=0.0, processors=2,
                           workdir=tmp_path / "ref")
        pieces = [
            run_worker(hang_on_sixth, config, rank, quota,
                       send=lambda message: None).snapshot()
            for rank, quota in ((0, 5), (1, 10), (2, 5))]
        reference = merge_snapshots(pieces).estimates()
        assert result.estimates.mean[0, 0] == reference.mean[0, 0]
        assert (result.estimates.variance[0, 0]
                == reference.variance[0, 0])
        events = list(read_events(
            tmp_path / "run" / "parmonc_data" / "telemetry"
            / "events.jsonl"))
        kinds = [event.kind for event in events]
        assert kinds.count("pool_connected") == 2  # one of them mid-run
        assert {"worker_died", "worker_recovered"} <= set(kinds)

    def test_missing_pools_fail_the_run_after_connect_timeout(self,
                                                              tmp_path):
        from repro.exceptions import BackendError
        port = free_port()  # nothing is listening there
        started = time.monotonic()
        with pytest.raises(BackendError, match="no parmonc-pool"):
            parmonc(square, maxsv=4, perpass=0.0, peraver=0.0,
                    processors=1, backend="distributed",
                    connect=f"127.0.0.1:{port}",
                    backend_options={"connect_timeout": 1.0,
                                     "retry_interval": 0.1},
                    workdir=tmp_path)
        assert time.monotonic() - started < 30


class TestPoolReuse:
    """The pool daemon is elastic capacity, not a one-shot server.

    Regression coverage for the historical limitation where a
    ``parmonc-pool`` process served exactly one session and then had to
    be restarted: the same server must now serve back-to-back runs and
    host several concurrent jobs of one scheduler session.
    """

    def test_back_to_back_sessions_without_restart(self, tmp_path):
        server = PoolServer(port=0, workers=2, start_method="fork")
        host, port = server.start()
        try:
            first = parmonc(square, maxsv=20, perpass=0.0, peraver=0.0,
                            processors=2, backend="distributed",
                            connect=f"{host}:{port}",
                            workdir=tmp_path / "one")
            second = parmonc(square, maxsv=20, seqnum=1, perpass=0.0,
                             peraver=0.0, processors=2,
                             backend="distributed",
                             connect=f"{host}:{port}",
                             workdir=tmp_path / "two")
        finally:
            server.stop()
        assert server.sessions_served == 2
        assert first.total_volume == second.total_volume == 20
        # Different seqnums: genuinely independent experiments.
        assert (first.estimates.mean[0, 0]
                != second.estimates.mean[0, 0])

    def test_scheduler_multiplexes_jobs_over_one_session(self, tmp_path):
        from repro.runtime.engine import create_backend
        from repro.runtime.job import JobSpec
        from repro.runtime.scheduler import Scheduler
        from repro.runtime.sequential import run_sequential

        server = PoolServer(port=0, workers=4, start_method="fork")
        host, port = server.start()
        try:
            scheduler = Scheduler(
                create_backend("distributed", connect=f"{host}:{port}"),
                workers=4)
            jobs = [
                scheduler.submit(JobSpec(
                    routine=square,
                    config=RunConfig(maxsv=30, processors=2, perpass=0.0,
                                     peraver=0.0, seqnum=i,
                                     workdir=tmp_path / f"job{i}"),
                    name=f"job{i}", priority=float(i + 1)))
                for i in range(2)]
            scheduler.run()
        finally:
            server.stop()
        # Both experiments travelled through one pool session ...
        assert server.sessions_served == 1
        # ... and each matches its solo sequential reference bit for bit.
        for i, job in enumerate(jobs):
            reference = run_sequential(
                square, RunConfig(maxsv=30, processors=2, perpass=0.0,
                                  peraver=0.0, seqnum=i,
                                  workdir=tmp_path / f"ref{i}"),
                use_files=False)
            assert (job.result.estimates.mean.tobytes()
                    == reference.estimates.mean.tobytes())
            assert (job.result.estimates.abs_error.tobytes()
                    == reference.estimates.abs_error.tobytes())


class TestCli:
    def test_list_backends(self, capsys):
        from repro.cli.run import main
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["sequential", "multiprocess", "simcluster",
                       "distributed"]

    def test_routine_required_without_list_backends(self, capsys):
        from repro.cli.run import main
        with pytest.raises(SystemExit):
            main(["--maxsv", "10"])
        assert "routine" in capsys.readouterr().err

    def test_report_names_registered_backends(self, tmp_path, capsys):
        from repro.cli.report import main
        parmonc(square, maxsv=6, perpass=0.0, peraver=0.0,
                workdir=tmp_path)
        assert main(["--workdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert ("registered backends: sequential, multiprocess, "
                "simcluster, distributed") in out

    def test_pool_parser_defaults(self):
        from repro.cli.pool import build_parser
        from repro.runtime.pool import DEFAULT_POOL_PORT
        args = build_parser().parse_args([])
        assert args.bind == "127.0.0.1"
        assert args.port == DEFAULT_POOL_PORT
