"""Tests for repro.qmc: Halton, lattices and RQMC realizations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import parmonc
from repro.exceptions import ConfigurationError
from repro.qmc import (
    HaltonSequence,
    fibonacci_lattice,
    halton_points,
    korobov_generator,
    lattice_points,
    mc_batch_realization,
    p2_criterion,
    radical_inverse,
    rqmc_halton_realization,
    rqmc_lattice_realization,
    shifted_batch_mean,
)


class TestRadicalInverse:
    def test_base_two_values(self):
        # 1 -> 0.1b, 2 -> 0.01b, 3 -> 0.11b, 6 = 110b -> 0.011b.
        assert radical_inverse(1, 2) == 0.5
        assert radical_inverse(2, 2) == 0.25
        assert radical_inverse(3, 2) == 0.75
        assert radical_inverse(6, 2) == 0.375

    def test_base_three_values(self):
        assert radical_inverse(1, 3) == pytest.approx(1 / 3)
        assert radical_inverse(5, 3) == pytest.approx(2 / 3 + 1 / 9)

    def test_zero_index(self):
        assert radical_inverse(0, 7) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            radical_inverse(-1, 2)
        with pytest.raises(ConfigurationError):
            radical_inverse(1, 1)


class TestHalton:
    def test_first_points(self):
        points = halton_points(3, 2)
        assert points[:, 0].tolist() == [0.5, 0.25, 0.75]
        assert points[0, 1] == pytest.approx(1 / 3)

    def test_range(self):
        points = halton_points(500, 5)
        assert np.all(points >= 0.0) and np.all(points < 1.0)

    def test_low_discrepancy_beats_random_binning(self):
        # Halton fills a 16-bin histogram far more evenly than iid
        # points of the same count.
        points = halton_points(1024, 1)[:, 0]
        counts = np.bincount((points * 16).astype(int), minlength=16)
        assert counts.max() - counts.min() <= 2

    def test_sequence_statefulness(self):
        sequence = HaltonSequence(2)
        first = sequence.next_points(10)
        second = sequence.next_points(10)
        combined = halton_points(20, 2)
        assert np.array_equal(np.vstack([first, second]), combined)
        assert sequence.next_index == 21

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            halton_points(10, 0)
        with pytest.raises(ConfigurationError):
            halton_points(10, 99)
        with pytest.raises(ConfigurationError):
            HaltonSequence(2, start=-1)


class TestLattice:
    def test_points_formula(self):
        points = lattice_points(4, (1, 3))
        assert points.tolist() == [
            [0.0, 0.0], [0.25, 0.75], [0.5, 0.5], [0.75, 0.25]]

    def test_fibonacci_values(self):
        assert fibonacci_lattice(3) == (2, (1, 1))
        assert fibonacci_lattice(7) == (13, (1, 8))
        assert fibonacci_lattice(12) == (144, (1, 89))

    def test_fibonacci_integrates_trig_polynomials_exactly(self, tree):
        # Lattice rules are exact on trigonometric polynomials whose
        # frequencies avoid the dual lattice.
        def g(x):
            return (1 + math.sin(2 * math.pi * x[0])) \
                * (1 + math.sin(2 * math.pi * x[1]))

        n, z = fibonacci_lattice(10)
        realization = rqmc_lattice_realization(g, n, z)
        values = [realization(tree.rng(0, 0, r)) for r in range(5)]
        assert np.allclose(values, 1.0, atol=1e-12)

    def test_p2_criterion_prefers_good_generators(self):
        n, good = fibonacci_lattice(10)  # n = 55, z = (1, 34)
        bad = (1, 1)  # diagonal lattice: terrible
        assert p2_criterion(n, good) < p2_criterion(n, bad) / 10

    def test_korobov_search_beats_naive(self):
        z = korobov_generator(127, 2)
        assert p2_criterion(127, z) < p2_criterion(127, (1, 1)) / 10
        assert z[0] == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lattice_points(0, (1,))
        with pytest.raises(ConfigurationError):
            lattice_points(4, ())
        with pytest.raises(ConfigurationError):
            fibonacci_lattice(2)
        with pytest.raises(ConfigurationError):
            korobov_generator(2, 2)


class TestRqmcRealizations:
    EXACT = (math.e - 1.0) * math.sin(1.0)

    @staticmethod
    def integrand(x):
        return math.exp(x[0]) * math.cos(x[1])

    def test_halton_realization_unbiased(self):
        realization = rqmc_halton_realization(self.integrand, 2, 128)
        result = parmonc(realization, maxsv=50, use_files=False)
        estimates = result.estimates
        assert abs(estimates.mean[0, 0] - self.EXACT) \
            <= 4 * estimates.abs_error[0, 0] + 1e-9

    def test_halton_variance_beats_mc_batch(self):
        batch = 256
        rqmc = parmonc(rqmc_halton_realization(self.integrand, 2, batch),
                       maxsv=40, use_files=False).estimates
        plain = parmonc(mc_batch_realization(self.integrand, 2, batch),
                        maxsv=40, use_files=False).estimates
        assert rqmc.variance[0, 0] < 0.05 * plain.variance[0, 0]

    def test_shift_consumes_exactly_dim_uniforms(self, tree):
        realization = rqmc_halton_realization(self.integrand, 2, 16)
        generator = tree.rng(0, 0, 0)
        realization(generator)
        assert generator.count == 2

    def test_deterministic_per_stream(self, tree):
        realization = rqmc_halton_realization(self.integrand, 2, 32)
        assert realization(tree.rng(0, 0, 5)) \
            == realization(tree.rng(0, 0, 5))

    def test_mc_batch_variance_scales_inversely(self):
        small = parmonc(mc_batch_realization(self.integrand, 2, 16),
                        maxsv=200, use_files=False).estimates
        large = parmonc(mc_batch_realization(self.integrand, 2, 64),
                        maxsv=200, use_files=False).estimates
        ratio = small.variance[0, 0] / large.variance[0, 0]
        assert ratio == pytest.approx(4.0, rel=0.5)

    def test_shifted_batch_mean_validation(self):
        with pytest.raises(ConfigurationError):
            shifted_batch_mean(lambda x: 0.0, np.zeros((4, 2)),
                               np.zeros(3))

    def test_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            rqmc_halton_realization(self.integrand, 2, 0)
        with pytest.raises(ConfigurationError):
            mc_batch_realization(self.integrand, 2, 0)
