"""Tests for CovarianceAccumulator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.finance import EuropeanOption, make_realization
from repro.exceptions import ConfigurationError
from repro.stats import CovarianceAccumulator


class TestAccumulation:
    def test_mean_matches_plain_average(self):
        accumulator = CovarianceAccumulator(2, 2)
        rows = [np.arange(4.0).reshape(2, 2) * k for k in (1, 2, 3)]
        for row in rows:
            accumulator.add(row)
        assert np.allclose(accumulator.mean(), np.mean(rows, axis=0))

    def test_covariance_matches_numpy(self):
        generator = np.random.default_rng(0)
        data = generator.normal(size=(200, 3))
        accumulator = CovarianceAccumulator(1, 3)
        for row in data:
            accumulator.add(row.reshape(1, 3))
        expected = np.cov(data.T, bias=True)
        assert np.allclose(accumulator.covariance(), expected)

    def test_correlation_diagonal_is_one(self):
        generator = np.random.default_rng(1)
        accumulator = CovarianceAccumulator(1, 2)
        for row in generator.normal(size=(50, 2)):
            accumulator.add(row.reshape(1, 2))
        correlation = accumulator.correlation()
        assert np.allclose(np.diag(correlation), 1.0)
        assert np.all(np.abs(correlation) <= 1.0 + 1e-12)

    def test_constant_entry_correlation_is_zero(self):
        accumulator = CovarianceAccumulator(1, 2)
        for value in (1.0, 2.0, 3.0):
            accumulator.add(np.array([[value, 5.0]]))
        correlation = accumulator.correlation()
        assert correlation[0, 1] == 0.0

    def test_merge_is_exact(self):
        generator = np.random.default_rng(2)
        data = generator.normal(size=(100, 2))
        joint = CovarianceAccumulator(1, 2)
        left = CovarianceAccumulator(1, 2)
        right = CovarianceAccumulator(1, 2)
        for index, row in enumerate(data):
            joint.add(row.reshape(1, 2))
            (left if index < 40 else right).add(row.reshape(1, 2))
        left.merge(right)
        assert np.allclose(left.covariance(), joint.covariance())
        assert left.volume == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CovarianceAccumulator(0, 1)
        with pytest.raises(ConfigurationError):
            CovarianceAccumulator(100, 100)  # cross-moment blowup
        accumulator = CovarianceAccumulator(1, 2)
        with pytest.raises(ConfigurationError):
            accumulator.add(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            accumulator.add(np.array([[np.nan, 1.0]]))
        with pytest.raises(ConfigurationError):
            accumulator.mean()
        with pytest.raises(ConfigurationError):
            accumulator.merge(CovarianceAccumulator(2, 2))


class TestContrastError:
    def test_difference_of_correlated_entries(self):
        # Entries are identical: their difference has zero variance
        # even though each entry alone is noisy.
        accumulator = CovarianceAccumulator(1, 2)
        generator = np.random.default_rng(3)
        for value in generator.normal(size=100):
            accumulator.add(np.array([[value, value]]))
        assert accumulator.contrast_error([1.0, -1.0]) \
            == pytest.approx(0.0, abs=1e-9)
        assert accumulator.contrast_error([1.0, 0.0]) > 0.0

    def test_matches_marginal_for_single_entry(self):
        accumulator = CovarianceAccumulator(1, 2)
        generator = np.random.default_rng(4)
        data = generator.normal(size=(400, 2))
        for row in data:
            accumulator.add(row.reshape(1, 2))
        marginal = 3.0 * math.sqrt(np.var(data[:, 0]) / 400)
        assert accumulator.contrast_error([1.0, 0.0]) \
            == pytest.approx(marginal)

    def test_weight_validation(self):
        accumulator = CovarianceAccumulator(1, 2)
        accumulator.add(np.array([[1.0, 2.0]]))
        accumulator.add(np.array([[2.0, 1.0]]))
        with pytest.raises(ConfigurationError):
            accumulator.contrast_error([1.0, 2.0, 3.0])


class TestPutCallParityApplication:
    def test_parity_contrast_is_deterministic(self, tree):
        # Call - put from the same terminal price is S_T - K discounted:
        # its randomness is exactly S_T's, and the covariance-aware
        # error of (call - put) is far below the naive sum of marginal
        # errors.
        option = EuropeanOption()
        realization = make_realization(option)
        accumulator = CovarianceAccumulator(1, 2)
        for index in range(400):
            accumulator.add(realization(tree.rng(0, 0, index)))
        joint_error = accumulator.contrast_error([1.0, -1.0])
        covariance = accumulator.covariance()
        naive_error = 3.0 * (math.sqrt(covariance[0, 0] / 400)
                             + math.sqrt(covariance[1, 1] / 400))
        assert joint_error < naive_error
        # And the parity value itself is recovered.
        parity = accumulator.mean()[0, 0] - accumulator.mean()[0, 1]
        expected = option.spot - option.strike * math.exp(
            -option.rate * option.maturity)
        assert abs(parity - expected) <= joint_error + 1e-9
