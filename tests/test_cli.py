"""Tests for the genparam, manaver and parmonc-run command-line tools."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.cli.genparam import main as genparam_main
from repro.cli.manaver import main as manaver_main, manual_average
from repro.cli.run import load_routine, main as run_main
from repro.exceptions import ConfigurationError, ReproError
from repro.rng.multiplier import LeapSet
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory, read_genparam_file
from repro.runtime.worker import run_worker


class TestGenparamCli:
    def test_writes_file_with_correct_multipliers(self, tmp_path, capsys):
        code = genparam_main(["30", "20", "10",
                              "--workdir", str(tmp_path)])
        assert code == 0
        values = read_genparam_file(tmp_path)
        expected = LeapSet(30, 20, 10).multipliers()
        assert (values["A_ne"], values["A_np"], values["A_nr"]) == expected
        output = capsys.readouterr().out
        assert "parmonc_genparam.dat" in output

    def test_invalid_exponents_fail_cleanly(self, tmp_path, capsys):
        code = genparam_main(["10", "20", "30",
                              "--workdir", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_prints_capacities(self, tmp_path, capsys):
        genparam_main(["30", "20", "10", "--workdir", str(tmp_path)])
        output = capsys.readouterr().out
        assert "experiments" in output


class TestManaverCli:
    def _leave_unfinalized_job(self, tmp_path, volume=30, processors=3):
        config = RunConfig(maxsv=volume, processors=processors,
                           workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        for rank in range(processors):
            run_worker(lambda rng: rng.random(), config, rank,
                       config.worker_quota(rank),
                       send=lambda m: collector.receive(m, 0.0))
        return collector

    def test_recovers_killed_job(self, tmp_path, capsys):
        self._leave_unfinalized_job(tmp_path)
        code = manaver_main(["--workdir", str(tmp_path)])
        assert code == 0
        assert "recovered 30 realizations" in capsys.readouterr().out
        data = DataDirectory(tmp_path)
        assert data.read_log()["total_sample_volume"] == "30"
        # The recovered sample becomes resumable.
        snapshot, _ = data.load_savepoint()
        assert snapshot.volume == 30

    def test_nothing_to_average(self, tmp_path, capsys):
        code = manaver_main(["--workdir", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_includes_previous_session_base(self, tmp_path):
        parmonc(lambda rng: rng.random(), maxsv=20, workdir=tmp_path)
        # A later job that dies mid-flight.
        config = RunConfig(maxsv=10, processors=1, res=1, seqnum=1,
                           workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        run_worker(lambda rng: rng.random(), config, 0, 10,
                   send=lambda m: collector.receive(m, 0.0))
        summary = manual_average(tmp_path)
        assert summary["volume"] == 30
        assert summary["base_included"]

    def test_resume_after_manaver_counts_everything(self, tmp_path):
        self._leave_unfinalized_job(tmp_path, volume=30)
        manual_average(tmp_path)
        resumed = parmonc(lambda rng: rng.random(), maxsv=10, res=1,
                          seqnum=1, workdir=tmp_path)
        assert resumed.total_volume == 40

    def test_crashed_sessions_seqnum_stays_burnt(self, tmp_path):
        # Regression: a session that crashed before finalizing must not
        # leave its seqnum reusable — the recovered realizations came
        # from that experiments subsequence.
        from repro.exceptions import ResumeError
        parmonc(lambda rng: rng.random(), maxsv=10, workdir=tmp_path)
        config = RunConfig(maxsv=10, processors=1, res=1, seqnum=7,
                           workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        run_worker(lambda rng: rng.random(), config, 0, 10,
                   send=lambda m: collector.receive(m, 0.0))
        manual_average(tmp_path)
        with pytest.raises(ResumeError):
            parmonc(lambda rng: rng.random(), maxsv=10, res=1,
                    seqnum=7, workdir=tmp_path)
        # A fresh seqnum still works and counts everything.
        final = parmonc(lambda rng: rng.random(), maxsv=10, res=1,
                        seqnum=8, workdir=tmp_path)
        assert final.total_volume == 30

    def test_empty_savepoints_rejected(self, tmp_path):
        data = DataDirectory(tmp_path)
        from repro.stats.accumulator import MomentSnapshot
        data.save_processor_snapshot(0, MomentSnapshot.zero(1, 1))
        with pytest.raises(ReproError):
            manual_average(tmp_path)


class TestRunCli:
    def test_load_routine_from_module(self):
        routine = load_routine("math:sqrt")
        assert routine(4.0) == 2.0

    def test_load_routine_bad_spec(self):
        with pytest.raises(ConfigurationError):
            load_routine("no_colon")
        with pytest.raises(ConfigurationError):
            load_routine("definitely_missing_module_xyz:fn")
        with pytest.raises(ConfigurationError):
            load_routine("math:missing_attr")
        with pytest.raises(ConfigurationError):
            load_routine("math:pi")  # not callable

    def test_end_to_end_run(self, tmp_path, capsys):
        (tmp_path / "mymodel.py").write_text(
            "def realization(rng):\n    return rng.random()\n")
        code = run_main(["mymodel:realization", "--maxsv", "100",
                         "--processors", "2",
                         "--workdir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "total sample volume: 100" in output
        mean = DataDirectory(tmp_path).read_mean_matrix()
        assert 0.3 < mean[0, 0] < 0.7

    def test_failure_exit_code(self, tmp_path, capsys):
        code = run_main(["missing_module_abc:fn", "--maxsv", "10",
                         "--workdir", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_resume_via_cli(self, tmp_path, capsys):
        (tmp_path / "mymodel2.py").write_text(
            "def realization(rng):\n    return rng.random()\n")
        assert run_main(["mymodel2:realization", "--maxsv", "50",
                         "--workdir", str(tmp_path)]) == 0
        assert run_main(["mymodel2:realization", "--maxsv", "50",
                         "--res", "1", "--seqnum", "1",
                         "--workdir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "total sample volume: 100" in output


class TestSchedCli:
    def _write_model(self, directory):
        (directory / "batchmodel.py").write_text(
            "def realization(rng):\n    return rng.random()\n")

    def test_submit_then_sched_end_to_end(self, tmp_path, capsys):
        from repro.cli.sched import sched_main, submit_main
        self._write_model(tmp_path)
        queue = tmp_path / "jobs.jsonl"
        for seqnum in (0, 1):
            assert submit_main(["batchmodel:realization",
                                "--queue", str(queue),
                                "--maxsv", "30", "--processors", "2",
                                "--seqnum", str(seqnum),
                                "--perpass", "0", "--peraver", "0"]) == 0
        out = capsys.readouterr().out
        assert "queued job-0 (#0)" in out
        assert "queued job-1 (#1)" in out
        report_path = tmp_path / "sla.json"
        assert sched_main(["--queue", str(queue),
                           "--backend", "sequential",
                           "--sla-report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "batch: 2 jobs, 0 failed, 0 rejected" in out
        import json as _json
        report = _json.loads(report_path.read_text())
        assert len(report["jobs"]) == 2
        assert {record["job"] for record in report["jobs"]} \
            == {"job-0", "job-1"}
        assert all(record["completed"] for record in report["jobs"])
        # Each job got its own session directory next to the queue.
        for name in ("job-0", "job-1"):
            mean = DataDirectory(tmp_path / name).read_mean_matrix()
            assert 0.2 < mean[0, 0] < 0.8

    def test_sched_admission_bound_rejects_excess_jobs(self, tmp_path,
                                                       capsys):
        from repro.cli.sched import sched_main, submit_main
        self._write_model(tmp_path)
        queue = tmp_path / "jobs.jsonl"
        for seqnum in (0, 1, 2):
            submit_main(["batchmodel:realization", "--queue", str(queue),
                         "--maxsv", "10", "--seqnum", str(seqnum)])
        report_path = tmp_path / "sla.json"
        assert sched_main(["--queue", str(queue),
                           "--backend", "sequential", "--max-jobs", "2",
                           "--sla-report", str(report_path)]) == 0
        captured = capsys.readouterr()
        assert "rejected job-2" in captured.err
        import json as _json
        report = _json.loads(report_path.read_text())
        assert report["rejected_jobs"] == ["job-2"]
        assert report["rejected"] == 1

    def test_sched_missing_queue_fails_cleanly(self, tmp_path, capsys):
        from repro.cli.sched import sched_main
        assert sched_main(["--queue", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_sched_malformed_queue_fails_cleanly(self, tmp_path, capsys):
        from repro.cli.sched import sched_main
        queue = tmp_path / "jobs.jsonl"
        queue.write_text("{not json\n")
        assert sched_main(["--queue", str(queue)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_sched_contains_failures_per_job(self, tmp_path, capsys):
        # One crashing job must not take down its healthy neighbour:
        # the multiprocess worker death fails only its own job, the
        # batch finishes with exit code 1 and a FAILED line.
        from repro.cli.sched import sched_main, submit_main
        self._write_model(tmp_path)
        (tmp_path / "crashmodel.py").write_text(
            "def realization(rng):\n    raise ValueError('boom')\n")
        queue = tmp_path / "jobs.jsonl"
        submit_main(["crashmodel:realization", "--queue", str(queue),
                     "--maxsv", "5", "--name", "bad"])
        submit_main(["batchmodel:realization", "--queue", str(queue),
                     "--maxsv", "10", "--seqnum", "1", "--name", "good"])
        assert sched_main(["--queue", str(queue),
                           "--backend", "multiprocess",
                           "--start-method", "fork"]) == 1
        out = capsys.readouterr().out
        assert "bad: FAILED" in out
        assert "good: L=10" in out
