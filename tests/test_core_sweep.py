"""Tests for parameter_sweep."""

from __future__ import annotations

import math

import pytest

from repro.apps.transport import SlabProblem, make_realization
from repro.core import parameter_sweep
from repro.exceptions import ConfigurationError


def power_factory(exponent):
    return lambda rng: rng.random() ** exponent


class TestParameterSweep:
    def test_point_per_value_with_distinct_seqnums(self):
        sweep = parameter_sweep(power_factory, [1, 2, 3], maxsv=100)
        assert len(sweep) == 3
        assert [point.seqnum for point in sweep] == [0, 1, 2]
        assert sweep.values() == [1, 2, 3]

    def test_means_track_exact_values(self):
        # E U**k = 1/(k+1).
        sweep = parameter_sweep(power_factory, [1, 2, 4], maxsv=4000,
                                processors=2)
        for point, exponent in zip(sweep, (1, 2, 4)):
            exact = 1.0 / (exponent + 1)
            assert abs(point.mean - exact) \
                <= 3 * point.abs_error + 1e-9

    def test_points_use_independent_experiments(self):
        # Same factory value twice: the two points must differ (they
        # consumed different experiment subsequences).
        sweep = parameter_sweep(power_factory, [2, 2], maxsv=500)
        assert sweep.points[0].mean != sweep.points[1].mean

    def test_seqnum_start_offsets(self):
        sweep = parameter_sweep(power_factory, [1, 2], maxsv=50,
                                seqnum_start=10)
        assert [point.seqnum for point in sweep] == [10, 11]

    def test_reproducible(self):
        first = parameter_sweep(power_factory, [1, 3], maxsv=200)
        second = parameter_sweep(power_factory, [1, 3], maxsv=200)
        assert first.means() == second.means()

    def test_matrix_problems(self):
        def factory(depth):
            return make_realization(SlabProblem(depth=depth,
                                                absorption=1.0))

        sweep = parameter_sweep(factory, [0.5, 1.0, 2.0], maxsv=3000,
                                ncol=3, processors=2)
        transmissions = [point.result.estimates.mean[0, 0]
                         for point in sweep]
        # Transmission decays with depth, tracking exp(-depth).
        assert transmissions[0] > transmissions[1] > transmissions[2]
        assert transmissions[2] == pytest.approx(math.exp(-2.0),
                                                 abs=0.05)

    def test_table_rendering(self):
        sweep = parameter_sweep(power_factory, [1, 2], maxsv=100)
        table = sweep.table(value_label="exponent")
        assert "exponent" in table
        assert len(table.splitlines()) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parameter_sweep(power_factory, [], maxsv=10)
        with pytest.raises(ConfigurationError):
            parameter_sweep(power_factory, [1], maxsv=10, seqnum=5)
        with pytest.raises(ConfigurationError):
            parameter_sweep(power_factory, [1], maxsv=10, res=1)
