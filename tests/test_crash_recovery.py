"""Crash-injection property tests: §3.4's no-lost-realization promise.

The harness drives a full session through the same bootstrap → collect
→ finalize path the engine uses, with a named crashpoint armed, then
asserts the crash-safety contract:

* every artifact on disk is all-old-or-all-new (parses cleanly, no
  quarantine needed),
* ``manaver`` recovers at least every realization whose collector
  ingest completed (i.e. was persisted), and never double-counts, and
* a later ``res=1`` session resumes from the recovered total.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import parmonc
from repro.cli.manaver import manual_average
from repro.exceptions import ReproError, ResumeError
from repro.rng.multiplier import LeapSet
from repro.runtime import storage
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory, write_genparam_file
from repro.runtime.resume import finalize_session
from repro.runtime.storage import CrashInjected
from repro.runtime.worker import run_worker

MAXSV = 12
PROCESSORS = 3

#: Every crashpoint a file-backed session passes through: one write per
#: result file and subtotal/save-point, four points per atomic write.
LABELS = ("processor", "results.func", "results.func_ci",
          "results.func_log", "savepoint")
STEPS = ("before_write", "after_write", "before_rename", "after_rename")
ALL_CRASHPOINTS = [f"{label}.{step}" for label in LABELS for step in STEPS]


def _routine(rng):
    return rng.random()


@pytest.fixture(autouse=True)
def _no_leaked_crashpoints():
    yield
    storage.clear_crashpoints()


def _drive_session(workdir, *, res=0, seqnum=0, delivered=None):
    """One full file-backed session on the engine's persistence path.

    ``delivered`` (rank -> cumulative volume) records each message whose
    ``collector.receive`` *completed* — meaning its subtotal reached
    disk — which is exactly the set of realizations §3.4 promises to
    recover after a kill.
    """
    config = RunConfig(maxsv=MAXSV, processors=PROCESSORS, res=res,
                       seqnum=seqnum, workdir=workdir)
    data, state = start_session(config)
    collector = Collector(config, state.base, data,
                          sessions=state.session_index)
    record = delivered if delivered is not None else {}

    def send(message):
        collector.receive(message, 0.0)
        record[message.rank] = message.snapshot.volume

    for rank in range(PROCESSORS):
        run_worker(_routine, config, rank, config.worker_quota(rank),
                   send=send)
    finalize_session(data, state, collector.merged())
    data.clear_processor_snapshots()
    return collector


class TestCrashpointCoverage:
    def test_session_passes_every_expected_crashpoint(self, tmp_path):
        with storage.trace_crashpoints() as trace:
            _drive_session(tmp_path)
        assert set(trace) == set(ALL_CRASHPOINTS)


class TestCrashAtEveryPoint:
    """Kill the session at each crashpoint; recovery must be exact."""

    @pytest.mark.parametrize("point", ALL_CRASHPOINTS)
    def test_all_old_or_all_new_and_recoverable(self, tmp_path, point):
        delivered: dict[int, int] = {}
        storage.install_crashpoint(point)
        with pytest.raises(CrashInjected):
            _drive_session(tmp_path, delivered=delivered)
        storage.clear_crashpoints()

        data = DataDirectory(tmp_path)
        # 1. No torn artifact anywhere: everything on disk parses and
        #    passes its checksum (all-old-or-all-new).
        if data.has_savepoint():
            data.load_savepoint()
        subtotals = data.load_processor_snapshots()
        assert data.quarantined_files() == []
        if (data.results_dir / "func.dat").exists():
            matrix = np.loadtxt(data.results_dir / "func.dat", ndmin=2)
            assert matrix.shape == (1, 1)
        # 2. Per-rank durability: a rank's on-disk subtotal is never
        #    behind a message whose ingest completed.
        for rank, volume in delivered.items():
            if rank in subtotals:
                assert subtotals[rank].volume >= volume
        persisted = sum(delivered.values())
        if not data.has_savepoint() and not subtotals:
            # Crash before the very first subtotal reached disk.
            assert persisted == 0
            with pytest.raises(ReproError):
                manual_average(tmp_path)
            return
        # 3. manaver recovers everything persisted, without inventing
        #    or double-counting realizations (a crash between the
        #    save-point rename and the subtotal cleanup used to yield
        #    2 * MAXSV here).
        summary = manual_average(tmp_path)
        assert summary["volume"] >= persisted
        assert summary["volume"] <= MAXSV
        assert summary["quarantined"] == 0
        # 4. The recovered sample is resumable and the crashed
        #    session's seqnum stays burnt.
        with pytest.raises(ResumeError):
            parmonc(_routine, maxsv=4, res=1, seqnum=0, workdir=tmp_path)
        resumed = parmonc(_routine, maxsv=4, res=1, seqnum=1,
                          workdir=tmp_path)
        assert resumed.total_volume == summary["volume"] + 4

    def test_crash_after_finalize_does_not_double_count(self, tmp_path):
        # The nastiest window: the merged save-point already contains
        # the session, but the subtotals were not yet cleaned up.
        storage.install_crashpoint("savepoint.after_rename")
        with pytest.raises(CrashInjected):
            _drive_session(tmp_path)
        storage.clear_crashpoints()
        data = DataDirectory(tmp_path)
        assert data.has_savepoint()
        # Stale absorbed subtotals are filtered by their session tag.
        assert data.load_processor_snapshots(absorbed_sessions=1) == {}
        summary = manual_average(tmp_path)
        assert summary["volume"] == MAXSV
        assert summary["processors_recovered"] == 0


class TestQuarantineRecovery:
    def _leave_unfinalized_job(self, tmp_path):
        config = RunConfig(maxsv=MAXSV, processors=PROCESSORS,
                           workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        for rank in range(PROCESSORS):
            run_worker(_routine, config, rank, config.worker_quota(rank),
                       send=lambda m: collector.receive(m, 0.0))
        return data

    def test_manaver_skips_quarantined_subtotal(self, tmp_path):
        # One torn subtotal costs only that processor's realizations,
        # never the whole recovery.
        data = self._leave_unfinalized_job(tmp_path)
        path = data.processor_savepoint_path(1)
        path.write_text(path.read_text()[:40])
        summary = manual_average(tmp_path)
        lost = RunConfig(maxsv=MAXSV, processors=PROCESSORS,
                         workdir=tmp_path).worker_quota(1)
        assert summary["volume"] == MAXSV - lost
        assert summary["processors_recovered"] == PROCESSORS - 1
        assert summary["quarantined"] == 1
        assert summary["warnings"]
        assert [p.name for p in data.quarantined_files()] == [
            "processor_00001.json.corrupt"]

    def test_manaver_survives_corrupt_merged_base(self, tmp_path):
        data = self._leave_unfinalized_job(tmp_path)
        data.savepoint_path.write_text("{torn")
        summary = manual_average(tmp_path)
        assert summary["volume"] == MAXSV
        assert not summary["base_included"]
        assert summary["quarantined"] == 1
        assert any("save-point" in w for w in summary["warnings"])
        assert [p.name for p in data.quarantined_files()] == [
            "savepoint.json.corrupt"]

    def test_truncated_savepoint_flagged_and_quarantined(self, tmp_path):
        parmonc(_routine, maxsv=6, workdir=tmp_path)
        data = DataDirectory(tmp_path)
        text = data.savepoint_path.read_text()
        data.savepoint_path.write_text(text[:len(text) // 2])
        with pytest.raises(ResumeError, match="quarantined"):
            data.load_savepoint()
        assert not data.has_savepoint()


class TestResumeCorrelationGuards:
    def test_res0_then_res1_cannot_reuse_superseded_seqnum(self, tmp_path):
        parmonc(_routine, maxsv=6, seqnum=4, workdir=tmp_path)
        with pytest.warns(Warning):
            parmonc(_routine, maxsv=6, seqnum=2, workdir=tmp_path)
        # seqnum 4 belongs to the superseded sample but stays burnt.
        with pytest.raises(ResumeError, match="seqnum 4"):
            parmonc(_routine, maxsv=6, res=1, seqnum=4, workdir=tmp_path)
        resumed = parmonc(_routine, maxsv=6, res=1, seqnum=5,
                          workdir=tmp_path)
        assert resumed.total_volume == 12

    def test_resume_refused_when_genparam_changes(self, tmp_path):
        parmonc(_routine, maxsv=6, workdir=tmp_path)
        leaps = LeapSet(110, 90, 40)
        write_genparam_file(tmp_path, 110, 90, 40, leaps.multipliers())
        with pytest.raises(ResumeError, match="leap"):
            parmonc(_routine, maxsv=6, res=1, seqnum=1, workdir=tmp_path)

    def test_stale_temp_files_swept_at_session_start(self, tmp_path):
        parmonc(_routine, maxsv=6, workdir=tmp_path)
        data = DataDirectory(tmp_path)
        stale = data.savepoints_dir / "processor_00000.json.tmp"
        stale.write_text("{half a write")
        (data.root / "savepoint.json.tmp").write_text("{torn")
        with pytest.warns(Warning):
            parmonc(_routine, maxsv=6, workdir=tmp_path)
        assert not stale.exists()
        assert not (data.root / "savepoint.json.tmp").exists()

    def test_stale_temp_files_swept_by_manaver(self, tmp_path):
        config = RunConfig(maxsv=MAXSV, processors=1, workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        run_worker(_routine, config, 0, MAXSV,
                   send=lambda m: collector.receive(m, 0.0))
        stale = data.savepoints_dir / "processor_00009.json.tmp"
        stale.write_text("{half a write")
        manual_average(tmp_path)
        assert not stale.exists()


class TestManaverCounts:
    def test_log_counts_preserved_when_only_base_exists(self, tmp_path):
        # Regression: processors used to be written as 0 when every
        # subtotal had been absorbed into the merged base.
        parmonc(_routine, maxsv=10, processors=2, seqnum=3,
                workdir=tmp_path)
        summary = manual_average(tmp_path)
        assert summary["volume"] == 10
        data = DataDirectory(tmp_path)
        log = data.read_log()
        assert log["processors"] == "2"
        assert log["seqnum"] == "3"
        assert log["sessions"] == "1"

    def test_sessions_counted_from_registry_without_base(self, tmp_path):
        # Session 1 finalizes; session 2 (res=0) crashes after leaving
        # subtotals — its res=0 bootstrap already discarded the base, so
        # only the registry remembers that two sessions ever started.
        parmonc(_routine, maxsv=6, workdir=tmp_path)
        config = RunConfig(maxsv=MAXSV, processors=PROCESSORS, res=0,
                           seqnum=1, workdir=tmp_path)
        with pytest.warns(Warning):
            data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        for rank in range(PROCESSORS):
            run_worker(_routine, config, rank, config.worker_quota(rank),
                       send=lambda m: collector.receive(m, 0.0))
        summary = manual_average(tmp_path)
        assert summary["volume"] == MAXSV
        assert not summary["base_included"]
        assert DataDirectory(tmp_path).read_log()["sessions"] == "2"


class TestSigkillSmoke:
    def test_smoke_script_recovers_after_sigkill(self):
        # The CI gate, runnable locally: real OS processes, a real
        # SIGKILL of the whole group, manaver must still recover.
        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ,
                   PYTHONPATH=str(repo / "src"))
        result = subprocess.run(
            [sys.executable, str(repo / "scripts"
                                 / "crash_recovery_smoke.py")],
            env=env, capture_output=True, text=True, timeout=150)
        assert result.returncode == 0, result.stderr + result.stdout
        assert "smoke: OK" in result.stdout
