"""Tests for the hierarchical tree reduction of the moment exchange.

Three layers: the planner (pure topology), the reducer loop driven
in-process with plain queues (coalescing, staleness, shutdown), and
full multiprocess runs with deterministic reducer crashes injected via
``PARMONC_REDUCER_CRASH`` — the fault-tolerance story: a dead interior
node's subtree reattaches under ``on_worker_death="reassign"`` and the
estimate stays the canonical rank-ordered merge.
"""

from __future__ import annotations

import queue

import numpy as np
import pytest

from repro.core.parmonc import parmonc
from repro.exceptions import BackendError, ConfigurationError
from repro.obs.events import read_events
from repro.rng.streams import StreamTree
from repro.runtime.config import RunConfig
from repro.runtime.messages import CombinedMessage, MomentMessage
from repro.runtime.reduction import (
    CRASH_ENV,
    plan_reduction,
    run_reducer,
)
from repro.stats.accumulator import MomentAccumulator
from repro.stats.merging import merge_snapshots


def square(rng):
    return rng.random() ** 2


def _message(rank, volume, *, final=False, sent_at=0.0):
    accumulator = MomentAccumulator(1, 1)
    for index in range(volume):
        accumulator.add(np.array([[float(rank * 100 + index)]]))
    return MomentMessage(rank=rank, snapshot=accumulator.snapshot(),
                         sent_at=sent_at, final=final)


# ---------------------------------------------------------------------------
# Planner


class TestPlanReduction:
    def test_none_fanout_is_flat(self):
        plan = plan_reduction(range(100), None)
        assert plan.flat
        assert plan.levels == 0
        assert plan.leaf_parents == {}

    def test_fanout_covering_all_workers_is_flat(self):
        assert plan_reduction(range(4), 4).flat
        assert plan_reduction(range(4), 8).flat

    def test_single_level_tree(self):
        plan = plan_reduction(range(8), 4)
        assert not plan.flat
        assert plan.levels == 1
        assert [node.node_id for node in plan.nodes] == ["r1.0", "r1.1"]
        assert plan.nodes[0].worker_ranks == (0, 1, 2, 3)
        assert plan.nodes[1].worker_ranks == (4, 5, 6, 7)
        assert all(node.parent is None for node in plan.nodes)
        assert len(plan.roots) == 2

    def test_multi_level_tree(self):
        plan = plan_reduction(range(16), 2)
        assert plan.levels == 3
        level1 = [node for node in plan.nodes if node.level == 1]
        assert len(level1) == 8
        assert all(node.parent is not None for node in level1)
        roots = plan.roots
        assert len(roots) <= 2
        # Every worker rank appears in exactly one leaf node and in its
        # ancestors' subtree_ranks up to a root.
        covered = sorted(rank for node in level1
                         for rank in node.worker_ranks)
        assert covered == list(range(16))
        root_cover = sorted(rank for node in roots
                            for rank in node.subtree_ranks)
        assert root_cover == list(range(16))

    def test_leaf_parents_maps_every_rank(self):
        plan = plan_reduction(range(10), 3)
        assert sorted(plan.leaf_parents) == list(range(10))
        for rank, node_id in plan.leaf_parents.items():
            assert rank in plan.node(node_id).worker_ranks

    def test_node_lookup_rejects_unknown_id(self):
        plan = plan_reduction(range(8), 2)
        with pytest.raises(ConfigurationError, match="unknown reducer"):
            plan.node("r9.9")

    def test_fanout_below_two_rejected(self):
        with pytest.raises(ConfigurationError, match="fanout"):
            plan_reduction(range(4), 1)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            plan_reduction([0, 1, 1], 2)

    def test_config_validates_reduction_fanout(self):
        with pytest.raises(ConfigurationError, match="reduction_fanout"):
            RunConfig(maxsv=1, reduction_fanout=1)
        with pytest.raises(ConfigurationError, match="transport"):
            RunConfig(maxsv=1, transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# CombinedMessage invariants


class TestCombinedMessage:
    def test_requires_rank_ordered_unique_entries(self):
        a, b = _message(0, 1), _message(1, 1)
        combined = CombinedMessage(node_id="r1.0", entries=(a, b),
                                   sent_at=0.0)
        assert combined.ranks == (0, 1)
        with pytest.raises(ConfigurationError):
            CombinedMessage(node_id="r1.0", entries=(b, a), sent_at=0.0)
        with pytest.raises(ConfigurationError):
            CombinedMessage(node_id="r1.0", entries=(a, a), sent_at=0.0)
        with pytest.raises(ConfigurationError):
            CombinedMessage(node_id="r1.0", entries=(), sent_at=0.0)

    def test_final_when_any_entry_final(self):
        combined = CombinedMessage(
            node_id="r1.0",
            entries=(_message(0, 1), _message(1, 1, final=True)),
            sent_at=0.0)
        assert combined.final


# ---------------------------------------------------------------------------
# Reducer loop (in-process, plain queues)


class TestRunReducer:
    def _node(self):
        return plan_reduction(range(4), 2).node("r1.0")  # workers 0, 1

    def test_burst_coalesces_into_one_forward(self):
        node = self._node()
        inbox, upstream = queue.Queue(), queue.Queue()
        for volume in (1, 2, 3):
            inbox.put(_message(0, volume))
        inbox.put(_message(0, 4, final=True))
        inbox.put(_message(1, 4, final=True))
        run_reducer(node, inbox, upstream)
        combined = upstream.get_nowait()
        assert upstream.empty()
        # One combined message, latest snapshot per rank, rank order.
        assert combined.node_id == "r1.0"
        assert combined.ranks == (0, 1)
        assert [entry.snapshot.volume for entry in combined.entries] \
            == [4, 4]
        assert combined.final
        assert combined.metrics["drained"] == 5

    def test_stale_reorder_is_dropped(self):
        node = self._node()
        inbox, upstream = queue.Queue(), queue.Queue()
        inbox.put(_message(0, 5))
        inbox.put(_message(0, 2))  # late, lower volume: superseded
        inbox.put(_message(0, 5, final=True))
        inbox.put(_message(1, 1, final=True))
        run_reducer(node, inbox, upstream)
        combined = upstream.get_nowait()
        assert combined.entries[0].snapshot.volume == 5
        assert combined.entries[0].final

    def test_flattens_child_combined_messages(self):
        plan = plan_reduction(range(8), 2)
        parent = plan.node("r2.0")  # children r1.0, r1.1 -> ranks 0..3
        inbox, upstream = queue.Queue(), queue.Queue()
        inbox.put(CombinedMessage(
            node_id="r1.0",
            entries=(_message(0, 3, final=True),
                     _message(1, 3, final=True)),
            sent_at=0.0))
        inbox.put(CombinedMessage(
            node_id="r1.1",
            entries=(_message(2, 3, final=True),
                     _message(3, 3, final=True)),
            sent_at=0.0))
        run_reducer(parent, inbox, upstream)
        combined = upstream.get_nowait()
        assert combined.ranks == (0, 1, 2, 3)
        assert combined.final

    def test_sentinel_stops_an_unfinished_reducer(self):
        node = self._node()
        inbox, upstream = queue.Queue(), queue.Queue()
        inbox.put(_message(0, 1))
        inbox.put(None)
        run_reducer(node, inbox, upstream)  # returns instead of hanging
        # The non-final batch drained before the sentinel still went out.
        assert upstream.get_nowait().ranks == (0,)


# ---------------------------------------------------------------------------
# Multiprocess fault tolerance (deterministic crash injection)


class TestReducerFaultTolerance:
    def _reference_estimates(self, ranks_and_quotas, seqnum=1):
        """The canonical rank-ordered merge over explicit substreams."""
        tree = StreamTree()
        snapshots = []
        for rank, quota in sorted(ranks_and_quotas.items()):
            accumulator = MomentAccumulator(1, 1)
            for index in range(quota):
                value = square(tree.rng(seqnum, rank, index))
                accumulator.add(np.array([[value]]))
            snapshots.append(accumulator.snapshot())
        return merge_snapshots(snapshots).estimates()

    def test_eaten_final_reassigns_the_subtree_worker(
            self, tmp_path, monkeypatch):
        # fanout=2 over 3 workers: r1.0 serves {0, 1}, r1.1 serves {2}.
        # r1.1 dies the moment it absorbs rank 2's final (perpass is
        # huge, so that final is rank 2's only message): the engine's
        # grace path must reassign rank 2's full quota to a fresh rank.
        monkeypatch.setenv(CRASH_ENV, "r1.1:on-final")
        result = parmonc(square, maxsv=30, perpass=1000.0, peraver=0.0,
                         processors=3, seqnum=1, backend="multiprocess",
                         start_method="fork", reduction_fanout=2,
                         on_worker_death="reassign", death_grace=0.3,
                         telemetry=True, workdir=tmp_path)
        assert result.total_volume == 30
        assert result.recovered_ranks == (2,)
        reference = self._reference_estimates({0: 10, 1: 10, 3: 10})
        assert np.array_equal(result.estimates.mean, reference.mean)
        assert np.array_equal(result.estimates.variance,
                              reference.variance)
        events = list(read_events(tmp_path / "parmonc_data" / "telemetry"
                                  / "events.jsonl"))
        kinds = {event.kind for event in events}
        assert "reducer_respawned" in kinds
        assert "worker_recovered" in kinds

    def test_respawned_reducers_keep_estimates_bit_identical(
            self, tmp_path, monkeypatch):
        baseline = parmonc(square, maxsv=50, perpass=1000.0, peraver=0.0,
                           processors=5, seqnum=1, backend="multiprocess",
                           start_method="fork", workdir=tmp_path / "flat")
        # Every reducer dies right after its first forward; generous
        # grace so in-flight finals never trigger a false reassignment.
        monkeypatch.setenv(CRASH_ENV, "*:after-forward-1")
        result = parmonc(square, maxsv=50, perpass=1000.0, peraver=0.0,
                         processors=5, seqnum=1, backend="multiprocess",
                         start_method="fork", reduction_fanout=2,
                         on_worker_death="reassign", death_grace=5.0,
                         telemetry=True, workdir=tmp_path / "tree")
        assert result.total_volume == 50
        assert result.recovered_ranks == ()
        assert np.array_equal(result.estimates.mean,
                              baseline.estimates.mean)
        assert np.array_equal(result.estimates.variance,
                              baseline.estimates.variance)
        events = list(read_events(tmp_path / "tree" / "parmonc_data"
                                  / "telemetry" / "events.jsonl"))
        respawns = [e for e in events if e.kind == "reducer_respawned"]
        assert respawns and respawns[0].fields["exitcode"] == 137

    def test_default_policy_fails_on_reducer_death(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "r1.0:on-final")
        with pytest.raises(BackendError, match="reducer r1.0"):
            parmonc(square, maxsv=30, perpass=1000.0, peraver=0.0,
                    processors=3, seqnum=1, backend="multiprocess",
                    start_method="fork", reduction_fanout=2,
                    workdir=tmp_path)
