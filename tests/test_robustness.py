"""Failure injection and edge-case robustness across the stack."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    BackendError,
    ConfigurationError,
    Lcg128,
    RealizationError,
    ReproError,
    ResumeError,
    initialize_rnd128,
    parmonc,
    rnd128,
)
from repro.rng import current_rnd128, install_rnd128
from repro.runtime.files import DataDirectory


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.exceptions import (
            BackendError as B,
            CapacityError,
            ConfigurationError as C,
            RealizationError as R,
            ResumeError as Re,
        )
        for exc_type in (B, CapacityError, C, R, Re):
            assert issubclass(exc_type, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_single_except_clause_covers_everything(self, tmp_path):
        caught = []
        for bad_call in (
                lambda: parmonc(lambda rng: 1.0, maxsv=0,
                                workdir=tmp_path),
                lambda: parmonc(lambda rng: 1.0, maxsv=1, res=1,
                                seqnum=1, workdir=tmp_path),
                lambda: Lcg128(state=2)):
            try:
                bad_call()
            except ReproError as exc:
                caught.append(type(exc).__name__)
        assert len(caught) == 3

    def test_realization_error_carries_coordinates(self, tmp_path):
        def explode(rng):
            raise RuntimeError("kaboom")

        with pytest.raises(RealizationError) as info:
            parmonc(explode, maxsv=4, seqnum=5, workdir=tmp_path)
        assert info.value.experiment == 5
        assert info.value.processor == 0
        assert info.value.realization == 0


class TestGlobalRnd128Api:
    def test_initialize_positions_the_stream(self, tree):
        initialize_rnd128(experiment=1, processor=2, realization=3)
        expected = tree.rng(1, 2, 3).random()
        assert rnd128() == expected

    def test_current_returns_installed_generator(self):
        generator = Lcg128()
        install_rnd128(generator)
        assert current_rnd128() is generator
        value = rnd128()
        assert generator.count == 1
        assert 0.0 < value < 1.0

    def test_install_rejects_non_generator(self):
        with pytest.raises(ConfigurationError):
            install_rnd128("not a generator")

    def test_initialize_returns_generator(self):
        generator = initialize_rnd128()
        assert isinstance(generator, Lcg128)
        assert current_rnd128() is generator


class TestCorruptionRecovery:
    def test_resume_from_truncated_savepoint(self, tmp_path):
        parmonc(lambda rng: rng.random(), maxsv=10, workdir=tmp_path)
        savepoint = DataDirectory(tmp_path).savepoint_path
        savepoint.write_text(savepoint.read_text()[:40])
        with pytest.raises(ResumeError):
            parmonc(lambda rng: rng.random(), maxsv=10, res=1, seqnum=1,
                    workdir=tmp_path)

    def test_resume_from_wrong_typed_savepoint(self, tmp_path):
        from repro.runtime.storage import payload_checksum

        parmonc(lambda rng: rng.random(), maxsv=10, workdir=tmp_path)
        savepoint = DataDirectory(tmp_path).savepoint_path
        document = json.loads(savepoint.read_text())
        # Valid JSON, valid checksum — but a field of the wrong type.
        document["payload"]["snapshot"]["volume"] = "many"
        document["checksum"] = payload_checksum(document["payload"])
        savepoint.write_text(json.dumps(document))
        with pytest.raises(ResumeError):
            parmonc(lambda rng: rng.random(), maxsv=10, res=1, seqnum=1,
                    workdir=tmp_path)

    def test_fresh_run_recovers_from_corruption(self, tmp_path):
        parmonc(lambda rng: rng.random(), maxsv=10, workdir=tmp_path)
        DataDirectory(tmp_path).savepoint_path.write_text("garbage")
        result = parmonc(lambda rng: rng.random(), maxsv=10, res=0,
                         workdir=tmp_path)
        assert result.total_volume == 10


class TestRealizationMisbehaviour:
    def test_nan_realization_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            parmonc(lambda rng: float("nan"), maxsv=4, workdir=tmp_path)

    def test_wrong_shape_realization_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            parmonc(lambda rng: np.zeros((3, 3)), nrow=2, ncol=2,
                    maxsv=4, workdir=tmp_path)

    def test_exception_in_multiprocess_worker(self, tmp_path):
        with pytest.raises(BackendError):
            parmonc(_raise_in_worker, maxsv=4, processors=2,
                    backend="multiprocess", workdir=tmp_path)

    def test_string_returning_realization_rejected(self, tmp_path):
        with pytest.raises(Exception):
            parmonc(lambda rng: "oops", maxsv=4, workdir=tmp_path)


def _raise_in_worker(rng):
    raise ValueError("worker-side failure")


class TestBoundaryConditions:
    def test_single_realization_run(self, tmp_path):
        result = parmonc(lambda rng: 7.0, maxsv=1, workdir=tmp_path)
        assert result.total_volume == 1
        assert result.estimates.mean[0, 0] == 7.0
        assert result.estimates.variance[0, 0] == 0.0
        assert result.estimates.abs_error[0, 0] == 0.0

    def test_more_processors_than_realizations(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=3, processors=8,
                         workdir=tmp_path)
        assert result.total_volume == 3
        idle = [rank for rank, volume in result.per_rank_volumes.items()
                if volume == 0]
        assert len(idle) == 5

    def test_constant_realization_zero_error(self, tmp_path):
        result = parmonc(lambda rng: 2.5, maxsv=100, processors=4,
                         workdir=tmp_path)
        assert result.estimates.abs_error_max == 0.0
        assert result.estimates.rel_error_max == 0.0

    def test_negative_valued_realizations(self, tmp_path):
        result = parmonc(lambda rng: -rng.random(), maxsv=1000,
                         workdir=tmp_path)
        assert -0.6 < result.estimates.mean[0, 0] < -0.4
        assert result.estimates.rel_error[0, 0] > 0.0

    def test_huge_matrix_shape(self, tmp_path):
        # A 200 x 50 realization matrix: 10k entries per realization.
        result = parmonc(lambda rng: np.full((200, 50), rng.random()),
                         nrow=200, ncol=50, maxsv=20, workdir=tmp_path)
        assert result.estimates.shape == (200, 50)
        stored = DataDirectory(tmp_path).read_mean_matrix()
        assert stored.shape == (200, 50)

    def test_zero_argument_style_in_multiprocess(self, tmp_path):
        result = parmonc(_paper_style_square, maxsv=60, processors=3,
                         backend="multiprocess", workdir=tmp_path)
        reference = parmonc(lambda rng: rng.random() ** 2, maxsv=60,
                            processors=3, workdir=tmp_path / "ref")
        assert result.estimates.mean[0, 0] \
            == reference.estimates.mean[0, 0]


def _paper_style_square():
    value = rnd128()
    return value * value
