"""Tests for repro.obs.metrics."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    merge_metrics,
)


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("messages")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("messages")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_and_adjust(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7.0)
        gauge.inc(-2.0)
        assert gauge.value == 5.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("t", bounds=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        data = histogram.data()
        assert data.buckets == (2, 1, 1)  # <=1, <=10, +inf overflow
        assert data.count == 4
        assert data.minimum == 0.5
        assert data.maximum == 100.0
        assert data.mean == pytest.approx(106.2 / 4)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("t", bounds=())

    def test_merge_is_exact(self):
        a = Histogram("t", bounds=(1.0,))
        b = Histogram("t", bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.25)
        merged = a.data().merged(b.data())
        assert merged.count == 3
        assert merged.buckets == (2, 1)
        assert merged.minimum == 0.25
        assert merged.maximum == 2.0

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("t", bounds=(1.0,)).data()
        b = Histogram("t", bounds=(2.0,)).data()
        with pytest.raises(ConfigurationError):
            a.merged(b)

    def test_dict_round_trip(self):
        histogram = Histogram("t")
        histogram.observe(0.01)
        data = histogram.data()
        assert HistogramData.from_dict(data.to_dict()) == data

    def test_empty_histogram_serializes_without_infinities(self):
        payload = Histogram("t").data().to_dict()
        assert payload["min"] is None and payload["max"] is None
        restored = HistogramData.from_dict(payload)
        assert restored.minimum == math.inf

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramData.from_dict({"count": "many"})


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_snapshot_partitions_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot.counters == {"c": 1.0}
        assert snapshot.gauges == {"g": 2.0}
        assert snapshot.histograms["h"].count == 1

    def test_snapshot_is_immutable_copy(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        registry.counter("c").inc()
        assert snapshot.counters["c"] == 1.0

    def test_default_histogram_bounds(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.data().bounds == DEFAULT_BUCKETS


class TestMergeMetrics:
    def test_counters_add_gauges_right_biased(self):
        a = MetricsSnapshot(counters={"n": 2.0}, gauges={"g": 1.0})
        b = MetricsSnapshot(counters={"n": 3.0, "m": 1.0},
                            gauges={"g": 9.0})
        merged = merge_metrics([a, b])
        assert merged.counters == {"n": 5.0, "m": 1.0}
        assert merged.gauges == {"g": 9.0}

    def test_histograms_merge_like_formula_5(self):
        # Merging per-worker snapshots on rank 0 is the same arithmetic
        # as merging the workers' own observations into one histogram.
        workers = []
        direct = Histogram("t", bounds=(1.0, 10.0))
        for values in ((0.5, 3.0), (20.0,), (0.1, 0.2, 7.0)):
            local = Histogram("t", bounds=(1.0, 10.0))
            for value in values:
                local.observe(value)
                direct.observe(value)
            workers.append(MetricsSnapshot(
                histograms={"t": local.data()}))
        merged = merge_metrics(workers)
        assert merged.histograms["t"] == direct.data()

    def test_dict_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert MetricsSnapshot.from_dict(snapshot.to_dict()) == snapshot
