"""Tests for repro.stats.accumulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestAccumulation:
    def test_scalar_means(self):
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(2.0)
        accumulator.add(4.0)
        estimates = accumulator.estimates()
        assert estimates.mean[0, 0] == 3.0
        assert estimates.volume == 2

    def test_matrix_accumulation(self):
        accumulator = MomentAccumulator(2, 3)
        accumulator.add(np.arange(6.0).reshape(2, 3))
        accumulator.add(np.arange(6.0).reshape(2, 3) * 3)
        estimates = accumulator.estimates()
        assert np.allclose(estimates.mean,
                           2 * np.arange(6.0).reshape(2, 3))

    def test_volume_and_len(self):
        accumulator = MomentAccumulator(1, 1)
        for i in range(7):
            accumulator.add(float(i))
        assert accumulator.volume == 7
        assert len(accumulator) == 7

    def test_compute_time_tracked(self):
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(1.0, compute_time=0.5)
        accumulator.add(1.0, compute_time=1.5)
        assert accumulator.compute_time == pytest.approx(2.0)
        assert accumulator.estimates().mean_time == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        accumulator = MomentAccumulator(2, 2)
        with pytest.raises(ConfigurationError):
            accumulator.add(np.zeros((2, 3)))

    def test_scalar_rejected_for_matrix_problem(self):
        accumulator = MomentAccumulator(2, 2)
        with pytest.raises(ConfigurationError):
            accumulator.add(1.0)

    def test_nan_rejected(self):
        accumulator = MomentAccumulator(1, 1)
        with pytest.raises(ConfigurationError):
            accumulator.add(float("nan"))

    def test_inf_rejected(self):
        accumulator = MomentAccumulator(1, 1)
        with pytest.raises(ConfigurationError):
            accumulator.add(float("inf"))

    def test_negative_compute_time_rejected(self):
        accumulator = MomentAccumulator(1, 1)
        with pytest.raises(ConfigurationError):
            accumulator.add(1.0, compute_time=-0.1)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            MomentAccumulator(0, 1)

    def test_reset(self):
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(5.0, compute_time=1.0)
        accumulator.reset()
        assert accumulator.volume == 0
        assert accumulator.compute_time == 0.0
        accumulator.add(1.0)
        assert accumulator.estimates().mean[0, 0] == 1.0

    def test_repr(self):
        assert "volume=0" in repr(MomentAccumulator(3, 2))


class TestSnapshot:
    def test_snapshot_is_immutable_copy(self):
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(1.0)
        snapshot = accumulator.snapshot()
        accumulator.add(100.0)
        assert snapshot.volume == 1
        assert snapshot.sum1[0, 0] == 1.0

    def test_zero_snapshot(self):
        snapshot = MomentSnapshot.zero(2, 3)
        assert snapshot.volume == 0
        assert snapshot.shape == (2, 3)

    def test_serialization_roundtrip(self):
        accumulator = MomentAccumulator(2, 2)
        accumulator.add(np.array([[1.0, 2.0], [3.0, 4.0]]),
                        compute_time=0.25)
        snapshot = accumulator.snapshot()
        restored = MomentSnapshot.from_dict(snapshot.to_dict())
        assert np.array_equal(restored.sum1, snapshot.sum1)
        assert np.array_equal(restored.sum2, snapshot.sum2)
        assert restored.volume == snapshot.volume
        assert restored.compute_time == snapshot.compute_time

    def test_from_dict_malformed(self):
        with pytest.raises(ConfigurationError):
            MomentSnapshot.from_dict({"sum1": [[1.0]]})

    def test_snapshot_validation(self):
        with pytest.raises(ConfigurationError):
            MomentSnapshot(sum1=np.zeros((1, 1)), sum2=np.zeros((2, 2)),
                           volume=0)
        with pytest.raises(ConfigurationError):
            MomentSnapshot(sum1=np.zeros((1, 1)), sum2=np.zeros((1, 1)),
                           volume=-1)
        with pytest.raises(ConfigurationError):
            MomentSnapshot(sum1=np.zeros((1, 1)), sum2=np.zeros((1, 1)),
                           volume=0, compute_time=-1.0)

    def test_estimates_from_snapshot(self):
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(3.0)
        assert accumulator.snapshot().estimates().mean[0, 0] == 3.0


class TestMergeSnapshot:
    def test_merge_equals_joint_accumulation(self):
        joint = MomentAccumulator(1, 2)
        part_a = MomentAccumulator(1, 2)
        part_b = MomentAccumulator(1, 2)
        for i in range(10):
            row = np.array([[float(i), float(i * i)]])
            joint.add(row)
            (part_a if i % 2 == 0 else part_b).add(row)
        part_a.merge_snapshot(part_b.snapshot())
        assert np.allclose(part_a.estimates().mean, joint.estimates().mean)
        assert part_a.volume == joint.volume

    def test_merge_shape_mismatch(self):
        accumulator = MomentAccumulator(1, 1)
        with pytest.raises(ConfigurationError):
            accumulator.merge_snapshot(MomentSnapshot.zero(2, 2))

    @given(values=st.lists(finite_floats, min_size=1, max_size=30),
           split=st.integers(0, 30))
    @settings(max_examples=50)
    def test_merge_any_split_is_exact(self, values, split):
        split = min(split, len(values))
        joint = MomentAccumulator(1, 1)
        left = MomentAccumulator(1, 1)
        right = MomentAccumulator(1, 1)
        for index, value in enumerate(values):
            joint.add(value)
            (left if index < split else right).add(value)
        left.merge_snapshot(right.snapshot())
        assert left.snapshot().sum1 == pytest.approx(joint.snapshot().sum1)
        assert left.snapshot().sum2 == pytest.approx(joint.snapshot().sum2)
        assert left.volume == joint.volume
