"""A full user campaign, end to end, across the whole tool surface.

Plays the complete lifecycle a real PARMONC user would: certify the
generator, configure a custom hierarchy with genparam, run on every
backend, monitor with parmonc-report, crash and recover with manaver,
resume, and verify the final numbers — one test class per act, sharing
one working directory through a module-scoped fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.apps.integration import make_realization, product_of_powers
from repro.cli.genparam import main as genparam_main
from repro.cli.manaver import manual_average
from repro.cli.report import render_report
from repro.cli.rngtest import certify
from repro.rng.multiplier import LeapSet
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.worker import run_worker

PROBLEM = product_of_powers((2,))  # integral of x^2 = 1/3
REALIZATION = make_realization(PROBLEM)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """Run the whole campaign once; tests assert on its artefacts."""
    workdir = tmp_path_factory.mktemp("campaign")
    log: dict = {"workdir": workdir}

    # Act 0: certification (reduced size; the benches run it at scale).
    log["certified"], _ = certify(draws=20_000, substreams=12,
                                  workdir=workdir)

    # Act 1: custom hierarchy via genparam.
    genparam_main(["60", "40", "20", "--workdir", str(workdir)])

    # Act 2: session 1 on the sequential backend.
    log["run1"] = parmonc(REALIZATION, maxsv=300, processors=3,
                          workdir=workdir)

    # Act 3: session 2 on the multiprocess backend, resuming.
    log["run2"] = parmonc(REALIZATION, maxsv=300, res=1, seqnum=1,
                          processors=3, backend="multiprocess",
                          workdir=workdir)

    # Act 4: session 3 crashes mid-flight...
    config = RunConfig(maxsv=90, processors=3, res=1, seqnum=2,
                       workdir=workdir,
                       leaps=LeapSet(60, 40, 20))
    data, state = start_session(config)
    collector = Collector(config, state.base, data,
                          sessions=state.session_index)
    for rank in range(3):
        run_worker(REALIZATION, config, rank, 30,
                   send=lambda m: collector.receive(m, 0.0))
    # ...and manaver recovers it.
    log["recovery"] = manual_average(workdir)

    # Act 5: final resumed session on the simulated cluster.
    log["run3"] = parmonc(REALIZATION, maxsv=210, res=1, seqnum=3,
                          processors=3, backend="simcluster",
                          workdir=workdir)
    log["report"] = render_report(workdir)
    return log


class TestCampaign:
    def test_certification_passed(self, campaign):
        assert campaign["certified"]

    def test_genparam_hierarchy_was_used(self, campaign):
        # The custom hierarchy (2^60/2^40/2^20) was in force for every
        # session: the config carried it.
        assert campaign["run1"].config.leaps.experiment_exponent == 60
        assert campaign["run3"].config.leaps.realization_exponent == 20

    def test_volumes_accumulate_across_everything(self, campaign):
        assert campaign["run1"].total_volume == 300
        assert campaign["run2"].total_volume == 600
        assert campaign["recovery"]["volume"] == 690
        assert campaign["run3"].total_volume == 900

    def test_sessions_counted(self, campaign):
        assert campaign["run1"].sessions == 1
        assert campaign["run2"].sessions == 2
        assert campaign["run3"].sessions == 4  # crash session counted

    def test_final_estimate_is_correct(self, campaign):
        estimates = campaign["run3"].estimates
        assert abs(estimates.mean[0, 0] - 1.0 / 3.0) \
            <= 3 * estimates.abs_error[0, 0] + 1e-9

    def test_final_estimate_matches_manual_union(self, campaign):
        # Rebuild the union of all four sessions' streams by hand under
        # the custom hierarchy and require exact agreement.
        from repro.rng.streams import StreamTree
        from repro.stats.accumulator import MomentAccumulator
        tree = StreamTree(LeapSet(60, 40, 20))
        reference = MomentAccumulator(1, 1)
        for seqnum, per_rank in ((0, 100), (1, 100), (2, 30), (3, 70)):
            for rank in range(3):
                for index in range(per_rank):
                    reference.add(REALIZATION(tree.rng(seqnum, rank,
                                                       index)))
        assert campaign["run3"].estimates.mean[0, 0] == pytest.approx(
            reference.estimates().mean[0, 0], rel=1e-12)

    def test_report_reflects_final_state(self, campaign):
        report = campaign["report"]
        assert "total_sample_volume" in report
        assert "900" in report
        assert "resumable: yes" in report
        assert "next free seqnum is 4" in report

    def test_registry_has_every_session(self, campaign):
        registry = DataDirectory(campaign["workdir"]).read_registry()
        assert len(registry) == 4  # crash session registered too

    def test_result_files_consistent_with_returned_estimates(self,
                                                             campaign):
        stored = DataDirectory(campaign["workdir"]).read_mean_matrix()
        assert np.allclose(stored,
                           campaign["run3"].estimates.mean, rtol=1e-12)
