"""Tests for the sequential, multiprocess and simcluster backends.

The headline property: all three backends produce *bit-identical*
estimates for the same configuration, because estimates depend only on
the stream hierarchy, never on scheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.simulation import ClusterSpec
from repro.cluster.machine import DurationModel
from repro.exceptions import BackendError
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.multiprocess import run_multiprocess
from repro.runtime.sequential import run_sequential
from repro.runtime.simcluster import run_simcluster
from repro.stats.accumulator import MomentAccumulator


def square(rng):
    return rng.random() ** 2


def _crash(rng):
    raise SystemExit(3)


class TestSequential:
    def test_estimates_match_direct_accumulation(self, tmp_path):
        config = RunConfig(maxsv=100, processors=4, workdir=tmp_path)
        result = run_sequential(square, config)
        # Recompute by hand from the stream hierarchy.
        from repro.rng.streams import StreamTree
        tree = StreamTree()
        accumulator = MomentAccumulator(1, 1)
        for rank in range(4):
            for index in range(config.worker_quota(rank)):
                accumulator.add(square(tree.rng(0, rank, index)))
        assert result.estimates.mean[0, 0] == pytest.approx(
            accumulator.estimates().mean[0, 0], rel=1e-15)
        assert result.total_volume == 100

    def test_result_files_written(self, tmp_path):
        config = RunConfig(maxsv=50, processors=2, workdir=tmp_path)
        result = run_sequential(square, config)
        data = DataDirectory(tmp_path)
        assert data.read_mean_matrix().shape == (1, 1)
        log = data.read_log()
        assert log["total_sample_volume"] == "50"
        assert result.data_dir == data.root

    def test_in_memory_run(self, tmp_path):
        config = RunConfig(maxsv=50, processors=2, workdir=tmp_path)
        result = run_sequential(square, config, use_files=False)
        assert result.data_dir is None
        assert not (tmp_path / "parmonc_data").exists()

    def test_processor_count_does_not_change_total(self, tmp_path):
        results = [
            run_sequential(square,
                           RunConfig(maxsv=60, processors=m,
                                     workdir=tmp_path / str(m)))
            for m in (1, 2, 3, 5)]
        volumes = {r.total_volume for r in results}
        assert volumes == {60}

    def test_resume_matches_monolithic_run(self, tmp_path):
        # Two 50-realization sessions with seqnums 0 and 1 must merge to
        # exactly the union of the two experiment samples.
        config1 = RunConfig(maxsv=50, processors=2,
                            workdir=tmp_path / "split")
        run_sequential(square, config1)
        config2 = config1.with_updates(res=1, seqnum=1)
        resumed = run_sequential(square, config2)
        assert resumed.total_volume == 100
        assert resumed.sessions == 2
        # Monolithic reference: same realizations, summed by hand.
        from repro.rng.streams import StreamTree
        tree = StreamTree()
        accumulator = MomentAccumulator(1, 1)
        for seqnum in (0, 1):
            for rank in range(2):
                for index in range(25):
                    accumulator.add(square(tree.rng(seqnum, rank, index)))
        assert resumed.estimates.mean[0, 0] == pytest.approx(
            accumulator.estimates().mean[0, 0], rel=1e-12)

    def test_per_rank_volumes(self, tmp_path):
        config = RunConfig(maxsv=10, processors=4, workdir=tmp_path)
        result = run_sequential(square, config)
        assert result.per_rank_volumes == {0: 3, 1: 3, 2: 2, 3: 2}

    def test_time_limit_caps_run(self, tmp_path):
        import time

        def slow(rng):
            time.sleep(0.02)
            return 1.0

        config = RunConfig(maxsv=10_000, processors=2, workdir=tmp_path,
                           time_limit=0.3)
        result = run_sequential(slow, config)
        assert 0 < result.total_volume < 10_000


class TestMultiprocess:
    def test_matches_sequential_bit_for_bit(self, tmp_path):
        config = RunConfig(maxsv=60, processors=3, workdir=tmp_path / "a")
        sequential = run_sequential(square, config)
        parallel = run_multiprocess(
            square, config.with_updates(workdir=tmp_path / "b"))
        assert np.array_equal(sequential.estimates.mean,
                              parallel.estimates.mean)
        assert np.array_equal(sequential.estimates.variance,
                              parallel.estimates.variance)
        assert parallel.total_volume == 60

    def test_worker_crash_raises_backend_error(self, tmp_path):
        config = RunConfig(maxsv=4, processors=2, workdir=tmp_path)
        with pytest.raises(BackendError):
            run_multiprocess(_crash, config)

    def test_result_files(self, tmp_path):
        config = RunConfig(maxsv=20, processors=2, workdir=tmp_path)
        run_multiprocess(square, config)
        assert DataDirectory(tmp_path).read_log()[
            "total_sample_volume"] == "20"


class TestSimclusterBackend:
    def test_matches_sequential_estimates(self, tmp_path):
        config = RunConfig(maxsv=40, processors=4, workdir=tmp_path / "a")
        sequential = run_sequential(square, config)
        simulated = run_simcluster(
            square, config.with_updates(workdir=tmp_path / "b"),
            spec=ClusterSpec(duration_model=DurationModel(mean=1.0)))
        assert np.array_equal(sequential.estimates.mean,
                              simulated.estimates.mean)
        assert simulated.virtual_time is not None

    def test_virtual_time_scales_with_processors(self, tmp_path):
        spec = ClusterSpec(duration_model=DurationModel(mean=2.0))
        times = {}
        for m in (1, 4):
            result = run_simcluster(
                square,
                RunConfig(maxsv=40, processors=m,
                          workdir=tmp_path / str(m)),
                spec=spec)
            times[m] = result.virtual_time
        assert times[1] == pytest.approx(4 * times[4], rel=0.05)

    def test_accounting_only_mode(self, tmp_path):
        result = run_simcluster(
            None, RunConfig(maxsv=100, processors=8, workdir=tmp_path),
            execute_realizations=False)
        assert result.estimates is None or result.estimates.volume == 100
        assert result.session_volume == 100
        assert result.virtual_time > 0

    def test_resume_on_simcluster(self, tmp_path):
        config = RunConfig(maxsv=30, processors=3, workdir=tmp_path)
        spec = ClusterSpec(duration_model=DurationModel(mean=1.0))
        run_simcluster(square, config, spec=spec)
        resumed = run_simcluster(
            square, config.with_updates(res=1, seqnum=1), spec=spec)
        assert resumed.total_volume == 60
        assert resumed.sessions == 2
