"""Tests for repro.runtime.resume: §3.2 semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ResumeError, SupersededSampleWarning
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.resume import finalize_session, prepare_resume
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot


def saved_session(tmp_path, *, volume=5, shape=(1, 1), seqnums=(0,),
                  sessions=1):
    data = DataDirectory(tmp_path)
    accumulator = MomentAccumulator(*shape)
    for i in range(volume):
        accumulator.add(np.full(shape, float(i)))
    data.save_savepoint(accumulator.snapshot(), used_seqnums=seqnums,
                        sessions=sessions)
    return data


class TestFreshRun:
    def test_res0_starts_from_zero(self, tmp_path):
        config = RunConfig(maxsv=10, workdir=tmp_path)
        state = prepare_resume(config, DataDirectory(tmp_path))
        assert state.base.volume == 0
        assert state.session_index == 1
        assert state.used_seqnums == (0,)

    def test_res0_ignores_existing_savepoint(self, tmp_path):
        saved_session(tmp_path)
        config = RunConfig(maxsv=10, res=0, workdir=tmp_path)
        with pytest.warns(SupersededSampleWarning):
            state = prepare_resume(config, DataDirectory(tmp_path))
        assert state.base.volume == 0

    def test_res0_carries_burnt_seqnums_forward(self, tmp_path):
        # Regression: a fresh res=0 session used to drop the previous
        # sample's seqnum history, letting a later res=1 session reuse
        # a burnt experiments subsequence and correlate substreams.
        saved_session(tmp_path, seqnums=(0, 3))
        config = RunConfig(maxsv=10, res=0, seqnum=1, workdir=tmp_path)
        with pytest.warns(SupersededSampleWarning):
            state = prepare_resume(config, DataDirectory(tmp_path))
        assert state.used_seqnums == (0, 1, 3)
        assert state.session_index == 1


class TestResumedRun:
    def test_res1_loads_previous_moments(self, tmp_path):
        data = saved_session(tmp_path, volume=7)
        config = RunConfig(maxsv=10, res=1, seqnum=1, workdir=tmp_path)
        state = prepare_resume(config, data)
        assert state.base.volume == 7
        assert state.session_index == 2
        assert state.used_seqnums == (0, 1)

    def test_res1_without_previous_simulation(self, tmp_path):
        config = RunConfig(maxsv=10, res=1, seqnum=1, workdir=tmp_path)
        with pytest.raises(ResumeError):
            prepare_resume(config, DataDirectory(tmp_path))

    def test_res1_rejects_reused_seqnum(self, tmp_path):
        # §3.2: "this argument must be different from the same argument
        # of the previous use".
        data = saved_session(tmp_path, seqnums=(0, 2))
        config = RunConfig(maxsv=10, res=1, seqnum=2, workdir=tmp_path)
        with pytest.raises(ResumeError, match="seqnum 2"):
            prepare_resume(config, data)

    def test_res1_rejects_shape_change(self, tmp_path):
        data = saved_session(tmp_path, shape=(2, 2))
        config = RunConfig(maxsv=10, res=1, seqnum=1, nrow=3, ncol=3,
                           workdir=tmp_path)
        with pytest.raises(ResumeError, match="shape"):
            prepare_resume(config, data)

    def test_res1_rejects_changed_leap_parameters(self, tmp_path):
        # A resumed session running on a different subsequence hierarchy
        # would place its "fresh" substreams on top of consumed ones.
        from repro.rng.multiplier import LeapSet
        from repro.runtime.resume import build_manifest
        old_config = RunConfig(maxsv=10, workdir=tmp_path,
                               leaps=LeapSet(110, 90, 40))
        data = DataDirectory(tmp_path)
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(1.0)
        data.save_savepoint(accumulator.snapshot(), used_seqnums=(0,),
                            sessions=1, manifest=build_manifest(old_config))
        config = RunConfig(maxsv=10, res=1, seqnum=1, workdir=tmp_path)
        with pytest.raises(ResumeError, match="leap"):
            prepare_resume(config, data)

    def test_res1_accepts_matching_leap_parameters(self, tmp_path):
        from repro.rng.multiplier import LeapSet
        from repro.runtime.resume import build_manifest
        leaps = LeapSet(110, 90, 40)
        old_config = RunConfig(maxsv=10, workdir=tmp_path, leaps=leaps)
        data = DataDirectory(tmp_path)
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(1.0)
        data.save_savepoint(accumulator.snapshot(), used_seqnums=(0,),
                            sessions=1, manifest=build_manifest(old_config))
        config = RunConfig(maxsv=10, res=1, seqnum=1, workdir=tmp_path,
                           leaps=leaps)
        state = prepare_resume(config, data)
        assert state.base.volume == 1

    def test_legacy_savepoint_without_manifest_still_resumes(self, tmp_path):
        # Pre-manifest save-points carry no leap record; tolerate them.
        data = saved_session(tmp_path)
        config = RunConfig(maxsv=10, res=1, seqnum=1, workdir=tmp_path)
        state = prepare_resume(config, data)
        assert state.base.volume == 5

    def test_multiple_sessions_accumulate_seqnums(self, tmp_path):
        data = saved_session(tmp_path, seqnums=(0, 1, 2), sessions=3)
        config = RunConfig(maxsv=10, res=1, seqnum=5, workdir=tmp_path)
        state = prepare_resume(config, data)
        assert state.session_index == 4
        assert state.used_seqnums == (0, 1, 2, 5)


class TestFinalize:
    def test_finalize_persists_merged_state(self, tmp_path):
        data = DataDirectory(tmp_path)
        config = RunConfig(maxsv=10, workdir=tmp_path)
        state = prepare_resume(config, data)
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(4.0)
        finalize_session(data, state, accumulator.snapshot())
        snapshot, meta = data.load_savepoint()
        assert snapshot.volume == 1
        assert meta.used_seqnums == (0,)
        assert meta.sessions == 1

    def test_finalize_shape_guard(self, tmp_path):
        data = DataDirectory(tmp_path)
        config = RunConfig(maxsv=10, workdir=tmp_path)
        state = prepare_resume(config, data)
        with pytest.raises(ResumeError):
            finalize_session(data, state, MomentSnapshot.zero(2, 2))

    def test_full_cycle_res0_then_res1(self, tmp_path):
        data = DataDirectory(tmp_path)
        # Session 1.
        config1 = RunConfig(maxsv=10, workdir=tmp_path)
        state1 = prepare_resume(config1, data)
        acc1 = MomentAccumulator(1, 1)
        acc1.add(1.0)
        acc1.add(3.0)
        finalize_session(data, state1, acc1.snapshot())
        # Session 2 resumes and folds in more realizations.
        config2 = RunConfig(maxsv=10, res=1, seqnum=1, workdir=tmp_path)
        state2 = prepare_resume(config2, data)
        acc2 = MomentAccumulator(1, 1)
        acc2.merge_snapshot(state2.base)
        acc2.add(5.0)
        finalize_session(data, state2, acc2.snapshot())
        snapshot, meta = data.load_savepoint()
        assert snapshot.volume == 3
        assert snapshot.estimates().mean[0, 0] == pytest.approx(3.0)
        assert meta.sessions == 2
