"""Tests for repro.runtime.config."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.rng.multiplier import LeapSet
from repro.runtime.config import RunConfig, minutes


class TestMinutes:
    def test_conversion(self):
        # The paper's example: perpass = 10, peraver = 20 (minutes).
        assert minutes(10) == 600.0
        assert minutes(20) == 1200.0

    def test_fractional(self):
        assert minutes(0.5) == 30.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            minutes(-1)


class TestValidation:
    def test_defaults_are_valid(self):
        config = RunConfig()
        assert config.shape == (1, 1)
        assert config.processors == 1

    def test_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            RunConfig(nrow=0)
        with pytest.raises(ConfigurationError):
            RunConfig(ncol=-1)

    def test_bad_maxsv(self):
        with pytest.raises(ConfigurationError):
            RunConfig(maxsv=0)

    def test_res_must_be_flag(self):
        with pytest.raises(ConfigurationError):
            RunConfig(res=2)

    def test_negative_seqnum(self):
        with pytest.raises(ConfigurationError):
            RunConfig(seqnum=-1)

    def test_negative_periods(self):
        with pytest.raises(ConfigurationError):
            RunConfig(perpass=-0.1)
        with pytest.raises(ConfigurationError):
            RunConfig(peraver=-0.1)

    def test_processors_bounds(self):
        with pytest.raises(ConfigurationError):
            RunConfig(processors=0)
        # The default hierarchy supports 2**17 processors.
        RunConfig(processors=2 ** 17)
        with pytest.raises(ConfigurationError):
            RunConfig(processors=2 ** 17 + 1)

    def test_seqnum_capacity(self):
        RunConfig(seqnum=2 ** 10 - 1)
        with pytest.raises(ConfigurationError):
            RunConfig(seqnum=2 ** 10)

    def test_custom_leaps_change_capacity(self):
        leaps = LeapSet(experiment_exponent=20, processor_exponent=12,
                        realization_exponent=6)
        with pytest.raises(ConfigurationError):
            RunConfig(processors=2 ** 8 + 1, leaps=leaps)

    def test_time_limit_positive(self):
        with pytest.raises(ConfigurationError):
            RunConfig(time_limit=0.0)
        assert RunConfig(time_limit=5.0).time_limit == 5.0

    def test_workdir_normalized_to_path(self):
        config = RunConfig(workdir="/tmp/somewhere")
        assert isinstance(config.workdir, Path)
        assert config.data_dir == Path("/tmp/somewhere/parmonc_data")


class TestQuotas:
    def test_even_split(self):
        config = RunConfig(maxsv=100, processors=4)
        assert [config.worker_quota(r) for r in range(4)] == [25] * 4

    def test_remainder_to_low_ranks(self):
        config = RunConfig(maxsv=10, processors=4)
        quotas = [config.worker_quota(r) for r in range(4)]
        assert quotas == [3, 3, 2, 2]
        assert sum(quotas) == 10

    def test_more_processors_than_work(self):
        config = RunConfig(maxsv=2, processors=5)
        quotas = [config.worker_quota(r) for r in range(5)]
        assert quotas == [1, 1, 0, 0, 0]

    def test_rank_bounds(self):
        config = RunConfig(maxsv=10, processors=2)
        with pytest.raises(ConfigurationError):
            config.worker_quota(2)
        with pytest.raises(ConfigurationError):
            config.worker_quota(-1)


class TestUpdates:
    def test_with_updates_returns_new_config(self):
        config = RunConfig(maxsv=10)
        updated = config.with_updates(maxsv=20, seqnum=3)
        assert updated.maxsv == 20
        assert updated.seqnum == 3
        assert config.maxsv == 10

    def test_with_updates_revalidates(self):
        config = RunConfig(maxsv=10)
        with pytest.raises(ConfigurationError):
            config.with_updates(maxsv=-1)

    def test_frozen(self):
        config = RunConfig()
        with pytest.raises(AttributeError):
            config.maxsv = 5
