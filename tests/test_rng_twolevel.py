"""Tests for two-level (second-order) substream testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rng.streams import StreamTree
from repro.rng.testing import (
    chi_square_uniformity,
    two_level_substream_test,
    two_level_test,
)
from repro.rng.vectorized import VectorLcg128


def chi64(sample):
    return chi_square_uniformity(sample, bins=64)


class TestTwoLevel:
    def test_passes_healthy_substreams(self):
        tree = StreamTree()
        samples = [VectorLcg128(tree.rng(0, p, 0)).uniforms(10_000)
                   for p in range(32)]
        result = two_level_test(samples, chi64)
        assert result.passed, result

    def test_rejects_globally_biased_streams(self):
        # Each stream carries a bias too small for any single
        # first-level test, but the p-values skew low collectively.
        tree = StreamTree()
        samples = [
            np.clip(VectorLcg128(tree.rng(0, p, 0)).uniforms(10_000)
                    ** 1.05, 0.0, 1.0)
            for p in range(64)]
        result = two_level_test(samples, chi64)
        assert not result.passed

    def test_rejects_duplicated_streams(self):
        # The same sample presented 32 times: identical p-values are a
        # blatant non-uniformity.
        sample = VectorLcg128(1).uniforms(10_000)
        result = two_level_test([sample] * 32, chi64)
        assert not result.passed

    def test_needs_enough_substreams(self):
        sample = VectorLcg128(1).uniforms(10_000)
        with pytest.raises(ConfigurationError):
            two_level_test([sample] * 5, chi64)

    def test_reports_p_value_range(self):
        tree = StreamTree()
        samples = [VectorLcg128(tree.rng(0, p, 0)).uniforms(5_000)
                   for p in range(16)]
        result = two_level_test(samples, chi64)
        assert 0.0 <= result.details["min_p"] \
            <= result.details["max_p"] <= 1.0
        assert result.details["substreams"] == 16


class TestSubstreamCertificate:
    def test_default_hierarchy_certified(self):
        result = two_level_substream_test(n_substreams=24,
                                          draws_per_stream=8_000)
        assert result.passed, result
        assert "processor substreams" in result.name

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            two_level_substream_test(n_substreams=4)
        with pytest.raises(ConfigurationError):
            two_level_substream_test(draws_per_stream=100)

    def test_custom_experiment(self):
        result = two_level_substream_test(experiment=3, n_substreams=16,
                                          draws_per_stream=5_000)
        assert result.passed
