"""Tests for the GPU/hybrid cluster extension (§5 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Accelerator,
    ClusterSpec,
    DurationModel,
    Processor,
    proportional_quotas,
)
from repro.exceptions import ConfigurationError
from repro.runtime.config import RunConfig
from repro.runtime.simcluster import run_simcluster


def simulate(maxsv, processors, *, accelerators=None, quotas=None,
             tau=1.0, routine=None, execute=False):
    spec = ClusterSpec(duration_model=DurationModel(mean=tau),
                       accelerators=accelerators)
    return run_simcluster(
        routine, RunConfig(maxsv=maxsv, processors=processors,
                           perpass=0.0, peraver=600.0),
        spec=spec, use_files=False,
        execute_realizations=execute, quotas=quotas)


class TestAccelerator:
    def test_chunk_duration_formula(self):
        gpu = Accelerator(batch=100, speedup=50.0, launch_overhead=0.5)
        assert gpu.chunk_duration(100, 10.0) == pytest.approx(
            0.5 + 100 * 10.0 / 50.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Accelerator(batch=0)
        with pytest.raises(ConfigurationError):
            Accelerator(speedup=0.0)
        with pytest.raises(ConfigurationError):
            Accelerator(launch_overhead=-1.0)
        with pytest.raises(ConfigurationError):
            Accelerator().chunk_duration(0, 1.0)

    def test_processor_batch_property(self):
        assert Processor(0).batch == 1
        assert Processor(0, accelerator=Accelerator(batch=32)).batch == 32

    def test_cpu_node_rejects_multi_chunk(self):
        import numpy.random as npr
        with pytest.raises(ConfigurationError):
            Processor(0).chunk_duration(2, DurationModel(mean=1.0),
                                        npr.default_rng(0))


class TestProportionalQuotas:
    def test_exact_total_and_proportion(self):
        quotas = proportional_quotas(120, (2.0, 1.0, 1.0, 0.5))
        assert sum(quotas) == 120
        assert quotas == [53, 27, 27, 13] or quotas[0] > quotas[3]

    def test_largest_remainder_rounds_fairly(self):
        quotas = proportional_quotas(10, (1.0, 1.0, 1.0))
        assert sum(quotas) == 10
        assert sorted(quotas) == [3, 3, 4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            proportional_quotas(-1, (1.0,))
        with pytest.raises(ConfigurationError):
            proportional_quotas(10, ())
        with pytest.raises(ConfigurationError):
            proportional_quotas(10, (1.0, 0.0))


class TestHybridSimulation:
    def test_gpu_node_faster_than_cpu_node(self):
        cpu = simulate(256, 1, tau=1.0)
        gpu = simulate(256, 1, tau=1.0,
                       accelerators=(Accelerator(batch=64, speedup=50.0,
                                                 launch_overhead=1e-3),))
        assert gpu.virtual_time < cpu.virtual_time / 20

    def test_batching_tradeoff(self):
        # Tiny batches drown in launch overhead.
        small = simulate(256, 1, tau=1.0,
                         accelerators=(Accelerator(batch=1, speedup=50.0,
                                                   launch_overhead=1.0),))
        big = simulate(256, 1, tau=1.0,
                       accelerators=(Accelerator(batch=256, speedup=50.0,
                                                 launch_overhead=1.0),))
        assert big.virtual_time < small.virtual_time / 10

    def test_hybrid_needs_proportional_dealing(self):
        accelerators = (Accelerator(batch=64, speedup=50.0), None)
        even = simulate(512, 2, tau=1.0, accelerators=accelerators)
        weighted = simulate(
            512, 2, tau=1.0, accelerators=accelerators,
            quotas=proportional_quotas(512, (50.0, 1.0)))
        # Even dealing bottlenecks on the CPU node; proportional dealing
        # approaches the combined-throughput ideal.
        assert weighted.virtual_time < even.virtual_time / 5

    def test_estimates_unaffected_by_hardware(self):
        def routine(rng):
            return rng.random()
        cpu = simulate(128, 2, tau=1.0, routine=routine, execute=True)
        gpu = simulate(128, 2, tau=1.0, routine=routine, execute=True,
                       accelerators=(Accelerator(batch=16),
                                     Accelerator(batch=16)))
        assert np.array_equal(cpu.estimates.mean, gpu.estimates.mean)

    def test_quota_override_shapes_volumes(self):
        result = simulate(100, 3, quotas=[70, 20, 10])
        assert result.per_rank_volumes == {0: 70, 1: 20, 2: 10}

    def test_quota_validation(self):
        with pytest.raises(ConfigurationError):
            simulate(100, 2, quotas=[50, 49])
        with pytest.raises(ConfigurationError):
            simulate(100, 2, quotas=[100])

    def test_accelerator_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            simulate(10, 2, accelerators=(Accelerator(),))

    def test_gpu_messages_per_batch(self):
        # perpass=0 on a GPU node means one pass per *batch*, not per
        # realization — the natural GPU port semantics.
        result = simulate(256, 1, tau=1.0,
                          accelerators=(Accelerator(batch=64),))
        assert result.messages_received == 256 // 64 + 1
