"""Tests for dynamic self-scheduling on the simulated cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DurationModel
from repro.exceptions import ConfigurationError
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.simcluster import run_simcluster
from repro.cluster.simulation import ClusterSimulation
from repro.stats.accumulator import MomentSnapshot


def run_dynamic(maxsv, processors, *, speed_factors=None, tau=1.0,
                routine=None, execute=False, scheduling="dynamic"):
    spec = ClusterSpec(duration_model=DurationModel(mean=tau),
                       speed_factors=speed_factors)
    return run_simcluster(
        routine, RunConfig(maxsv=maxsv, processors=processors,
                           perpass=0.0, peraver=600.0),
        spec=spec, use_files=False, execute_realizations=execute,
        scheduling=scheduling)


class TestDynamicScheduling:
    def test_exact_total_volume(self):
        result = run_dynamic(97, 4)
        assert result.session_volume == 97

    def test_fast_nodes_take_more_work(self):
        result = run_dynamic(100, 2, speed_factors=(4.0, 1.0))
        assert result.per_rank_volumes[0] == pytest.approx(80, abs=3)
        assert result.per_rank_volumes[1] == pytest.approx(20, abs=3)

    def test_makespan_matches_combined_throughput(self):
        # 100 realizations over throughput 4+1 per second => ~20 s.
        result = run_dynamic(100, 2, speed_factors=(4.0, 1.0))
        assert result.virtual_time == pytest.approx(20.0, rel=0.05)

    def test_beats_static_dealing_on_heterogeneous_cluster(self):
        static = run_dynamic(100, 2, speed_factors=(4.0, 1.0),
                             scheduling="static")
        dynamic = run_dynamic(100, 2, speed_factors=(4.0, 1.0))
        # Static even split bottlenecks on the slow node (50 s).
        assert static.virtual_time == pytest.approx(50.0, rel=0.05)
        assert dynamic.virtual_time < 0.5 * static.virtual_time

    def test_homogeneous_cluster_splits_evenly(self):
        result = run_dynamic(100, 4)
        volumes = list(result.per_rank_volumes.values())
        assert max(volumes) - min(volumes) <= 1

    def test_estimates_are_genuine_with_execution(self):
        result = run_dynamic(200, 2, speed_factors=(3.0, 1.0),
                             routine=lambda rng: rng.random(),
                             execute=True)
        assert result.estimates.volume == 200
        assert 0.4 < result.estimates.mean[0, 0] < 0.6

    def test_stochastic_durations_still_exact_volume(self):
        spec = ClusterSpec(duration_model=DurationModel(
            mean=1.0, distribution="exponential"), seed=5)
        result = run_simcluster(
            None, RunConfig(maxsv=150, processors=3, perpass=0.0,
                            peraver=600.0),
            spec=spec, use_files=False, execute_realizations=False,
            scheduling="dynamic")
        assert result.session_volume == 150

    def test_invalid_scheduling_rejected(self):
        config = RunConfig(maxsv=10, processors=1)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        with pytest.raises(ConfigurationError):
            ClusterSimulation(config, ClusterSpec(), collector,
                              scheduling="magic")

    def test_dynamic_with_quotas_rejected(self):
        config = RunConfig(maxsv=10, processors=2)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        with pytest.raises(ConfigurationError):
            ClusterSimulation(config, ClusterSpec(), collector,
                              quotas=[5, 5], scheduling="dynamic")

    def test_dynamic_streams_stay_disjoint(self):
        # Every rank uses its own realization substream indices, so two
        # dynamic runs with different speed splits still draw each
        # realization from a well-defined stream: rerunning is exact.
        first = run_dynamic(120, 2, speed_factors=(2.0, 1.0),
                            routine=lambda rng: rng.random(),
                            execute=True)
        second = run_dynamic(120, 2, speed_factors=(2.0, 1.0),
                             routine=lambda rng: rng.random(),
                             execute=True)
        assert np.array_equal(first.estimates.mean, second.estimates.mean)
