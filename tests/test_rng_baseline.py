"""Tests for repro.rng.baseline: the comparator generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rng.baseline import MiddleSquare, MinStd, SmallLcg, legacy40, lcg64


class TestSmallLcg:
    def test_recurrence(self):
        gen = SmallLcg(16, 5, state=1)
        assert gen.next_raw() == 5
        assert gen.next_raw() == 25

    def test_period_formula(self):
        assert SmallLcg(40, 5).period == 2 ** 38
        assert SmallLcg(16, 5).period == 2 ** 14

    def test_actual_orbit_length_small_case(self):
        # For r=10, A=5**17 the orbit of 1 must have length 2**8.
        gen = SmallLcg(10, pow(5, 17, 1 << 10))
        start = gen.state
        steps = 0
        while True:
            gen.next_raw()
            steps += 1
            if gen.state == start:
                break
            assert steps <= 1 << 9, "orbit longer than the group allows"
        assert steps == 1 << 8

    def test_wrap_detection(self):
        gen = SmallLcg(6, 5)  # period 16
        assert not gen.wrapped
        gen.block(16)
        assert gen.wrapped

    def test_output_interval(self):
        gen = SmallLcg(16, pow(5, 17, 1 << 16))
        for value in gen.block(500):
            assert 0.0 < value < 1.0

    def test_jumped_matches_stepping(self):
        gen = SmallLcg(40, pow(5, 17, 1 << 40))
        stepped = SmallLcg(40, pow(5, 17, 1 << 40))
        for _ in range(57):
            stepped.next_raw()
        assert gen.jumped(57).state == stepped.state

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SmallLcg(2, 5)
        with pytest.raises(ConfigurationError):
            SmallLcg(16, 4)
        with pytest.raises(ConfigurationError):
            SmallLcg(16, 5, state=2)
        with pytest.raises(ConfigurationError):
            SmallLcg(16, 5).jumped(-1)


class TestPaperBaselines:
    def test_legacy40_parameters(self):
        # §2.2: "a well known RNG with special parameters r = 40 and
        # A = 5**17 ... period ... 2**38 ~ 2.75 * 10**11".
        gen = legacy40()
        assert gen.modulus_bits == 40
        assert gen.multiplier == pow(5, 17, 1 << 40)
        assert gen.period == 2 ** 38
        assert abs(gen.period - 2.75e11) / 2.75e11 < 0.001

    def test_lcg64_parameters(self):
        gen = lcg64()
        assert gen.modulus_bits == 64
        assert gen.period == 2 ** 62

    def test_baselines_deterministic(self):
        assert np.array_equal(legacy40().block(64), legacy40().block(64))


class TestMinStd:
    def test_known_sequence(self):
        gen = MinStd(1)
        assert gen.next_raw() == 16807
        assert gen.next_raw() == 282475249

    def test_period_value(self):
        assert MinStd().period == 2 ** 31 - 2

    def test_zero_state_rejected(self):
        with pytest.raises(ConfigurationError):
            MinStd(0)

    def test_output_interval(self):
        for value in MinStd(42).block(500):
            assert 0.0 < value < 1.0


class TestMiddleSquare:
    def test_recurrence(self):
        gen = MiddleSquare(state=1234, digits=4)
        # 1234**2 = 1522756 -> middle four digits of 01522756 -> 5227.
        assert gen.next_raw() == 5227

    def test_degenerates_to_cycle(self):
        # The classic failure: the sequence collapses (often to 0 or a
        # short cycle) well within a few thousand steps.
        gen = MiddleSquare()
        seen = set()
        collapsed = False
        for _ in range(10_000):
            state = gen.next_raw()
            if state in seen:
                collapsed = True
                break
            seen.add(state)
        assert collapsed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MiddleSquare(digits=5)
        with pytest.raises(ConfigurationError):
            MiddleSquare(state=10 ** 7, digits=6)
