"""Tests for the birthday-spacings, collision and maximum-of-t tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rng.testing import (
    birthday_spacings_test,
    collision_test,
    maximum_of_t_test,
    run_battery,
)
from repro.rng.vectorized import VectorLcg128


class TestBirthdaySpacings:
    def test_passes_good_sample(self, uniform_sample):
        result = birthday_spacings_test(uniform_sample, n_days=2 ** 41)
        assert result.passed

    def test_rejects_coarse_granularity(self):
        # Values quantized to 10 bits: far too many duplicate spacings.
        quantized = np.floor(
            VectorLcg128(1).uniforms(100_000) * 1024) / 1024
        result = birthday_spacings_test(quantized, n_days=2 ** 41)
        assert not result.passed

    def test_lambda_regime_guard(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            birthday_spacings_test(uniform_sample, n_days=2 ** 60)

    def test_small_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            birthday_spacings_test(np.full(50, 0.5))

    def test_n_days_smaller_than_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            birthday_spacings_test(np.linspace(0.01, 0.99, 1000),
                                   n_days=100)


class TestCollision:
    def test_passes_good_sample(self, uniform_sample):
        result = collision_test(uniform_sample, n_urns=2 ** 21)
        assert result.passed

    def test_rejects_clustered_sample(self, uniform_sample):
        clustered = uniform_sample * 0.01  # everything in 1% of space
        result = collision_test(clustered, n_urns=2 ** 21)
        assert not result.passed
        assert result.details["collisions"] \
            > result.details["expected_collisions"] * 10

    def test_rejects_too_spread_sample(self):
        # Perfectly equidistributed values produce *zero* collisions,
        # which is just as suspicious.
        perfect = (np.arange(100_000) + 0.5) / 100_000
        result = collision_test(perfect, n_urns=2 ** 21)
        assert not result.passed

    def test_dense_regime_rejected(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            collision_test(uniform_sample, n_urns=2 ** 10)

    def test_small_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            collision_test(np.full(100, 0.5))


class TestMaximumOfT:
    def test_passes_good_sample(self, uniform_sample):
        assert maximum_of_t_test(uniform_sample, t=8).passed

    def test_rejects_truncated_upper_tail(self, uniform_sample):
        # A generator that never emits values above 0.95 fails the
        # maximum test long before the marginal chi-square notices.
        truncated = uniform_sample * 0.95
        assert not maximum_of_t_test(truncated, t=8).passed

    def test_t_validation(self, uniform_sample):
        with pytest.raises(ConfigurationError):
            maximum_of_t_test(uniform_sample, t=1)

    def test_small_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            maximum_of_t_test(np.full(100, 0.5), t=8, bins=32)


class TestExtendedBattery:
    def test_battery_includes_new_tests(self, uniform_sample):
        report = run_battery(uniform_sample, "rnd128")
        names = {result.name.split(" (")[0] for result in report.results}
        assert "birthday spacings" in names
        assert "collision test" in names
        assert "maximum-of-t" in names
        assert report.all_passed, report.render()

    def test_battery_adapts_spaces_to_sample_size(self):
        # A 20k sample must not trip the regime guards.
        small = VectorLcg128(1).uniforms(20_000)
        report = run_battery(small, "small",
                             tests=["birthday", "collision"])
        assert len(report.results) == 2
