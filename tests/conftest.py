"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import LeapSet
from repro.rng.streams import StreamTree


@pytest.fixture
def rng() -> Lcg128:
    """A fresh generator at the head of the general sequence."""
    return Lcg128()


@pytest.fixture
def tree() -> StreamTree:
    """A stream tree with the PARMONC default hierarchy."""
    return StreamTree()


@pytest.fixture
def small_leaps() -> LeapSet:
    """A tiny hierarchy useful for overlap/capacity experiments.

    n_e = 2**20, n_p = 2**12, n_r = 2**6: capacities 2**105
    experiments, 2**8 processors, 2**6 realizations, with realization
    subsequences only 64 draws long — small enough to actually walk.
    """
    return LeapSet(experiment_exponent=20, processor_exponent=12,
                   realization_exponent=6)


@pytest.fixture
def uniform_sample() -> np.ndarray:
    """100k uniforms from the reference generator (module-scope cache)."""
    return _UNIFORM_SAMPLE


def _make_sample() -> np.ndarray:
    from repro.rng.vectorized import VectorLcg128
    return VectorLcg128(1).uniforms(100_000)


_UNIFORM_SAMPLE = _make_sample()
