"""Combined cluster-model features: the interactions must compose."""

from __future__ import annotations


from repro.cluster import (
    Accelerator,
    ClusterSpec,
    DurationModel,
    proportional_quotas,
)
from repro.cluster.simulation import ClusterSimulation
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.stats.accumulator import MomentSnapshot


def simulate(config_kwargs, spec_kwargs, **sim_kwargs):
    config = RunConfig(**{"perpass": 0.0, "peraver": 3600.0,
                          **config_kwargs})
    spec_kwargs.setdefault("duration_model", DurationModel(mean=1.0))
    spec = ClusterSpec(**spec_kwargs)
    collector = Collector(config, MomentSnapshot.zero(config.nrow,
                                                      config.ncol),
                          None)
    simulation = ClusterSimulation(config, spec, collector, **sim_kwargs)
    return simulation.run(), collector


class TestFeatureCombinations:
    def test_failure_plus_heterogeneous_speeds(self):
        result, collector = simulate(
            {"maxsv": 60, "processors": 3},
            {"speed_factors": (2.0, 1.0, 1.0),
             "failures": {1: 5.5}})
        assert result.failed_ranks == (1,)
        # The fast node and the surviving slow node complete.
        assert result.per_rank_volumes[0] == 20
        assert result.per_rank_volumes[2] == 20
        assert collector.worker_volume(1) <= 6

    def test_failure_of_gpu_node(self):
        # Rank 0 is the collector and cannot fail; put the GPU on
        # rank 1 and kill it mid-run.
        gpu = Accelerator(batch=8, speedup=10.0)
        result, collector = simulate(
            {"maxsv": 64, "processors": 2},
            {"accelerators": (None, gpu), "failures": {1: 1.5}})
        # The GPU node dies early; its delivered volume is a multiple
        # of the batch width (whole batches only).
        assert collector.worker_volume(1) % 8 == 0
        assert result.per_rank_volumes[0] == 32

    def test_dynamic_scheduling_with_accelerator(self):
        gpu = Accelerator(batch=16, speedup=20.0)
        result, _ = simulate(
            {"maxsv": 200, "processors": 2},
            {"accelerators": (gpu, None)},
            scheduling="dynamic")
        assert result.total_volume == 200
        # The GPU node grabs the lion's share.
        assert result.per_rank_volumes[0] > 4 * result.per_rank_volumes[1]

    def test_time_limit_with_proportional_quotas(self):
        result, _ = simulate(
            {"maxsv": 100, "processors": 2, "time_limit": 10.0},
            {"speed_factors": (3.0, 1.0)},
            quotas=proportional_quotas(100, (3.0, 1.0)))
        # The limit binds before the quotas complete.
        assert result.total_volume < 100
        assert result.per_rank_volumes[0] > result.per_rank_volumes[1]

    def test_failures_with_stochastic_durations_reproducible(self):
        kwargs = ({"maxsv": 60, "processors": 3},
                  {"duration_model": DurationModel(
                      mean=1.0, distribution="exponential"),
                   "failures": {2: 3.5}, "seed": 11})
        first, _ = simulate(*kwargs)
        second, _ = simulate(*kwargs)
        assert first.t_comp == second.t_comp
        assert first.lost_realizations == second.lost_realizations

    def test_executed_routine_with_failures_keeps_stream_purity(self):
        def routine(rng):
            return rng.random()

        _, collector_a = simulate(
            {"maxsv": 60, "processors": 3},
            {"failures": {2: 5.5}}, routine=routine)
        _, collector_b = simulate(
            {"maxsv": 60, "processors": 3},
            {"failures": {2: 5.5}}, routine=routine)
        import numpy as np
        assert np.array_equal(collector_a.estimates().mean,
                              collector_b.estimates().mean)
