"""Tests for repro.rng.distributions."""

from __future__ import annotations


import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rng.distributions import (
    bernoulli,
    discrete,
    exponential,
    exponentials_from_uniforms,
    normal,
    normal_pair,
    normals_from_uniforms,
    poisson,
    uniform,
)
from repro.rng.lcg128 import Lcg128
from repro.rng.vectorized import VectorLcg128


def sample(fn, n=20_000, seed_stream=0):
    gen = Lcg128().jumped(seed_stream * (1 << 43))
    return np.array([fn(gen) for _ in range(n)])


class TestUniform:
    def test_range(self, rng):
        for _ in range(100):
            assert 2.0 <= uniform(rng, 2.0, 5.0) < 5.0

    def test_mean(self):
        values = sample(lambda g: uniform(g, -1.0, 3.0))
        assert abs(values.mean() - 1.0) < 0.05

    def test_bad_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            uniform(rng, 1.0, 1.0)


class TestNormal:
    def test_pair_moments(self):
        values = sample(lambda g: normal_pair(g)[0], n=10_000)
        assert abs(values.mean()) < 0.05
        assert abs(values.std() - 1.0) < 0.05

    def test_pair_components_uncorrelated(self):
        gen = Lcg128()
        pairs = np.array([normal_pair(gen) for _ in range(10_000)])
        correlation = np.corrcoef(pairs[:, 0], pairs[:, 1])[0, 1]
        assert abs(correlation) < 0.05

    def test_location_scale(self):
        values = sample(lambda g: normal(g, mean=3.0, stddev=2.0),
                        n=10_000)
        assert abs(values.mean() - 3.0) < 0.1
        assert abs(values.std() - 2.0) < 0.1

    def test_consumes_exactly_two_uniforms(self, rng):
        before = rng.count
        normal(rng)
        assert rng.count - before == 2

    def test_negative_stddev_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            normal(rng, stddev=-1.0)


class TestExponential:
    def test_mean(self):
        values = sample(lambda g: exponential(g, rate=2.0))
        assert abs(values.mean() - 0.5) < 0.02

    def test_positive(self, rng):
        for _ in range(100):
            assert exponential(rng, 3.0) > 0.0

    def test_bad_rate(self, rng):
        with pytest.raises(ConfigurationError):
            exponential(rng, 0.0)


class TestBernoulliPoissonDiscrete:
    def test_bernoulli_frequency(self):
        values = sample(lambda g: float(bernoulli(g, 0.3)))
        assert abs(values.mean() - 0.3) < 0.02

    def test_bernoulli_extremes(self, rng):
        assert bernoulli(rng, 1.0) is True
        assert bernoulli(rng, 0.0) is False

    def test_bernoulli_validation(self, rng):
        with pytest.raises(ConfigurationError):
            bernoulli(rng, 1.5)

    def test_poisson_moments(self):
        values = sample(lambda g: float(poisson(g, 4.0)), n=10_000)
        assert abs(values.mean() - 4.0) < 0.15
        assert abs(values.var() - 4.0) < 0.4

    def test_poisson_zero_mean(self, rng):
        assert poisson(rng, 0.0) == 0

    def test_poisson_validation(self, rng):
        with pytest.raises(ConfigurationError):
            poisson(rng, -1.0)

    def test_discrete_frequencies(self):
        weights = [1.0, 2.0, 7.0]
        values = sample(lambda g: float(discrete(g, weights)))
        for index, weight in enumerate(weights):
            frequency = float(np.mean(values == index))
            assert abs(frequency - weight / 10.0) < 0.02

    def test_discrete_validation(self, rng):
        with pytest.raises(ConfigurationError):
            discrete(rng, [])
        with pytest.raises(ConfigurationError):
            discrete(rng, [-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            discrete(rng, [0.0, 0.0])

    def test_discrete_single_class(self, rng):
        assert discrete(rng, [5.0]) == 0


class TestVectorizedTransforms:
    def test_normals_match_scalar_convention(self):
        # Scalar normal() consumes (u1, u2) and returns the cosine
        # branch; the vectorized transform must agree draw for draw.
        scalar_gen = Lcg128()
        scalar_values = [normal(scalar_gen) for _ in range(100)]
        vector_gen = VectorLcg128(1)
        uniforms = vector_gen.uniforms(200)
        vector_values = normals_from_uniforms(uniforms[0::2], uniforms[1::2])
        assert np.allclose(scalar_values, vector_values, rtol=1e-12)

    def test_normals_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            normals_from_uniforms(np.ones(3) * 0.5, np.ones(4) * 0.5)

    def test_exponentials_match_scalar(self):
        scalar_gen = Lcg128()
        scalar_values = [exponential(scalar_gen, 2.0) for _ in range(50)]
        uniforms = VectorLcg128(1).uniforms(50)
        vector_values = exponentials_from_uniforms(uniforms, 2.0)
        assert np.allclose(scalar_values, vector_values, rtol=1e-12)

    def test_exponentials_bad_rate(self):
        with pytest.raises(ConfigurationError):
            exponentials_from_uniforms(np.array([0.5]), rate=-1.0)


class TestDeterminism:
    def test_same_stream_same_draws(self):
        a = [normal(Lcg128()) for _ in range(1)]
        b = [normal(Lcg128()) for _ in range(1)]
        assert a == b

    def test_transformations_are_pure(self):
        gen1 = Lcg128().jumped(12345)
        gen2 = Lcg128().jumped(12345)
        seq1 = [exponential(gen1), normal(gen1), float(poisson(gen1, 2.0))]
        seq2 = [exponential(gen2), normal(gen2), float(poisson(gen2, 2.0))]
        assert seq1 == seq2
