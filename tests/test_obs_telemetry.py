"""Tests for repro.obs.telemetry and repro.obs.render."""

from __future__ import annotations

import json

import pytest

from repro.cli.telemetry import main as telemetry_main
from repro.exceptions import ConfigurationError
from repro.obs.render import load_metrics, render_telemetry
from repro.obs.telemetry import RunTelemetry, WorkerTelemetry


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWorkerTelemetry:
    def test_counters_accumulate(self):
        clock = FakeClock()
        worker = WorkerTelemetry(3, clock=clock)
        worker.realization(0.5)
        worker.add_realizations(9, 4.5)
        worker.message(128, send_seconds=0.1)
        clock.advance(10.0)
        stats = worker.as_dict()
        assert stats["rank"] == 3
        assert stats["realizations"] == 10
        assert stats["messages"] == 1
        assert stats["bytes"] == 128
        assert stats["compute_seconds"] == pytest.approx(5.0)
        assert stats["send_seconds"] == pytest.approx(0.1)
        assert stats["wall_seconds"] == pytest.approx(10.0)

    def test_explicit_now_overrides_clock(self):
        clock = FakeClock(100.0)
        worker = WorkerTelemetry(0, clock=clock)
        assert worker.as_dict(now=103.0)["wall_seconds"] == pytest.approx(3.0)


class TestRunTelemetryRollup:
    def test_latest_wins_and_stale_rejected(self):
        telemetry = RunTelemetry(clock=FakeClock())
        telemetry.record_worker({"rank": 0, "realizations": 5,
                                 "messages": 1, "bytes": 10,
                                 "compute_seconds": 1.0,
                                 "send_seconds": 0.0, "wall_seconds": 2.0})
        telemetry.record_worker({"rank": 0, "realizations": 3,  # stale
                                 "messages": 1, "bytes": 10,
                                 "compute_seconds": 1.0,
                                 "send_seconds": 0.0, "wall_seconds": 2.0})
        assert telemetry.worker_stats()[0]["realizations"] == 5

    def test_derived_rates(self):
        telemetry = RunTelemetry(clock=FakeClock())
        telemetry.record_worker({"rank": 1, "realizations": 10,
                                 "messages": 2, "bytes": 100,
                                 "compute_seconds": 2.0,
                                 "send_seconds": 0.5, "wall_seconds": 4.0})
        stats = telemetry.worker_stats()[1]
        assert stats["idle_seconds"] == pytest.approx(1.5)
        assert stats["realizations_per_second"] == pytest.approx(2.5)
        assert stats["busy_fraction"] == pytest.approx(0.5)

    def test_rollup_sums_across_workers(self):
        telemetry = RunTelemetry(clock=FakeClock())
        for rank in range(3):
            telemetry.record_worker({"rank": rank, "realizations": 10,
                                     "messages": 2, "bytes": 50,
                                     "compute_seconds": 1.0,
                                     "send_seconds": 0.0,
                                     "wall_seconds": 2.0})
        rolled = telemetry.rollup()
        assert rolled["workers"] == 3
        assert rolled["realizations"] == 30
        assert rolled["bytes"] == 150


class TestFinalize:
    def make(self, tmp_path, clock=None):
        return RunTelemetry(clock=clock or FakeClock(),
                            directory=tmp_path / "telemetry")

    def test_writes_artifacts(self, tmp_path):
        clock = FakeClock()
        telemetry = self.make(tmp_path, clock)
        telemetry.events.append("session_start", backend="test")
        telemetry.tracer.record("worker.run", 0.0, 2.0, rank=0)
        telemetry.averaging_round(duration=0.01, volume=10, eps_max=0.1,
                                  save_index=1)
        summary = telemetry.finalize(elapsed=2.0, volume=10)
        assert summary["directory"] == str(tmp_path / "telemetry")
        payload = json.loads(
            (tmp_path / "telemetry" / "metrics.json").read_text())
        assert payload["metrics"]["gauges"]["run.volume"] == 10
        histogram = payload["metrics"]["histograms"][
            "collector.save_seconds"]
        assert histogram["count"] == 1
        kinds = [json.loads(line)["kind"] for line in
                 (tmp_path / "telemetry" / "events.jsonl")
                 .read_text().splitlines()]
        assert kinds.count("session_end") == 1
        assert "span" in kinds

    def test_span_events_keep_run_relative_timestamps(self, tmp_path):
        # The tracer already shifted span stamps onto the run axis;
        # exporting them as events must not shift them again.
        telemetry = RunTelemetry(clock=FakeClock(1000.0),
                                 directory=tmp_path / "t", epoch=1000.0)
        telemetry.tracer.record("w", 1001.0, 1002.0)
        telemetry.finalize(elapsed=2.0, volume=1)
        (span,) = (e for e in telemetry.events.events if e.kind == "span")
        assert span.ts == pytest.approx(1.0)
        assert span.fields["start"] == pytest.approx(1.0)
        assert span.fields["end"] == pytest.approx(2.0)

    def test_finalize_is_idempotent(self, tmp_path):
        telemetry = self.make(tmp_path)
        first = telemetry.finalize(elapsed=1.0, volume=5)
        second = telemetry.finalize(elapsed=1.0, volume=5)
        assert first == second
        assert len(telemetry.events.by_kind("session_end")) == 1

    def test_virtual_time_recorded(self, tmp_path):
        telemetry = self.make(tmp_path)
        telemetry.finalize(elapsed=0.5, volume=5, virtual_time=123.0)
        snapshot = telemetry.registry.snapshot()
        assert snapshot.gauges["run.virtual_seconds"] == 123.0

    def test_in_memory_telemetry_writes_nothing(self, tmp_path):
        telemetry = RunTelemetry(clock=FakeClock())
        summary = telemetry.finalize(elapsed=1.0, volume=0)
        assert summary["directory"] is None
        assert telemetry.metrics_path is None


class TestRender:
    def populated(self, tmp_path):
        telemetry = RunTelemetry(clock=FakeClock(),
                                 directory=tmp_path / "telemetry")
        telemetry.events.append("session_start", backend="test")
        telemetry.record_worker({"rank": 0, "realizations": 100,
                                 "messages": 4, "bytes": 512,
                                 "compute_seconds": 1.0,
                                 "send_seconds": 0.0, "wall_seconds": 2.0})
        telemetry.tracer.record("worker.run", 0.0, 2.0, rank=0)
        telemetry.averaging_round(duration=0.02, volume=100, eps_max=0.01,
                                  save_index=1)
        telemetry.finalize(elapsed=2.0, volume=100)
        return tmp_path / "telemetry"

    def test_render_mentions_the_load_bearing_figures(self, tmp_path):
        text = render_telemetry(self.populated(tmp_path))
        assert "run.volume" in text
        assert "per-worker stats" in text
        assert "collector.save_seconds" in text
        assert "worker.run" in text
        assert "session_end" in text

    def test_render_without_artifacts_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            render_telemetry(tmp_path / "empty")

    def test_load_metrics_rejects_missing_and_corrupt(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_metrics(tmp_path)
        (tmp_path / "metrics.json").write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_metrics(tmp_path)

    def test_cli_renders_a_run_directory(self, tmp_path, capsys):
        directory = self.populated(tmp_path / "parmonc_data")
        assert directory == tmp_path / "parmonc_data" / "telemetry"
        exit_code = telemetry_main(["--workdir", str(tmp_path)])
        assert exit_code == 0
        assert "per-worker stats" in capsys.readouterr().out

    def test_cli_exit_2_without_artifacts(self, tmp_path, capsys):
        (tmp_path / "parmonc_data").mkdir()
        assert telemetry_main(["--workdir", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err
