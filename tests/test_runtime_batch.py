"""Tests for the batched worker loop and its adapters.

A batched run must be indistinguishable from the scalar run in every
estimate — only faster.  These tests cover the protocol plumbing
(``batch_routine``, ``make_batched``, ``adapt_realization``), the
run_worker fast path's perpass/deadline/error semantics, batched-vs-
scalar equivalence across backends, and the ``parmonc(batch_size=...)``
entry point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.exceptions import ConfigurationError, RealizationError
from repro.obs.telemetry import WorkerTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.sequential import run_sequential
from repro.runtime.worker import (
    adapt_realization,
    batch_routine,
    make_batched,
    run_worker,
)

_BASE = np.linspace(0.0, 1.0, 6).reshape(3, 2)


def scalar_routine(rng):
    return _BASE * rng.random() + rng.random()


def make_batched_kernel(batch_size):
    @batch_routine(batch_size)
    def kernel(streams):
        uniforms = streams.uniforms(2)
        return (_BASE[np.newaxis] * uniforms[:, 0, np.newaxis, np.newaxis]
                + uniforms[:, 1, np.newaxis, np.newaxis])
    return kernel


def config(**overrides):
    defaults = dict(maxsv=100, nrow=3, ncol=2, perpass=0.0, seqnum=1)
    defaults.update(overrides)
    return RunConfig(**defaults)


def assert_identical(left, right):
    assert np.array_equal(left.estimates.mean, right.estimates.mean)
    assert np.array_equal(left.estimates.abs_error,
                          right.estimates.abs_error)
    assert left.total_volume == right.total_volume


class TestBatchRoutineDecorator:
    def test_sets_attribute(self):
        kernel = make_batched_kernel(16)
        assert kernel.batch_size == 16

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "8", True, None])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="batch_size"):
            batch_routine(bad)

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            batch_routine(4)(7)


class TestAdaptRealization:
    def test_batched_routine_passes_through(self):
        kernel = make_batched_kernel(8)
        assert adapt_realization(kernel) is kernel

    def test_invalid_attached_batch_size(self):
        def kernel(streams):
            return streams

        kernel.batch_size = -2
        with pytest.raises(ConfigurationError, match="batch_size"):
            adapt_realization(kernel)

    def test_batched_routine_with_wrong_arity(self):
        @batch_routine(4)
        def kernel(streams, extra):
            return streams

        with pytest.raises(ConfigurationError, match="exactly 1"):
            adapt_realization(kernel)


class TestMakeBatched:
    def test_equivalent_to_scalar_run(self):
        scalar = run_sequential(scalar_routine, config(), use_files=False)
        wrapped = make_batched(scalar_routine, 16)
        batched = run_sequential(wrapped, config(), use_files=False)
        assert_identical(scalar, batched)

    def test_rejects_already_batched(self):
        with pytest.raises(ConfigurationError, match="already batched"):
            make_batched(make_batched_kernel(4), 8)

    def test_wraps_zero_argument_routines(self):
        from repro.rng import rnd128

        def legacy():
            return _BASE * rnd128()

        scalar = run_sequential(legacy, config(), use_files=False)
        batched = run_sequential(make_batched(legacy, 8), config(),
                                 use_files=False)
        assert_identical(scalar, batched)


class TestBatchedWorkerLoop:
    @pytest.mark.parametrize("batch_size", [1, 7, 32, 100, 256])
    def test_identical_estimates_incl_partial_final_block(self,
                                                          batch_size):
        scalar = run_sequential(scalar_routine, config(), use_files=False)
        batched = run_sequential(make_batched_kernel(batch_size),
                                 config(), use_files=False)
        assert_identical(scalar, batched)

    def test_identical_across_processors(self):
        scalar = run_sequential(scalar_routine, config(processors=3),
                                use_files=False)
        batched = run_sequential(make_batched_kernel(16),
                                 config(processors=3), use_files=False)
        assert_identical(scalar, batched)

    def test_perpass_zero_ships_per_batch(self):
        messages = []
        run_worker(make_batched_kernel(16), config(maxsv=64), rank=0,
                   quota=64, send=messages.append)
        # 4 blocks of 16 -> 4 periodic passes plus the final one.
        assert len(messages) == 5
        assert messages[-1].final
        assert messages[-1].snapshot.volume == 64

    def test_large_perpass_ships_only_final(self):
        messages = []
        run_worker(make_batched_kernel(16), config(maxsv=64, perpass=1e9),
                   rank=0, quota=64, send=messages.append)
        assert len(messages) == 1
        assert messages[0].final

    def test_deadline_stops_between_blocks(self):
        ticks = iter(np.arange(0.0, 1000.0, 0.5))
        messages = []
        run_worker(make_batched_kernel(8), config(maxsv=80),
                   rank=0, quota=80, send=messages.append,
                   clock=lambda: next(ticks), deadline=3.0)
        final = messages[-1]
        assert final.final
        assert final.snapshot.volume < 80
        assert final.snapshot.volume % 8 == 0

    def test_telemetry_counts_batches(self):
        telemetry = WorkerTelemetry(0)
        run_worker(make_batched_kernel(32), config(maxsv=100), rank=0,
                   quota=100, send=lambda message: None,
                   telemetry=telemetry)
        stats = telemetry.as_dict(now=1.0)
        assert stats["realizations"] == 100
        assert stats["batches"] == 4
        assert stats["max_batch"] == 32

    def test_routine_error_wrapped(self):
        @batch_routine(8)
        def broken(streams):
            raise ValueError("kernel exploded")

        with pytest.raises(RealizationError, match="kernel exploded"):
            run_worker(broken, config(), rank=0, quota=16,
                       send=lambda message: None)

    def test_wrong_row_count_rejected(self):
        @batch_routine(8)
        def short(streams):
            return np.ones((3, 3, 2))

        with pytest.raises(RealizationError, match="block of 8"):
            run_worker(short, config(), rank=0, quota=16,
                       send=lambda message: None)

    def test_scalar_return_rejected(self):
        @batch_routine(8)
        def scalarish(streams):
            return 1.0

        with pytest.raises(RealizationError, match="a scalar"):
            run_worker(scalarish, config(), rank=0, quota=16,
                       send=lambda message: None)


class TestBackends:
    def test_simcluster_matches_sequential(self, tmp_path):
        common = dict(nrow=3, ncol=2, maxsv=120, seqnum=1, perpass=0.0,
                      processors=2, use_files=False,
                      workdir=tmp_path)
        scalar = parmonc(scalar_routine, backend="simcluster", **common)
        batched = parmonc(make_batched_kernel(16), backend="simcluster",
                          **common)
        assert_identical(scalar, batched)

    def test_multiprocess_matches_sequential(self, tmp_path):
        common = dict(nrow=3, ncol=2, maxsv=60, seqnum=1, perpass=0.0,
                      processors=2, use_files=False, workdir=tmp_path)
        scalar = parmonc(scalar_routine, backend="sequential", **common)
        batched = parmonc(make_batched_kernel(16), backend="multiprocess",
                          **common)
        assert_identical(scalar, batched)


class TestParmoncBatchSize:
    def test_batch_size_argument_wraps_scalar_routine(self, tmp_path):
        common = dict(nrow=3, ncol=2, maxsv=50, seqnum=1,
                      use_files=False, workdir=tmp_path)
        scalar = parmonc(scalar_routine, **common)
        batched = parmonc(scalar_routine, batch_size=16, **common)
        assert_identical(scalar, batched)

    def test_conflicts_with_batched_routine(self, tmp_path):
        with pytest.raises(ConfigurationError, match="batch_size"):
            parmonc(make_batched_kernel(8), nrow=3, ncol=2, maxsv=10,
                    batch_size=16, use_files=False, workdir=tmp_path)

    def test_batched_routine_direct(self, tmp_path):
        common = dict(nrow=3, ncol=2, maxsv=50, seqnum=1,
                      use_files=False, workdir=tmp_path)
        scalar = parmonc(scalar_routine, **common)
        batched = parmonc(make_batched_kernel(16), **common)
        assert_identical(scalar, batched)
