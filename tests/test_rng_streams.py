"""Tests for repro.rng.streams: the subsequence hierarchy of §2.4."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CapacityError, ConfigurationError
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import LeapSet
from repro.rng.streams import StreamCoordinates, StreamTree


class TestStreamCoordinates:
    def test_fields(self):
        coords = StreamCoordinates(1, 2, 3)
        assert (coords.experiment, coords.processor,
                coords.realization) == (1, 2, 3)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamCoordinates(-1, 0, 0)

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamCoordinates(0, 1.5, 0)

    def test_ordering(self):
        assert StreamCoordinates(0, 0, 1) < StreamCoordinates(0, 1, 0)


class TestHeadStateArithmetic:
    """The hierarchy is pure leap algebra: verify it against jumps."""

    def test_origin_is_u0(self, tree):
        assert tree.rng(0, 0, 0).state == 1

    def test_realization_leap(self, tree):
        # Jumping stream (e,p,r) by n_r lands on stream (e,p,r+1).
        n_r = tree.leaps.realization_leap
        assert tree.rng(0, 0, 0).jumped(n_r).state == tree.rng(0, 0, 1).state

    def test_processor_leap(self, tree):
        n_p = tree.leaps.processor_leap
        assert tree.rng(0, 0, 0).jumped(n_p).state == tree.rng(0, 1, 0).state

    def test_experiment_leap(self, tree):
        n_e = tree.leaps.experiment_leap
        assert tree.rng(0, 0, 0).jumped(n_e).state == tree.rng(1, 0, 0).state

    def test_nesting_composition(self, tree):
        # (e,p,r) == origin jumped by e*n_e + p*n_p + r*n_r.
        leaps = tree.leaps
        offset = (3 * leaps.experiment_leap + 5 * leaps.processor_leap
                  + 7 * leaps.realization_leap)
        assert tree.rng(3, 5, 7).state == Lcg128().jumped(offset).state

    @given(e=st.integers(0, 2 ** 10 - 1), p=st.integers(0, 2 ** 17 - 1),
           r=st.integers(0, 2 ** 20))
    @settings(max_examples=25)
    def test_head_state_closed_form(self, e, p, r):
        tree = StreamTree()
        jump_e, jump_p, jump_r = tree.jump_multipliers
        expected = (pow(jump_e, e, 2 ** 128) * pow(jump_p, p, 2 ** 128)
                    * pow(jump_r, r, 2 ** 128)) % 2 ** 128
        assert tree.rng(e, p, r).state == expected

    def test_distinct_streams_distinct_heads(self, small_leaps):
        tree = StreamTree(small_leaps)
        heads = {tree.rng(e, p, r).state
                 for e in range(2) for p in range(4) for r in range(8)}
        assert len(heads) == 2 * 4 * 8

    def test_small_hierarchy_substreams_abut_exactly(self, small_leaps):
        # Walk one full realization substream (n_r = 64 draws): the
        # stream must land exactly on the next substream's head, i.e.
        # adjacent substreams tile the general sequence with no gap and
        # no overlap.
        tree = StreamTree(small_leaps)
        first = tree.rng(0, 0, 0)
        second = tree.rng(0, 0, 1)
        visited = set()
        for _ in range(64):
            visited.add(first.next_raw())
        assert first.state == second.state
        # No state of the first substream reappears in the second one.
        for _ in range(64):
            assert second.next_raw() not in visited


class TestCapacityEnforcement:
    def test_experiment_capacity(self, tree):
        with pytest.raises(CapacityError):
            tree.rng(2 ** 10, 0, 0)

    def test_processor_capacity(self, tree):
        with pytest.raises(CapacityError):
            tree.rng(0, 2 ** 17, 0)

    def test_realization_capacity(self, small_leaps):
        tree = StreamTree(small_leaps)
        with pytest.raises(CapacityError):
            tree.rng(0, 0, 2 ** 6)

    def test_last_valid_indices_accepted(self, tree):
        generator = tree.rng(2 ** 10 - 1, 2 ** 17 - 1, 0)
        assert generator.state % 2 == 1

    def test_non_strict_mode_allows_aliasing(self):
        tree = StreamTree(strict=False)
        aliased = tree.rng(2 ** 10, 0, 0)  # would raise in strict mode
        assert aliased.state % 2 == 1

    def test_negative_index_rejected_even_when_lenient(self):
        tree = StreamTree(strict=False)
        with pytest.raises(ConfigurationError):
            tree.rng(-1, 0, 0)


class TestHandles:
    def test_experiment_processor_realization_chain(self, tree):
        direct = tree.rng(2, 3, 4)
        chained = tree.experiment(2).processor(3).realization(4)
        assert chained.state == direct.state

    def test_processor_stream_properties(self, tree):
        processor = tree.experiment(1).processor(5)
        assert processor.experiment == 1
        assert processor.processor == 5
        assert processor.realization_capacity == 2 ** 55

    def test_realizations_iterator(self, tree):
        processor = tree.experiment(0).processor(0)
        pairs = []
        for index, generator in processor.realizations(start=3):
            pairs.append((index, generator.state))
            if len(pairs) == 3:
                break
        assert [i for i, _ in pairs] == [3, 4, 5]
        assert pairs[0][1] == tree.rng(0, 0, 3).state

    def test_experiment_handle_bounds(self, tree):
        with pytest.raises(CapacityError):
            tree.experiment(2 ** 10)
        with pytest.raises(CapacityError):
            tree.experiment(0).processor(2 ** 17)

    def test_reprs(self, tree):
        assert "StreamTree" in repr(tree)
        assert "index=4" in repr(tree.experiment(4))
        assert "processor=2" in repr(tree.experiment(1).processor(2))


class TestCustomHierarchy:
    def test_custom_leaps_change_geometry(self):
        leaps = LeapSet(experiment_exponent=30, processor_exponent=20,
                        realization_exponent=10)
        tree = StreamTree(leaps)
        assert tree.rng(0, 0, 0).jumped(2 ** 10).state \
            == tree.rng(0, 0, 1).state

    def test_even_base_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamTree(base_multiplier=2 ** 64)

    def test_streams_independent_of_strictness(self, small_leaps):
        strict = StreamTree(small_leaps, strict=True)
        loose = StreamTree(small_leaps, strict=False)
        assert strict.rng(1, 2, 3).state == loose.rng(1, 2, 3).state
