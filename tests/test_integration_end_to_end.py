"""Cross-module integration tests: the full PARMONC workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MonteCarloRun, parmonc, minutes
from repro.apps.integration import make_realization, product_of_powers
from repro.cli.manaver import manual_average
from repro.rng.streams import StreamTree
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.worker import run_worker


class TestPaperWorkflow:
    """The §4 usage pattern, end to end on a cheap workload."""

    def test_c_example_analogue(self, tmp_path):
        # int main() { parmoncc(difftraj, &nrow, &ncol, &maxsv, &res,
        #   &seqnum, &perpass, &peraver); } with res=1 resuming session 1.
        def difftraj(rng):
            return np.array([[rng.random(), rng.random()]] * 4)

        parmonc(difftraj, 4, 2, 100, 0, 0, minutes(10) / 600,
                minutes(20) / 600, processors=2, workdir=tmp_path)
        result = parmonc(difftraj, 4, 2, 100, 1, 2, minutes(10) / 600,
                         minutes(20) / 600, processors=2,
                         workdir=tmp_path)
        assert result.total_volume == 200
        data = DataDirectory(tmp_path)
        assert data.read_log()["seqnum"] == "2"
        assert data.read_mean_matrix().shape == (4, 2)

    def test_three_session_chain_equals_one_shot(self, tmp_path):
        # Sessions with seqnums 0,1,2 of 40 realizations each must merge
        # to exactly the one-shot union of the three experiment samples.
        realization = make_realization(product_of_powers())
        run = MonteCarloRun(realization, workdir=tmp_path / "chain",
                            processors=2)
        run.run(maxsv=40)
        run.resume(maxsv=40)
        chained = run.resume(maxsv=40)
        tree = StreamTree()
        from repro.stats.accumulator import MomentAccumulator
        reference = MomentAccumulator(1, 1)
        for seqnum in (0, 1, 2):
            for rank in (0, 1):
                for index in range(20):
                    reference.add(realization(tree.rng(seqnum, rank,
                                                       index)))
        assert chained.total_volume == 120
        assert chained.estimates.mean[0, 0] == pytest.approx(
            reference.estimates().mean[0, 0], rel=1e-12)
        assert chained.estimates.variance[0, 0] == pytest.approx(
            reference.estimates().variance[0, 0], rel=1e-9)

    def test_crash_manaver_resume_loses_nothing(self, tmp_path):
        def value(rng):
            return rng.random()

        # Session 1 completes normally.
        parmonc(value, maxsv=30, processors=3, workdir=tmp_path)
        # Session 2 "crashes" before finalizing.
        config = RunConfig(maxsv=30, processors=3, res=1, seqnum=1,
                           workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index)
        for rank in range(3):
            run_worker(value, config, rank, 10,
                       send=lambda m: collector.receive(m, 0.0))
        # Recovery + session 3.
        manual_average(tmp_path)
        final = parmonc(value, maxsv=30, res=1, seqnum=2, processors=3,
                        workdir=tmp_path)
        assert final.total_volume == 90


class TestStatisticalValidity:
    def test_confidence_interval_coverage(self, tmp_path):
        # Run 60 independent experiments (different seqnums) estimating
        # E X**2 = 1/3 and check the 3-sigma intervals cover the truth
        # at roughly the promised 99.7% rate (allow down to 90% for 60
        # trials).
        covered = 0
        trials = 60
        for seqnum in range(trials):
            result = parmonc(lambda rng: rng.random() ** 2, maxsv=400,
                             seqnum=seqnum, processors=2,
                             workdir=tmp_path, use_files=False)
            estimates = result.estimates
            if abs(estimates.mean[0, 0] - 1.0 / 3.0) \
                    <= estimates.abs_error[0, 0]:
                covered += 1
        assert covered >= int(0.9 * trials)

    def test_error_shrinks_like_inverse_sqrt_volume(self, tmp_path):
        errors = {}
        for volume in (400, 1600, 6400):
            result = parmonc(lambda rng: rng.random(), maxsv=volume,
                             processors=2, workdir=tmp_path,
                             use_files=False)
            errors[volume] = result.estimates.abs_error[0, 0]
        assert errors[400] / errors[1600] == pytest.approx(2.0, rel=0.15)
        assert errors[1600] / errors[6400] == pytest.approx(2.0, rel=0.15)

    def test_different_experiments_give_independent_samples(self, tmp_path):
        # Estimates from different seqnums must differ (disjoint
        # subsequences) while agreeing within statistical error.
        results = [
            parmonc(lambda rng: rng.random(), maxsv=2000, seqnum=s,
                    processors=2, workdir=tmp_path, use_files=False)
            for s in (0, 1)]
        means = [r.estimates.mean[0, 0] for r in results]
        assert means[0] != means[1]
        combined_error = sum(r.estimates.abs_error[0, 0] for r in results)
        assert abs(means[0] - means[1]) < combined_error


class TestFilesMatchResults:
    def test_func_dat_equals_returned_estimates(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=500,
                         processors=2, workdir=tmp_path)
        stored = DataDirectory(tmp_path).read_mean_matrix()
        assert np.allclose(stored, result.estimates.mean, rtol=1e-12)

    def test_log_volume_matches(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=321,
                         processors=2, workdir=tmp_path)
        log = DataDirectory(tmp_path).read_log()
        assert int(log["total_sample_volume"]) == result.total_volume

    def test_ci_file_errors_match(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=200,
                         workdir=tmp_path)
        ci_path = (DataDirectory(tmp_path).results_dir / "func_ci.dat")
        row = ci_path.read_text().splitlines()[1].split()
        assert float(row[2]) == pytest.approx(
            result.estimates.mean[0, 0], rel=1e-12)
        assert float(row[3]) == pytest.approx(
            result.estimates.abs_error[0, 0], rel=1e-9)
