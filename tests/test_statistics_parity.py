"""Cross-backend parity for the pluggable statistic pipeline.

The headline property, extended from the moment path: for a fixed
stream hierarchy every backend — sequential, multiprocess, simulated
cluster — produces *payload-identical* extra statistics, batched or
not.  Plus: savepoint round-trips, legacy moment-only artifacts,
unknown-kind preservation, manaver recovery, the wire-size model and
report rendering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli.manaver import manual_average
from repro.cli.report import render_report
from repro.core.parmonc import parmonc
from repro.runtime import storage
from repro.runtime.config import RunConfig
from repro.runtime.files import (
    SAVEPOINT_FORMAT,
    SAVEPOINT_VERSION,
    DataDirectory,
)
from repro.runtime.messages import MomentMessage, message_bytes
from repro.stats.statistic import create_statistic

ALL_STATISTICS = ["covariance", "histogram", "extrema", "counter"]
BACKENDS = ("sequential", "multiprocess", "simcluster")


def pair(rng):
    """A 1x2 realization exercising both histogram tails and signs."""
    return np.array([[rng.random(), rng.random() * 2.0 - 1.0]])


def _run(backend, workdir, *, batch_size=None, maxsv=240, processors=3,
         res=0, seqnum=1, statistics=ALL_STATISTICS, **kwargs):
    return parmonc(pair, nrow=1, ncol=2, maxsv=maxsv, res=res,
                   seqnum=seqnum, processors=processors, backend=backend,
                   workdir=workdir, batch_size=batch_size,
                   statistics=statistics, **kwargs)


class TestCrossBackendParity:
    def test_all_backends_payload_identical(self, tmp_path):
        payloads = {}
        for backend in BACKENDS:
            result = _run(backend, tmp_path / backend)
            assert result.total_volume == 240
            assert set(result.statistics) == set(ALL_STATISTICS)
            payloads[backend] = {
                kind: statistic.to_payload()
                for kind, statistic in result.statistics.items()}
        assert payloads["multiprocess"] == payloads["sequential"]
        assert payloads["simcluster"] == payloads["sequential"]

    def test_batched_run_is_bit_identical(self, tmp_path):
        scalar = _run("sequential", tmp_path / "scalar")
        batched = _run("sequential", tmp_path / "batched", batch_size=16)
        assert np.array_equal(scalar.estimates.mean, batched.estimates.mean)
        for kind in ALL_STATISTICS:
            assert (batched.statistics[kind].to_payload()
                    == scalar.statistics[kind].to_payload())

    def test_statistics_match_direct_accumulation(self, tmp_path):
        from repro.rng.streams import StreamTree
        result = _run("sequential", tmp_path, maxsv=60, processors=2)
        config = RunConfig(nrow=1, ncol=2, maxsv=60, seqnum=1,
                           processors=2, workdir=tmp_path)
        tree = StreamTree()
        # Mirror the protocol: each rank accumulates sequentially, the
        # collector merges the per-rank statistics in rank order.
        reference = {}
        for rank in range(2):
            rank_statistics = {kind: create_statistic(kind, 1, 2)
                               for kind in ALL_STATISTICS}
            for index in range(config.worker_quota(rank)):
                matrix = pair(tree.rng(1, rank, index))
                for statistic in rank_statistics.values():
                    statistic.update(matrix)
            for kind, statistic in rank_statistics.items():
                if kind in reference:
                    reference[kind].merge(statistic)
                else:
                    reference[kind] = statistic
        for kind in ALL_STATISTICS:
            assert (result.statistics[kind].to_payload()
                    == reference[kind].to_payload())


class TestReductionTransportParity:
    """The exchange topology and transport never touch a result bit.

    Reducers forward untouched per-rank snapshots and the collector
    always folds in rank order, so every fanout x transport (x batched)
    combination must reproduce the flat queue exchange exactly: same
    estimate bytes, same statistic payloads, same savepoint payload
    (modulo the wall-clock compute-time field).
    """

    FANOUTS = (None, 2, 4, 8)

    def _fingerprint(self, workdir, result):
        payload, _version = storage.read_artifact(
            DataDirectory(workdir).savepoint_path, SAVEPOINT_FORMAT,
            max_version=SAVEPOINT_VERSION)
        payload["snapshot"].pop("compute_time")
        estimates = result.estimates
        return {
            "mean": estimates.mean.tobytes(),
            "variance": estimates.variance.tobytes(),
            "abs_error": estimates.abs_error.tobytes(),
            "volume": estimates.volume,
            "statistics": {kind: statistic.to_payload()
                           for kind, statistic
                           in result.statistics.items()},
            "savepoint": payload,
        }

    def _run_matrix(self, tmp_path, *, batch_size=None):
        label = "batched" if batch_size else "scalar"
        fingerprints = {}
        for fanout in self.FANOUTS:
            for transport in ("queue", "shm"):
                workdir = (tmp_path / label
                           / f"f{fanout or 0}-{transport}")
                result = parmonc(pair, nrow=1, ncol=2, maxsv=60,
                                 seqnum=1, processors=6, perpass=0.0,
                                 peraver=0.0, backend="multiprocess",
                                 start_method="fork",
                                 batch_size=batch_size,
                                 statistics=ALL_STATISTICS,
                                 reduction_fanout=fanout,
                                 transport=transport, workdir=workdir)
                assert result.total_volume == 60, (fanout, transport)
                fingerprints[(fanout, transport)] = \
                    self._fingerprint(workdir, result)
        return fingerprints

    def test_every_fanout_and_transport_is_bit_identical(self, tmp_path):
        fingerprints = self._run_matrix(tmp_path)
        reference = fingerprints[(None, "queue")]
        for combo, fingerprint in fingerprints.items():
            assert fingerprint == reference, combo

    def test_batched_matrix_matches_scalar_reference(self, tmp_path):
        reference = self._run_matrix(
            tmp_path / "ref")[(None, "queue")]
        fingerprints = self._run_matrix(tmp_path, batch_size=16)
        for combo, fingerprint in fingerprints.items():
            assert fingerprint == reference, combo

    def test_simcluster_tree_matches_flat(self, tmp_path):
        results = {}
        for fanout in (None, 4):
            results[fanout] = _run(
                "simcluster", tmp_path / f"sim{fanout or 0}",
                maxsv=120, processors=16, reduction_fanout=fanout)
        flat, tree = results[None], results[4]
        assert np.array_equal(flat.estimates.mean, tree.estimates.mean)
        assert (tree.statistics["histogram"].to_payload()
                == flat.statistics["histogram"].to_payload())

    def test_cli_accepts_reduction_flags(self, tmp_path, capsys):
        from repro.cli.run import main
        (tmp_path / "model.py").write_text(
            "def one(rng):\n    return rng.random()\n")
        code = main(["model:one", "--maxsv", "40", "--processors", "4",
                     "--backend", "multiprocess",
                     "--reduction-fanout", "2", "--transport", "shm",
                     "--workdir", str(tmp_path)])
        assert code == 0
        assert "total sample volume: 40" in capsys.readouterr().out


class TestSavepointRoundTrip:
    def test_resume_carries_every_statistic(self, tmp_path):
        _run("sequential", tmp_path, maxsv=120, seqnum=1)
        resumed = _run("sequential", tmp_path, maxsv=120, seqnum=2, res=1)
        assert resumed.total_volume == 240
        for kind in ALL_STATISTICS:
            assert resumed.statistics[kind].volume == 240

    def test_resumed_equals_monolithic_for_integer_statistics(
            self, tmp_path):
        _run("sequential", tmp_path / "split", maxsv=100, seqnum=1)
        resumed = _run("sequential", tmp_path / "split", maxsv=100,
                       seqnum=2, res=1)
        # Reference: one pass over both experiments' realizations.
        from repro.rng.streams import StreamTree
        tree = StreamTree()
        config = RunConfig(nrow=1, ncol=2, maxsv=100, seqnum=1,
                           processors=3, workdir=tmp_path)
        reference = {kind: create_statistic(kind, 1, 2)
                     for kind in ("histogram", "extrema", "counter")}
        for seqnum in (1, 2):
            for rank in range(3):
                for index in range(config.worker_quota(rank)):
                    matrix = pair(tree.rng(seqnum, rank, index))
                    for statistic in reference.values():
                        statistic.update(matrix)
        for kind, statistic in reference.items():
            assert (resumed.statistics[kind].to_payload()
                    == statistic.to_payload())

    def test_moments_only_savepoint_has_no_statistics_block(self, tmp_path):
        _run("sequential", tmp_path, statistics=None)
        data = DataDirectory(tmp_path)
        payload, version = storage.read_artifact(
            data.savepoint_path, SAVEPOINT_FORMAT,
            max_version=SAVEPOINT_VERSION)
        assert version == SAVEPOINT_VERSION
        assert "statistics" not in payload


class TestLegacyArtifacts:
    def _downgrade_savepoint(self, workdir):
        """Rewrite the save-point as a v2 (pre-statistics) artifact."""
        data = DataDirectory(workdir)
        payload, _version = storage.read_artifact(
            data.savepoint_path, SAVEPOINT_FORMAT,
            max_version=SAVEPOINT_VERSION)
        payload.pop("statistics", None)
        storage.write_artifact(data.savepoint_path, SAVEPOINT_FORMAT,
                               payload, version=2, label="savepoint")
        return data

    def test_v2_moment_only_savepoint_loads(self, tmp_path):
        _run("sequential", tmp_path, statistics=None)
        data = self._downgrade_savepoint(tmp_path)
        snapshot, meta = data.load_savepoint()
        assert snapshot.volume == 240
        assert meta.statistics == {}
        assert meta.unknown_payloads == {}

    def test_resume_from_v2_savepoint(self, tmp_path):
        _run("sequential", tmp_path, maxsv=100, seqnum=1)
        self._downgrade_savepoint(tmp_path)
        resumed = _run("sequential", tmp_path, maxsv=100, seqnum=2, res=1)
        assert resumed.total_volume == 200
        # The legacy base had no extra statistics, so only the new
        # session's realizations feed them.
        for kind in ALL_STATISTICS:
            assert resumed.statistics[kind].volume == 100

    def test_unknown_kind_payload_survives_resume(self, tmp_path):
        _run("sequential", tmp_path, maxsv=100, seqnum=1)
        data = DataDirectory(tmp_path)
        payload, _version = storage.read_artifact(
            data.savepoint_path, SAVEPOINT_FORMAT,
            max_version=SAVEPOINT_VERSION)
        alien = {"kind": "alien-statistic", "shape": [1, 2],
                 "volume": 5, "secret": [1, 2, 3]}
        payload.setdefault("statistics", {})["alien-statistic"] = alien
        storage.write_artifact(data.savepoint_path, SAVEPOINT_FORMAT,
                               payload, version=SAVEPOINT_VERSION,
                               label="savepoint")
        _snapshot, meta = data.load_savepoint()
        assert meta.unknown_statistics == ("alien-statistic",)
        resumed = _run("sequential", tmp_path, maxsv=100, seqnum=2, res=1)
        assert resumed.total_volume == 200
        rewritten, _version = storage.read_artifact(
            data.savepoint_path, SAVEPOINT_FORMAT,
            max_version=SAVEPOINT_VERSION)
        assert rewritten["statistics"]["alien-statistic"] == alien


class TestManaverRecovery:
    def test_recovers_statistics_from_subtotals(self, tmp_path):
        result = _run("sequential", tmp_path, maxsv=120, seqnum=1)
        data = DataDirectory(tmp_path)
        # Simulate a crashed second session that delivered one subtotal
        # before dying: its statistics must fold into the recovery.
        extra = {kind: create_statistic(kind, 1, 2)
                 for kind in ALL_STATISTICS}
        matrix = np.array([[0.25, -0.75]])
        from repro.stats.accumulator import MomentAccumulator
        moments = MomentAccumulator(1, 2)
        moments.add(matrix)
        for statistic in extra.values():
            statistic.update(matrix)
        data.save_processor_snapshot(0, moments.snapshot(), session=2,
                                     statistics=extra)
        summary = manual_average(tmp_path)
        assert summary["volume"] == 121
        for kind in ALL_STATISTICS:
            assert summary["statistics"][kind].volume == 121
        # The recovered statistics persist for the next resume.
        _snapshot, meta = data.load_savepoint()
        for kind in ALL_STATISTICS:
            assert meta.statistics[kind].volume == 121
        assert result.statistics["extrema"].volume == 120

    def test_moments_only_recovery_reports_no_statistics(self, tmp_path):
        _run("sequential", tmp_path, statistics=None)
        summary = manual_average(tmp_path)
        assert summary["statistics"] == {}


class TestWireSizeModel:
    def test_default_config_matches_paper_figure(self):
        # 1000x2 moments-only: 8 words/entry * 8 bytes * 2000 + 64-byte
        # header = 128064 bytes, the paper's "about 120 Kbytes".
        assert message_bytes(1000, 2) == 128_064

    def test_extras_raise_wire_size_by_their_nbytes(self):
        extras = [create_statistic(kind, 1, 2) for kind in ALL_STATISTICS]
        assert message_bytes(1, 2, extras) == (
            message_bytes(1, 2) + sum(s.nbytes for s in extras))

    def test_message_nbytes_derives_from_payloads(self):
        from repro.stats.accumulator import MomentAccumulator
        moments = MomentAccumulator(1, 2)
        moments.add(np.array([[1.0, 2.0]]))
        plain = MomentMessage(rank=0, snapshot=moments.snapshot(),
                              sent_at=0.0)
        assert plain.nbytes == message_bytes(1, 2)
        extras = {"extrema": create_statistic("extrema", 1, 2)}
        loaded = MomentMessage(rank=0, snapshot=moments.snapshot(),
                               sent_at=0.0, statistics=extras)
        assert loaded.nbytes == plain.nbytes + extras["extrema"].nbytes


class TestReportRendering:
    def test_report_renders_known_statistics(self, tmp_path):
        _run("sequential", tmp_path)
        text = render_report(tmp_path)
        assert "extra statistics (merged):" in text
        assert "histogram" in text
        assert "covariance matrix" in text
        assert "extrema" in text

    def test_report_flags_unknown_statistics(self, tmp_path):
        _run("sequential", tmp_path)
        data = DataDirectory(tmp_path)
        payload, _version = storage.read_artifact(
            data.savepoint_path, SAVEPOINT_FORMAT,
            max_version=SAVEPOINT_VERSION)
        payload["statistics"]["mystery"] = {"kind": "mystery"}
        storage.write_artifact(data.savepoint_path, SAVEPOINT_FORMAT,
                               payload, version=SAVEPOINT_VERSION,
                               label="savepoint")
        text = render_report(tmp_path)
        assert "unregistered" in text
        assert "mystery" in text


class TestCli:
    def test_run_cli_statistics_flag(self, tmp_path, capsys):
        from repro.cli.run import main
        (tmp_path / "model.py").write_text(
            "def one(rng):\n    return rng.random()\n")
        code = main(["model:one", "--maxsv", "50", "--processors", "2",
                     "--workdir", str(tmp_path),
                     "--statistics", "extrema,counter"])
        assert code == 0
        out = capsys.readouterr().out
        assert "statistic extrema" in out
        assert "statistic counter" in out
