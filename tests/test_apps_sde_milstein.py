"""Tests for the scalar Euler/Milstein integrators and GBM oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.sde import (
    ScalarSDE,
    geometric_brownian_motion,
    simulate_scalar_euler,
    simulate_scalar_milstein,
)
from repro.exceptions import ConfigurationError


def strong_errors(scheme, system, steps, n_paths, tree):
    errors = []
    for index in range(n_paths):
        terminal, brownian = scheme(system, 1.0, steps,
                                    tree.rng(0, 0, index))
        exact = system.exact_terminal(1.0, brownian)
        errors.append(abs(terminal - exact))
    return float(np.mean(errors))


class TestGbmOracle:
    def test_exact_solution_formula(self):
        gbm = geometric_brownian_motion(mu=0.1, sigma=0.3, initial=2.0)
        value = gbm.exact_terminal(1.0, 0.5)
        expected = 2.0 * math.exp((0.1 - 0.045) * 1.0 + 0.3 * 0.5)
        assert value == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_brownian_motion(initial=0.0)
        with pytest.raises(ConfigurationError):
            geometric_brownian_motion(sigma=-0.1)


class TestSchemes:
    def test_same_brownian_path_for_both_schemes(self, tree):
        gbm = geometric_brownian_motion()
        _, w_euler = simulate_scalar_euler(gbm, 1.0, 16,
                                           tree.rng(0, 0, 3))
        _, w_milstein = simulate_scalar_milstein(gbm, 1.0, 16,
                                                 tree.rng(0, 0, 3))
        assert w_euler == w_milstein

    def test_zero_noise_reduces_to_ode(self, tree):
        system = ScalarSDE(initial=1.0, drift=lambda y: -y,
                           diffusion=lambda y: 0.0,
                           diffusion_derivative=lambda y: 0.0)
        terminal, _ = simulate_scalar_euler(system, 1.0, 2000,
                                            tree.rng(0, 0, 0))
        assert terminal == pytest.approx(math.exp(-1.0), rel=1e-3)

    def test_milstein_equals_euler_for_additive_noise(self, tree):
        # b' = 0 makes the correction vanish identically.
        system = ScalarSDE(initial=0.0, drift=lambda y: 0.5,
                           diffusion=lambda y: 0.3,
                           diffusion_derivative=lambda y: 0.0)
        euler, _ = simulate_scalar_euler(system, 1.0, 64,
                                         tree.rng(0, 0, 1))
        milstein, _ = simulate_scalar_milstein(system, 1.0, 64,
                                               tree.rng(0, 0, 1))
        assert euler == milstein

    def test_validation(self, tree):
        gbm = geometric_brownian_motion()
        with pytest.raises(ConfigurationError):
            simulate_scalar_euler(gbm, 0.0, 10, tree.rng(0, 0, 0))
        with pytest.raises(ConfigurationError):
            simulate_scalar_milstein(gbm, 1.0, 0, tree.rng(0, 0, 0))


class TestStrongConvergence:
    def test_milstein_beats_euler_pathwise(self, tree):
        gbm = geometric_brownian_motion(mu=0.05, sigma=0.5)
        euler_error = strong_errors(simulate_scalar_euler, gbm, 32,
                                    200, tree)
        milstein_error = strong_errors(simulate_scalar_milstein, gbm,
                                       32, 200, tree)
        assert milstein_error < 0.25 * euler_error

    def test_convergence_orders(self, tree):
        # Strong order: Euler ~ h^0.5, Milstein ~ h^1.0.  Measured over
        # a 16x step refinement, the error ratios should be ~4 and ~16.
        gbm = geometric_brownian_motion(mu=0.05, sigma=0.5)
        euler_coarse = strong_errors(simulate_scalar_euler, gbm, 8,
                                     300, tree)
        euler_fine = strong_errors(simulate_scalar_euler, gbm, 128,
                                   300, tree)
        milstein_coarse = strong_errors(simulate_scalar_milstein, gbm,
                                        8, 300, tree)
        milstein_fine = strong_errors(simulate_scalar_milstein, gbm,
                                      128, 300, tree)
        euler_order = math.log(euler_coarse / euler_fine) / math.log(16)
        milstein_order = math.log(milstein_coarse
                                  / milstein_fine) / math.log(16)
        assert 0.35 < euler_order < 0.75
        assert 0.8 < milstein_order < 1.25
