"""Tests for repro.cluster.simulation: the PARMONC protocol in virtual time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.machine import DurationModel
from repro.cluster.simulation import ClusterSimulation, ClusterSpec
from repro.exceptions import ConfigurationError
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.stats.accumulator import MomentSnapshot


def simulate(maxsv, processors, *, tau=1.0, perpass=0.0, spec_kwargs=None,
             config_kwargs=None, routine=None):
    spec_kwargs = dict(spec_kwargs or {})
    spec_kwargs.setdefault("duration_model", DurationModel(mean=tau))
    spec = ClusterSpec(**spec_kwargs)
    config = RunConfig(maxsv=maxsv, processors=processors,
                       perpass=perpass, peraver=3600.0,
                       **(config_kwargs or {}))
    collector = Collector(config, MomentSnapshot.zero(config.nrow,
                                                      config.ncol), None)
    simulation = ClusterSimulation(config, spec, collector, routine=routine)
    return simulation.run(), collector


class TestTimingModel:
    def test_single_processor_analytic_time(self):
        # M=1, fixed tau, local messages: T_comp = L * tau + service.
        result, _ = simulate(10, 1, tau=2.0)
        assert result.t_comp == pytest.approx(20.0, abs=0.1)

    def test_linear_speedup(self):
        # The paper's headline: T_comp inversely proportional to M.
        times = {m: simulate(128, m, tau=4.0)[0].t_comp
                 for m in (1, 2, 4, 8)}
        for m in (2, 4, 8):
            assert times[1] / times[m] == pytest.approx(m, rel=0.02)

    def test_t_comp_linear_in_volume(self):
        t_small = simulate(100, 4, tau=1.0)[0].t_comp
        t_large = simulate(300, 4, tau=1.0)[0].t_comp
        assert t_large / t_small == pytest.approx(3.0, rel=0.02)

    def test_compute_span_below_t_comp(self):
        result, _ = simulate(50, 2, tau=1.0)
        assert result.compute_span <= result.t_comp

    def test_collector_bottleneck_shows_up(self):
        # With a pathological 2-second service time per message and
        # per-realization messaging, the collector serializes the run.
        fast, _ = simulate(64, 8, tau=1.0)
        slow, _ = simulate(64, 8, tau=1.0,
                           spec_kwargs={"collector_service_time": 2.0})
        assert slow.t_comp > 4 * fast.t_comp
        assert slow.collector_utilization > 0.9

    def test_perpass_reduces_messages(self):
        every, _ = simulate(64, 4, tau=1.0, perpass=0.0)
        rare, _ = simulate(64, 4, tau=1.0, perpass=8.0)
        assert rare.messages_sent < every.messages_sent
        # Both runs still deliver the whole sample.
        assert every.total_volume == rare.total_volume == 64

    def test_heterogeneous_speeds_unequal_volumes_equal_quota(self):
        # Static quotas: every worker still completes its share, but the
        # slow worker dominates T_comp.
        result, _ = simulate(
            40, 4, tau=1.0,
            spec_kwargs={"speed_factors": (1.0, 1.0, 1.0, 0.25)})
        assert result.per_rank_volumes == {0: 10, 1: 10, 2: 10, 3: 10}
        assert result.t_comp == pytest.approx(40.0, rel=0.05)

    def test_time_limit_truncates(self):
        result, collector = simulate(
            10_000, 2, tau=1.0, config_kwargs={"time_limit": 25.0})
        assert result.total_volume == pytest.approx(50, abs=4)
        assert collector.complete


class TestProtocolFidelity:
    def test_strict_mode_message_count(self):
        # perpass=0: one message per realization plus one final per
        # worker — the §4 "strictest conditions".
        result, _ = simulate(30, 3, tau=1.0, perpass=0.0)
        assert result.messages_sent == 30 + 3

    def test_collector_sees_all_volume(self):
        result, collector = simulate(55, 5, tau=1.0)
        assert collector.total_volume == 55
        assert result.total_volume == 55

    def test_executed_realizations_produce_estimates(self):
        result, collector = simulate(
            50, 2, tau=1.0, routine=lambda rng: rng.random())
        estimates = collector.estimates()
        assert estimates.volume == 50
        assert 0.2 < estimates.mean[0, 0] < 0.8

    def test_executed_realizations_match_sequential(self):
        from repro.runtime.sequential import run_sequential
        config = RunConfig(maxsv=40, processors=4)
        reference = run_sequential(lambda rng: rng.random() ** 2, config,
                                   use_files=False)
        _, collector = simulate(40, 4, tau=1.0,
                                routine=lambda rng: rng.random() ** 2)
        assert np.array_equal(collector.estimates().mean,
                              reference.estimates.mean)

    def test_mean_queue_delay_nonnegative(self):
        result, _ = simulate(20, 2, tau=1.0)
        assert result.mean_queue_delay >= 0.0

    def test_duration_seed_reproducibility(self):
        kwargs = {"spec_kwargs": {"seed": 7},
                  "tau": 1.0}
        first, _ = simulate(40, 4, **kwargs)
        second, _ = simulate(40, 4, **kwargs)
        assert first.t_comp == second.t_comp

    def test_stochastic_durations_change_t_comp(self):
        spec_a = {"seed": 1, "duration_model": DurationModel(
            mean=1.0, distribution="exponential")}
        spec_b = {"seed": 2, "duration_model": DurationModel(
            mean=1.0, distribution="exponential")}
        result_a, _ = simulate(40, 4, spec_kwargs=spec_a)
        result_b, _ = simulate(40, 4, spec_kwargs=spec_b)
        assert result_a.t_comp != result_b.t_comp


class TestSpecValidation:
    def test_speed_factor_length_mismatch(self):
        spec = ClusterSpec(speed_factors=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            spec.processors_for(3)

    def test_processors_for_defaults(self):
        processors = ClusterSpec().processors_for(3)
        assert [p.rank for p in processors] == [0, 1, 2]
        assert all(p.speed_factor == 1.0 for p in processors)


class TestPerJobBreakdown:
    def test_labelled_ranks_are_accounted_per_job(self):
        spec = ClusterSpec(duration_model=DurationModel(mean=1.0))
        config = RunConfig(maxsv=12, processors=4, perpass=0.0,
                           peraver=3600.0)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        simulation = ClusterSimulation(
            config, spec, collector,
            job_labels=["ising", "ising", "sde", None])
        result = simulation.run()
        assert set(result.per_job) == {"ising", "sde"}
        ising = result.per_job["ising"]
        assert ising["ranks"] == (0, 1)
        assert ising["volume"] == (config.worker_quota(0)
                                   + config.worker_quota(1))
        assert ising["delivered"] == ising["volume"]
        assert ising["messages"] >= 2
        sde = result.per_job["sde"]
        assert sde["ranks"] == (2,)
        assert sde["volume"] == config.worker_quota(2)
        # Per-job volumes plus the unlabelled rank cover the whole run.
        labelled = ising["volume"] + sde["volume"]
        assert labelled + config.worker_quota(3) == result.total_volume

    def test_unlabelled_simulation_reports_empty_breakdown(self):
        result, _ = simulate(10, 2, tau=1.0)
        assert result.per_job == {}

    def test_job_labels_length_must_match_processors(self):
        spec = ClusterSpec(duration_model=DurationModel(mean=1.0))
        config = RunConfig(maxsv=10, processors=3, perpass=0.0,
                           peraver=3600.0)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        with pytest.raises(ConfigurationError):
            ClusterSimulation(config, spec, collector,
                              job_labels=["a", "b"])

    def test_added_worker_charged_to_its_job(self):
        spec = ClusterSpec(duration_model=DurationModel(mean=1.0))
        config = RunConfig(maxsv=8, processors=2, perpass=0.0,
                           peraver=3600.0)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        simulation = ClusterSimulation(config, spec, collector,
                                       job_labels=["a", "a"])
        collector.expect_rank(2)
        simulation.add_worker(2, 4, job="b")
        result = simulation.run()
        assert result.per_job["b"]["ranks"] == (2,)
        assert result.per_job["b"]["volume"] == 4
