"""Tests for the unified engine: registry, parity, fault recovery.

The engine owns the session lifecycle for every backend, so the
headline properties are (a) the registry is the single source of
backend names, (b) all three backends stay bit-identical through the
shared driver, and (c) ``on_worker_death="reassign"`` completes a run
whose worker died mid-flight, with the estimate intact.
"""

from __future__ import annotations

import os
import queue
from collections import deque

import pytest

from repro.cluster.machine import DurationModel
from repro.cluster.simulation import ClusterSpec
from repro.core.parmonc import parmonc
from repro.exceptions import BackendError, ConfigurationError
from repro.obs.events import read_events
from repro.obs.telemetry import RunTelemetry
from repro.runtime import engine as engine_module
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.engine import (
    EngineBackend,
    WorkerAssignment,
    WorkerDeath,
    available_backends,
    create_backend,
    register_backend,
    register_lazy_backend,
)
from repro.runtime.messages import MomentMessage
from repro.runtime.multiprocess import MultiprocessBackend
from repro.runtime.sequential import SequentialBackend
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot


def square(rng):
    return rng.random() ** 2


def make_crasher(flag_path):
    """A routine whose 5th call hard-kills its process — once, run-wide.

    The flag file is created with ``O_EXCL``, so across every worker
    process exactly one wins the race and dies; replacements (and the
    surviving workers) see the flag and keep computing.  Requires the
    ``fork`` start method (closure over the path).
    """
    calls = {"n": 0}

    def routine(rng):
        calls["n"] += 1
        if calls["n"] == 5:
            try:
                flag_path.touch(exist_ok=False)
            except FileExistsError:
                pass
            else:
                os._exit(5)
        return rng.random()

    return routine


def make_clean_quitter(flag_path):
    """Like :func:`make_crasher` but exits with code 0 (no final message)."""
    calls = {"n": 0}

    def routine(rng):
        calls["n"] += 1
        if calls["n"] == 3:
            try:
                flag_path.touch(exist_ok=False)
            except FileExistsError:
                pass
            else:
                os._exit(0)
        return rng.random()

    return routine


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_builtin_backends_registered_in_order(self):
        assert available_backends() == ("sequential", "multiprocess",
                                        "simcluster", "distributed")

    def test_parmonc_backends_mirror_registry(self):
        from repro.core.parmonc import BACKENDS
        assert BACKENDS == available_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("sequential", lambda: None)
        # The failed attempt must not corrupt the registry.
        assert isinstance(create_backend("sequential"), SequentialBackend)

    def test_reregistering_same_factory_is_noop(self):
        assert register_backend("sequential",
                                SequentialBackend) is SequentialBackend

    def test_lazy_registration_never_shadows(self):
        register_lazy_backend("sequential", "no.such.module")
        assert isinstance(create_backend("sequential"), SequentialBackend)

    def test_unknown_backend_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="sequential"):
            create_backend("quantum")

    def test_parmonc_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            parmonc(square, maxsv=4, workdir=tmp_path, backend="quantum")

    def test_third_party_backend_plugs_in(self):
        class ToyBackend(EngineBackend):
            name = "toy"

            def __init__(self, knob: int = 0) -> None:
                super().__init__()
                self.knob = knob

        register_backend("toy", ToyBackend)
        try:
            assert "toy" in available_backends()
            # Foreign options are filtered; its own knob passes through.
            backend = create_backend("toy", knob=7, start_method="fork")
            assert backend.knob == 7
        finally:
            engine_module._FACTORIES.pop("toy", None)

    def test_option_filtering(self):
        backend = create_backend("multiprocess", start_method="fork",
                                 cluster_spec=ClusterSpec())
        assert isinstance(backend, MultiprocessBackend)

    def test_assignment_validation(self):
        with pytest.raises(ConfigurationError, match="rank"):
            WorkerAssignment(-1, 5)
        with pytest.raises(ConfigurationError, match="quota"):
            WorkerAssignment(0, -5)

    def test_death_describes_detail_over_exitcode(self):
        assert WorkerDeath(1, 3).describe() == "rank 1 (exitcode 3)"
        assert WorkerDeath(2, None, detail="node lost").describe() \
            == "rank 2 (node lost)"


# ---------------------------------------------------------------------------
# Backend parity through the shared engine


class TestBackendParity:
    @pytest.fixture(scope="class")
    def pool(self):
        """One local parmonc-pool for every distributed run here."""
        from repro.runtime.pool import PoolServer
        server = PoolServer(port=0, workers=3, start_method="fork")
        host, port = server.start()
        yield f"{host}:{port}"
        server.stop()

    def _run(self, backend, tmp_path, pool=None, **kwargs):
        if backend == "distributed":
            kwargs["connect"] = pool
        return parmonc(square, maxsv=60, perpass=0.0, peraver=0.0,
                       processors=3, backend=backend,
                       workdir=tmp_path / backend, **kwargs)

    def test_estimates_bit_identical(self, tmp_path, pool):
        results = {name: self._run(name, tmp_path, pool)
                   for name in available_backends()}
        reference = results["sequential"].estimates
        for name, result in results.items():
            assert result.total_volume == 60, name
            assert result.estimates.mean[0, 0] == reference.mean[0, 0], name
            assert (result.estimates.variance[0, 0]
                    == reference.variance[0, 0]), name

    def test_resumed_sessions_bit_identical(self, tmp_path, pool):
        merged = {}
        for name in available_backends():
            self._run(name, tmp_path, pool)
            resumed = parmonc(square, maxsv=60, res=1, seqnum=1,
                              perpass=0.0, peraver=0.0, processors=3,
                              backend=name, workdir=tmp_path / name,
                              **({"connect": pool}
                                 if name == "distributed" else {}))
            assert resumed.sessions == 2
            assert resumed.total_volume == 120
            merged[name] = resumed.estimates.mean[0, 0]
        assert len(set(merged.values())) == 1

    def test_batched_runs_bit_identical(self, tmp_path, pool):
        scalar = self._run("sequential", tmp_path / "scalar")
        for name in available_backends():
            batched = parmonc(square, maxsv=60, perpass=0.0, peraver=0.0,
                              processors=3, backend=name, batch_size=8,
                              workdir=tmp_path / "batched" / name,
                              **({"connect": pool}
                                 if name == "distributed" else {}))
            assert (batched.estimates.mean[0, 0]
                    == scalar.estimates.mean[0, 0]), name


# ---------------------------------------------------------------------------
# Fault-tolerant quota reassignment


class TestMultiprocessReassignment:
    def test_crashed_worker_quota_is_reassigned(self, tmp_path):
        routine = make_crasher(tmp_path / "crashed.flag")
        result = parmonc(routine, maxsv=40, perpass=0.0, peraver=0.0,
                         processors=2, backend="multiprocess",
                         start_method="fork", telemetry=True,
                         on_worker_death="reassign", workdir=tmp_path)
        # Full realization count despite the mid-run crash.
        assert result.total_volume == 40
        assert len(result.recovered_ranks) == 1
        # The estimate stays a genuine uniform mean.
        assert abs(result.estimates.mean[0, 0] - 0.5) \
            < 5 * result.estimates.abs_error_max
        events = list(read_events(tmp_path / "parmonc_data" / "telemetry"
                                  / "events.jsonl"))
        kinds = {event.kind for event in events}
        assert {"worker_died", "worker_recovered"} <= kinds
        recovered = [e for e in events if e.kind == "worker_recovered"]
        assert recovered[0].fields["rank"] == result.recovered_ranks[0]
        assert recovered[0].fields["reassigned"] > 0
        # The replacement runs on a rank beyond the configured M.
        starts = [e for e in events if e.kind == "worker_start"
                  and e.fields.get("recovery")]
        assert starts and starts[0].fields["rank"] >= 2

    def test_default_policy_still_fails(self, tmp_path):
        routine = make_crasher(tmp_path / "crashed.flag")
        with pytest.raises(BackendError, match="exitcode 5"):
            parmonc(routine, maxsv=40, perpass=0.0, peraver=0.0,
                    processors=2, backend="multiprocess",
                    start_method="fork", workdir=tmp_path)

    def test_clean_exit_without_final_honours_death_grace(self, tmp_path):
        routine = make_clean_quitter(tmp_path / "quit.flag")
        with pytest.raises(BackendError, match="exitcode 0"):
            parmonc(routine, maxsv=4000, perpass=0.5, peraver=0.0,
                    processors=2, backend="multiprocess",
                    start_method="fork", death_grace=0.2,
                    workdir=tmp_path)


class TestSimclusterReassignment:
    def _spec(self):
        return ClusterSpec(duration_model=DurationModel(mean=1.0),
                           failures={1: 2.5})

    def test_injected_failure_recovers_deterministically(self, tmp_path):
        result = parmonc(square, maxsv=30, perpass=0.0, peraver=0.0,
                         processors=3, backend="simcluster",
                         cluster_spec=self._spec(),
                         on_worker_death="reassign", workdir=tmp_path)
        assert result.recovered_ranks == (1,)
        # Rank 1 delivered 2 realizations before t=2.5; the remaining 8
        # of its 10-realization quota ran on replacement rank 3.
        assert result.total_volume == 30
        assert result.per_rank_volumes[1] == 2
        assert result.per_rank_volumes[3] == 8
        assert result.virtual_time > 2.5

    def test_default_policy_loses_the_tail(self, tmp_path):
        result = parmonc(square, maxsv=30, perpass=0.0, peraver=0.0,
                         processors=3, backend="simcluster",
                         cluster_spec=self._spec(), workdir=tmp_path)
        assert result.recovered_ranks == ()
        assert result.total_volume < 30

    def test_dynamic_scheduling_cannot_reassign(self, tmp_path):
        from repro.runtime.simcluster import run_simcluster
        config = RunConfig(maxsv=30, processors=3, perpass=0.0,
                           peraver=0.0, workdir=tmp_path,
                           on_worker_death="reassign")
        with pytest.raises(BackendError, match="dynamically scheduled"):
            run_simcluster(square, config, spec=self._spec(),
                           scheduling="dynamic")


# ---------------------------------------------------------------------------
# Dead-worker detection details


class _FakeOutbox:
    def __init__(self, items):
        self._items = deque(items)

    def get_nowait(self):
        if not self._items:
            raise queue.Empty
        return self._items.popleft()


class _FakeProcess:
    exitcode = 0


def _snapshot(volume: int) -> MomentSnapshot:
    accumulator = MomentAccumulator(1, 1)
    for _ in range(volume):
        accumulator.add(0.5)
    return accumulator.snapshot()


class TestDeadWorkerDetection:
    def _backend(self, queued, death_grace=0.0):
        config = RunConfig(maxsv=4, processors=1,
                           death_grace=death_grace)
        backend = MultiprocessBackend()
        backend.config = config
        backend.collector = Collector(config, _snapshot(0), data=None)
        backend._outbox = _FakeOutbox(queued)
        backend._live = {0: _FakeProcess()}
        return backend

    def test_reap_drains_queued_messages_before_verdict(self):
        message = MomentMessage(rank=0, snapshot=_snapshot(4),
                                sent_at=0.0, final=True)
        backend = self._backend([message])
        # First reap only drains: the exited process gets no verdict
        # while its delivered message is still in flight.
        assert backend.reap() == []
        assert backend.poll(0.0) is message

    def test_reap_declares_silent_exited_worker_dead(self):
        backend = self._backend([])
        deaths = backend.reap()
        assert [death.rank for death in deaths] == [0]
        assert deaths[0].exitcode == 0

    def test_finalized_worker_is_never_a_suspect(self):
        message = MomentMessage(rank=0, snapshot=_snapshot(4),
                                sent_at=0.0, final=True)
        backend = self._backend([message])
        backend.reap()
        backend.collector.receive(backend.poll(0.0), now=0.0)
        assert backend.reap() == []


# ---------------------------------------------------------------------------
# Configuration and CLI plumbing


class TestPolicyConfiguration:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="on_worker_death"):
            RunConfig(maxsv=1, on_worker_death="retry")

    def test_negative_death_grace_rejected(self):
        with pytest.raises(ConfigurationError, match="death_grace"):
            RunConfig(maxsv=1, death_grace=-0.1)

    def test_cli_accepts_fault_flags(self):
        from repro.cli.run import build_parser
        args = build_parser().parse_args(
            ["mod:fn", "--maxsv", "10", "--on-worker-death", "reassign",
             "--death-grace", "0.5"])
        assert args.on_worker_death == "reassign"
        assert args.death_grace == 0.5

    def test_cli_rejects_unknown_policy(self, capsys):
        from repro.cli.run import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mod:fn", "--maxsv", "10", "--on-worker-death", "retry"])


# ---------------------------------------------------------------------------
# Collector retire/expect semantics


class TestCollectorRetirement:
    def _collector(self, processors=2):
        config = RunConfig(maxsv=8, processors=processors)
        return Collector(config, _snapshot(0), data=None)

    def test_retire_unknown_rank_rejected(self):
        with pytest.raises(ConfigurationError, match="retire"):
            self._collector().retire_rank(7)

    def test_late_message_from_retired_rank_dropped(self):
        collector = self._collector()
        collector.receive(MomentMessage(rank=1, snapshot=_snapshot(2),
                                        sent_at=0.0, final=False), now=0.0)
        collector.retire_rank(1)
        kept = collector.worker_volume(1)
        accepted = collector.receive(
            MomentMessage(rank=1, snapshot=_snapshot(3), sent_at=1.0,
                          final=True), now=1.0)
        assert accepted is False
        assert collector.late_count == 1
        # The pre-death watermark survives; the late update does not.
        assert collector.worker_volume(1) == kept == 2

    def test_completion_follows_expected_set(self):
        collector = self._collector()
        collector.receive(MomentMessage(rank=0, snapshot=_snapshot(4),
                                        sent_at=0.0, final=True), now=0.0)
        assert not collector.complete
        collector.retire_rank(1)
        collector.expect_rank(5, now=0.0)
        assert not collector.complete
        collector.receive(MomentMessage(rank=5, snapshot=_snapshot(4),
                                        sent_at=1.0, final=True), now=1.0)
        assert collector.complete
        assert collector.expected_ranks == frozenset({0, 5})

    def test_expect_duplicate_rank_rejected(self):
        collector = self._collector()
        with pytest.raises(ConfigurationError, match="already tracked"):
            collector.expect_rank(0)
        collector.retire_rank(1)
        with pytest.raises(ConfigurationError, match="already tracked"):
            collector.expect_rank(1)

    def test_replacement_staleness_anchored_at_spawn_time(self):
        collector = self._collector()
        collector.mark_epoch(0.0)
        collector.retire_rank(1)
        collector.expect_rank(5, now=100.0)
        # Judged from its spawn time, not the session epoch.
        assert 5 not in collector.stale_workers(now=100.5, threshold=1.0)
        assert 5 in collector.stale_workers(now=102.0, threshold=1.0)


class TestRecoveryTelemetry:
    def test_worker_recovered_event_and_counters(self):
        telemetry = RunTelemetry(clock=lambda: 3.0)
        telemetry.worker_recovered(rank=1, replacement=4, reassigned=8,
                                   delivered=2, now=3.0)
        events = [e for e in telemetry.events.events
                  if e.kind == "worker_recovered"]
        assert events[0].fields == {"rank": 1, "replacement": 4,
                                    "reassigned": 8, "delivered": 2}
        snapshot = telemetry.registry.snapshot().to_dict()
        assert snapshot["counters"]["engine.worker_recoveries"] == 1
        assert snapshot["counters"]["engine.reassigned_realizations"] == 8
        summary = telemetry.finalize(elapsed=1.0, volume=10)
        assert summary is not None
        assert (telemetry.registry.snapshot().to_dict()["gauges"]
                ["run.recovered_workers"]) == 1
