"""Tests for batched stream placement: realization_heads + BatchStreams.

The contract under test is bit-identity: a block of realization head
states must equal the per-index ``head_state`` values, and every column
of :meth:`BatchStreams.uniforms` must equal the scalar generator's
draws — whatever the block size or access pattern.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.rng.streams as streams_module
from repro.exceptions import CapacityError, ConfigurationError
from repro.rng.batch import BatchStreams
from repro.rng.lcg128 import Lcg128, VECTOR_BLOCK_THRESHOLD
from repro.rng.streams import StreamCoordinates, StreamTree
from repro.rng.vectorized import geometric_limbs, limbs_to_int


def processor(experiment=0, rank=0, tree=None):
    tree = tree or StreamTree()
    return tree.experiment(experiment).processor(rank)


class TestRealizationHeads:
    @given(experiment=st.integers(0, 5), rank=st.integers(0, 5),
           start=st.integers(0, 50), count=st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_matches_head_state_per_index(self, experiment, rank, start,
                                          count):
        tree = StreamTree()
        heads = processor(experiment, rank, tree).realization_heads(
            start, count)
        assert heads.shape == (count, 4)
        for i in range(count):
            expected = tree.head_state(
                StreamCoordinates(experiment, rank, start + i))
            assert limbs_to_int(heads[i]) == expected

    def test_consecutive_blocks_use_cached_jump(self):
        """The worker's pattern: block k+1 right after block k."""
        tree = StreamTree()
        stream = processor(1, 2, tree)
        fresh = processor(1, 2, tree)
        expected = fresh.realization_heads(0, 96)
        got = np.concatenate([stream.realization_heads(0, 32),
                              stream.realization_heads(32, 32),
                              stream.realization_heads(64, 32)])
        assert np.array_equal(got, expected)

    def test_shorter_final_block(self):
        stream = processor()
        expected = processor().realization_heads(0, 50)
        got = np.concatenate([stream.realization_heads(0, 32),
                              stream.realization_heads(32, 18)])
        assert np.array_equal(got, expected)

    def test_non_consecutive_jump_falls_back(self):
        stream = processor()
        stream.realization_heads(0, 16)
        jumped = stream.realization_heads(100, 16)
        assert np.array_equal(jumped,
                              processor().realization_heads(100, 16))

    def test_width_change_then_continue(self):
        stream = processor()
        stream.realization_heads(0, 16)
        wider = stream.realization_heads(16, 32)
        assert np.array_equal(wider,
                              processor().realization_heads(16, 32))
        after = stream.realization_heads(48, 32)
        assert np.array_equal(after,
                              processor().realization_heads(48, 32))

    def test_interleaves_with_scalar_cursor(self):
        """A block leaves the incremental cursor at its last index."""
        tree = StreamTree()
        stream = processor(0, 0, tree)
        stream.realization_heads(0, 8)
        rng = stream.realization(8)
        fresh = tree.rng(experiment=0, processor=0, realization=8)
        assert rng.state == fresh.state

    def test_sequential_access_avoids_pow_after_warmup(self, monkeypatch):
        stream = processor()
        stream.realization(0)
        calls = []
        original = pow

        def counting_pow(*args):
            calls.append(args)
            return original(*args)

        monkeypatch.setattr(streams_module, "pow", counting_pow,
                            raising=False)
        for index in range(1, 50):
            stream.realization(index)
        assert calls == []

    def test_count_validation(self):
        stream = processor()
        with pytest.raises(ConfigurationError):
            stream.realization_heads(0, -1)
        with pytest.raises(ConfigurationError):
            stream.realization_heads(-1, 4)

    def test_capacity_checked_for_block_end(self):
        tree = StreamTree()
        capacity = tree.leaps.realization_capacity
        stream = processor(0, 0, tree)
        with pytest.raises(CapacityError):
            stream.realization_heads(capacity - 2, 8)

    def test_empty_block(self):
        heads = processor().realization_heads(0, 0)
        assert heads.shape == (0, 4)


class TestBatchStreams:
    def test_uniforms_match_scalar_draws(self):
        tree = StreamTree()
        block = processor(0, 0, tree).realization_block(0, 8)
        uniforms = block.uniforms(5)
        assert uniforms.shape == (8, 5)
        for i in range(8):
            rng = tree.rng(realization=i)
            for j in range(5):
                assert uniforms[i, j] == rng.random()

    def test_successive_draw_calls_continue_streams(self):
        one = processor().realization_block(0, 4)
        two = processor().realization_block(0, 4)
        combined = one.uniforms(6)
        first, second = two.uniforms(2), two.uniforms(4)
        assert np.array_equal(combined, np.hstack([first, second]))
        assert two.count == 6

    def test_states_and_generators_continue(self):
        block = processor().realization_block(0, 3)
        block.uniforms(2)
        generators = block.generators()
        scalars = [processor().realization(i) for i in range(3)]
        for rng in scalars:
            rng.random()
            rng.random()
        for left, right in zip(generators, scalars):
            assert left.state == right.state
            assert left.random() == right.random()

    def test_block_is_isolated_from_source_heads(self):
        heads = processor().realization_heads(0, 4)
        before = heads.copy()
        block = BatchStreams(heads)
        block.uniforms(3)
        assert np.array_equal(heads, before)

    def test_invalid_heads_shape(self):
        with pytest.raises(ConfigurationError):
            BatchStreams(np.zeros((4, 3), dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            BatchStreams(np.zeros(4, dtype=np.uint64))

    def test_even_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchStreams(np.ones((2, 4), dtype=np.uint64), multiplier=4)

    def test_negative_count_rejected(self):
        block = processor().realization_block(0, 2)
        with pytest.raises(ConfigurationError):
            block.uniforms(-1)

    def test_len_and_size(self):
        block = processor().realization_block(0, 7)
        assert len(block) == block.size == 7


class TestGeometricLimbs:
    @given(head=st.integers(1, 2**128 - 1), count=st.integers(0, 33))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_powers(self, head, count):
        ratio = StreamTree().jump_multipliers[2]
        rows = geometric_limbs(head, ratio, count)
        value = head
        for i in range(count):
            assert limbs_to_int(rows[i]) == value
            value = (value * ratio) % 2**128


class TestBlockDelegation:
    """Lcg128.block must be bit-identical across the vector threshold."""

    @pytest.mark.parametrize("size", [
        1, 5, VECTOR_BLOCK_THRESHOLD - 1, VECTOR_BLOCK_THRESHOLD,
        VECTOR_BLOCK_THRESHOLD + 1, 2 * VECTOR_BLOCK_THRESHOLD + 7])
    def test_block_values_and_state(self, size):
        fast = Lcg128(123456789)
        slow = Lcg128(123456789)
        values = fast.block(size)
        expected = np.array([slow.random() for _ in range(size)])
        assert np.array_equal(values, expected)
        assert fast.state == slow.state
        assert fast.count == slow.count

    def test_block_then_scalar_continues(self):
        fast = Lcg128(43)
        slow = Lcg128(43)
        fast.block(VECTOR_BLOCK_THRESHOLD)
        for _ in range(VECTOR_BLOCK_THRESHOLD):
            slow.random()
        assert fast.random() == slow.random()
