"""Tests for the parmonc() public entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc, rnd128
from repro.exceptions import ConfigurationError, ResumeError
from repro.rng.multiplier import LeapSet
from repro.runtime.files import DataDirectory, write_genparam_file


def half(rng):
    return rng.random()


class TestBasicApi:
    def test_scalar_problem(self, tmp_path):
        result = parmonc(half, maxsv=1000, workdir=tmp_path)
        assert result.total_volume == 1000
        assert 0.4 < result.estimates.mean[0, 0] < 0.6

    def test_paper_style_signature(self, tmp_path):
        # Mirrors the C example: parmoncc(difftraj, &nrow, &ncol,
        # &maxsv, &res, &seqnum, &perpass, &peraver).
        def matrix_realization(rng):
            return np.array([[rng.random(), rng.random()]] * 3)

        result = parmonc(matrix_realization, 3, 2, 300, 0, 0, 1.0, 5.0,
                         processors=2, workdir=tmp_path)
        assert result.estimates.shape == (3, 2)
        assert result.total_volume == 300

    def test_zero_argument_routine_with_global_rnd128(self, tmp_path):
        def paper_style():
            a = rnd128()
            return a * a

        result = parmonc(paper_style, maxsv=500, processors=2,
                         workdir=tmp_path)
        # Must equal the explicit-rng version exactly.
        explicit = parmonc(lambda rng: rng.random() ** 2, maxsv=500,
                           processors=2, workdir=tmp_path / "b")
        assert result.estimates.mean[0, 0] == explicit.estimates.mean[0, 0]

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            parmonc(half, maxsv=10, backend="quantum", workdir=tmp_path)

    def test_invalid_config_propagates(self, tmp_path):
        with pytest.raises(ConfigurationError):
            parmonc(half, maxsv=0, workdir=tmp_path)

    def test_use_files_false_keeps_directory_clean(self, tmp_path):
        parmonc(half, maxsv=10, workdir=tmp_path, use_files=False)
        assert list(tmp_path.iterdir()) == []


class TestGenparamIntegration:
    def test_genparam_file_overrides_defaults(self, tmp_path):
        leaps = LeapSet(experiment_exponent=30, processor_exponent=20,
                        realization_exponent=10)
        write_genparam_file(tmp_path, 30, 20, 10, leaps.multipliers())
        # The custom hierarchy only supports 2**10 processors... and
        # realization streams only 2**10 long; verify it is honoured by
        # checking that a capacity violation is detected.
        with pytest.raises(ConfigurationError):
            parmonc(half, maxsv=10, processors=2 ** 10 + 1,
                    workdir=tmp_path)

    def test_explicit_leaps_beat_genparam_file(self, tmp_path):
        write_genparam_file(
            tmp_path, 30, 20, 10,
            LeapSet(30, 20, 10).multipliers())
        result = parmonc(half, maxsv=10, processors=2,
                         leaps=LeapSet(), workdir=tmp_path)
        assert result.config.leaps.experiment_exponent == 115


class TestResumptionViaApi:
    def test_res1_accumulates(self, tmp_path):
        first = parmonc(half, maxsv=400, processors=2, workdir=tmp_path)
        second = parmonc(half, maxsv=600, res=1, seqnum=1, processors=2,
                         workdir=tmp_path)
        assert first.total_volume == 400
        assert second.total_volume == 1000
        assert second.sessions == 2

    def test_res1_requires_previous(self, tmp_path):
        with pytest.raises(ResumeError):
            parmonc(half, maxsv=10, res=1, seqnum=1, workdir=tmp_path)

    def test_res1_same_seqnum_rejected(self, tmp_path):
        parmonc(half, maxsv=10, workdir=tmp_path, seqnum=0)
        with pytest.raises(ResumeError):
            parmonc(half, maxsv=10, res=1, seqnum=0, workdir=tmp_path)

    def test_res0_clears_previous_state(self, tmp_path):
        parmonc(half, maxsv=400, processors=2, workdir=tmp_path)
        fresh = parmonc(half, maxsv=100, processors=2, workdir=tmp_path,
                        res=0)
        assert fresh.total_volume == 100
        assert fresh.sessions == 1

    def test_registry_records_experiments(self, tmp_path):
        parmonc(half, maxsv=10, workdir=tmp_path)
        parmonc(half, maxsv=10, res=1, seqnum=3, workdir=tmp_path)
        registry = DataDirectory(tmp_path).read_registry()
        assert len(registry) == 2
        assert "seqnum=3" in registry[1]


class TestCrossBackendEquivalence:
    def test_all_backends_identical_estimates(self, tmp_path):
        results = {}
        for backend in ("sequential", "multiprocess", "simcluster"):
            results[backend] = parmonc(
                half, maxsv=120, processors=3, backend=backend,
                workdir=tmp_path / backend)
        reference = results["sequential"].estimates
        for backend in ("multiprocess", "simcluster"):
            assert np.array_equal(results[backend].estimates.mean,
                                  reference.mean), backend
            assert np.array_equal(results[backend].estimates.abs_error,
                                  reference.abs_error), backend

    def test_estimates_independent_of_processor_count(self, tmp_path):
        # Different M partitions the same maxsv across different
        # processor streams, so the *sample* differs — but volumes and
        # convergence behaviour must match; with the same M the result
        # is identical regardless of backend (checked above).  Here:
        # same M, different perpass must be bit-identical.
        fast = parmonc(half, maxsv=200, processors=2, perpass=0.0,
                       workdir=tmp_path / "a")
        slow = parmonc(half, maxsv=200, processors=2, perpass=100.0,
                       workdir=tmp_path / "b")
        assert np.array_equal(fast.estimates.mean, slow.estimates.mean)
