"""Tests for MonteCarloRun, the session lifecycle wrapper."""

from __future__ import annotations

import pytest

from repro import MonteCarloRun
from repro.exceptions import ConfigurationError, ResumeError


def cube(rng):
    return rng.random() ** 3


class TestLifecycle:
    def test_run_then_resume(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path, processors=2)
        first = run.run(maxsv=300)
        second = run.resume(maxsv=300)
        assert first.total_volume == 300
        assert second.total_volume == 600
        assert run.last_result is second

    def test_resume_picks_fresh_seqnum(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        run.run(maxsv=50)
        second = run.resume(maxsv=50)
        third = run.resume(maxsv=50)
        assert second.config.seqnum == 1
        assert third.config.seqnum == 2

    def test_resume_respects_explicit_seqnum(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        run.run(maxsv=50)
        resumed = run.resume(maxsv=50, seqnum=7)
        assert resumed.config.seqnum == 7

    def test_resume_without_run_rejected(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        with pytest.raises(ResumeError):
            run.resume(maxsv=10)

    def test_run_discards_previous_state(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        run.run(maxsv=100)
        fresh = run.run(maxsv=40)
        assert fresh.total_volume == 40

    def test_defaults_forwarded(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path, processors=3,
                            perpass=2.0)
        result = run.run(maxsv=30)
        assert result.config.processors == 3
        assert result.config.perpass == 2.0

    def test_overrides_beat_defaults(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path, processors=3)
        result = run.run(maxsv=30, processors=1)
        assert result.config.processors == 1

    def test_matrix_problem(self, tmp_path):
        import numpy as np
        run = MonteCarloRun(
            lambda rng: np.array([[rng.random()], [rng.random()]]),
            nrow=2, ncol=1, workdir=tmp_path)
        result = run.run(maxsv=100)
        assert result.estimates.shape == (2, 1)


class TestRunUntil:
    def test_reaches_target_error(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path, processors=2)
        result = run.run_until(target_abs_error=0.02,
                               session_volume=500, max_sessions=50)
        assert result.estimates.abs_error_max <= 0.02

    def test_continues_from_existing_state(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        run.run(maxsv=200)
        result = run.run_until(target_abs_error=0.05,
                               session_volume=200, max_sessions=20)
        assert result.total_volume >= 400  # at least one resume happened

    def test_session_cap_respected(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        result = run.run_until(target_abs_error=1e-9,
                               session_volume=50, max_sessions=3)
        assert result.total_volume == 150

    def test_validation(self, tmp_path):
        run = MonteCarloRun(cube, workdir=tmp_path)
        with pytest.raises(ConfigurationError):
            run.run_until(target_abs_error=0.0)
        with pytest.raises(ConfigurationError):
            run.run_until(target_abs_error=0.1, max_sessions=0)
