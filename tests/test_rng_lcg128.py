"""Tests for repro.rng.lcg128: the scalar reference generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, PeriodWarning
from repro.rng.lcg128 import Lcg128, TOP_SHIFT, state_to_unit
from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    MODULUS,
    RECOMMENDED_LIMIT,
    STATE_MASK,
)

odd_states = st.integers(min_value=0, max_value=STATE_MASK).map(
    lambda v: v | 1)


class TestRecurrence:
    def test_formula_6_first_steps(self):
        gen = Lcg128()
        state = 1
        for _ in range(10):
            state = state * BASE_MULTIPLIER % MODULUS
            assert gen.next_raw() == state

    def test_initial_state_is_one(self):
        assert Lcg128().state == 1

    def test_output_in_open_unit_interval(self):
        gen = Lcg128()
        for _ in range(1000):
            value = gen.random()
            assert 0.0 < value < 1.0

    def test_output_matches_top_53_bits(self):
        gen = Lcg128()
        raw = gen.jumped(0).next_raw()
        assert gen.random() == (raw >> TOP_SHIFT) * 2.0 ** -53

    def test_block_matches_scalar_draws(self):
        a = Lcg128()
        b = Lcg128()
        block = a.block(100)
        singles = [b.random() for _ in range(100)]
        assert np.array_equal(block, np.array(singles))

    def test_iteration_protocol(self):
        gen = Lcg128()
        reference = Lcg128()
        from itertools import islice
        values = list(islice(iter(gen), 5))
        assert values == [reference.random() for _ in range(5)]

    def test_deterministic_across_instances(self):
        assert Lcg128().block(50).tolist() == Lcg128().block(50).tolist()


class TestValidation:
    def test_even_state_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg128(state=2)

    def test_even_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg128(multiplier=4)

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg128(state=1.5)

    def test_state_wrapped_into_modulus(self):
        gen = Lcg128(state=MODULUS + 3)
        assert gen.state == 3

    def test_negative_block_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg128().block(-1)


class TestJumping:
    def test_jump_equals_stepping(self):
        stepped = Lcg128()
        for _ in range(137):
            stepped.next_raw()
        jumped = Lcg128()
        jumped.jump(137)
        assert jumped.state == stepped.state
        assert jumped.count == 137

    def test_jumped_does_not_mutate(self):
        gen = Lcg128()
        clone = gen.jumped(1000)
        assert gen.state == 1
        assert clone.state != 1
        assert clone.count == 0

    def test_jump_zero_is_identity(self):
        gen = Lcg128()
        gen.jump(0)
        assert gen.state == 1

    def test_negative_jump_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg128().jump(-5)

    @given(a=st.integers(min_value=0, max_value=10 ** 9),
           b=st.integers(min_value=0, max_value=10 ** 9))
    @settings(max_examples=40)
    def test_jump_composition(self, a, b):
        # jump(a) then jump(b) lands exactly where jump(a+b) does.
        split = Lcg128()
        split.jump(a)
        split.jump(b)
        direct = Lcg128()
        direct.jump(a + b)
        assert split.state == direct.state

    def test_spawn_matches_repeated_jump(self):
        leap = pow(BASE_MULTIPLIER, 1 << 10, MODULUS)
        gen = Lcg128()
        third = gen.spawn(3, leap)
        manual = gen.jumped(3 * (1 << 10))
        assert third.state == manual.state

    def test_spawn_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Lcg128().spawn(-1, BASE_MULTIPLIER)

    @given(state=odd_states)
    @settings(max_examples=30)
    def test_huge_jump_matches_modpow(self, state):
        gen = Lcg128(state)
        gen.jump(1 << 98)
        expected = state * pow(BASE_MULTIPLIER, 1 << 98, MODULUS) % MODULUS
        assert gen.state == expected


class TestStatePersistence:
    def test_getstate_setstate_roundtrip(self):
        gen = Lcg128()
        gen.block(77)
        saved = gen.getstate()
        continuation = [gen.random() for _ in range(10)]
        restored = Lcg128()
        restored.setstate(saved)
        assert [restored.random() for _ in range(10)] == continuation
        assert restored.count == 87

    def test_setstate_rejects_even_state(self):
        gen = Lcg128()
        with pytest.raises(ConfigurationError):
            gen.setstate((2, BASE_MULTIPLIER, 0))

    def test_setstate_rejects_negative_count(self):
        gen = Lcg128()
        with pytest.raises(ConfigurationError):
            gen.setstate((1, BASE_MULTIPLIER, -1))

    def test_equality_is_positional(self):
        a = Lcg128()
        b = Lcg128()
        assert a == b
        a.next_raw()
        assert a != b
        b.next_raw()
        assert a == b

    def test_hashable(self):
        assert len({Lcg128(), Lcg128()}) == 1

    def test_repr_mentions_state(self):
        assert "state=" in repr(Lcg128())


class TestPeriodWarning:
    def test_warning_at_recommended_limit(self):
        gen = Lcg128()
        # Teleport the counter just below the half-period boundary.
        gen.setstate((gen.state, gen.multiplier, RECOMMENDED_LIMIT - 1))
        with pytest.warns(PeriodWarning):
            gen.random()

    def test_warning_emitted_once(self):
        gen = Lcg128()
        gen.setstate((gen.state, gen.multiplier, RECOMMENDED_LIMIT - 1))
        with pytest.warns(PeriodWarning):
            gen.random()
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            gen.random()  # must not warn again

    def test_restored_past_limit_does_not_rewarn(self):
        gen = Lcg128()
        gen.setstate((1, BASE_MULTIPLIER, RECOMMENDED_LIMIT + 5))
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            gen.random()


class TestStateToUnit:
    def test_maps_top_bits(self):
        state = 0b101 << TOP_SHIFT
        assert state_to_unit(state) == 5 * 2.0 ** -53

    def test_zero_top_bits_clamped(self):
        assert state_to_unit(1) == 2.0 ** -53

    def test_maximal_state_below_one(self):
        assert state_to_unit(STATE_MASK) < 1.0

    @given(state=st.integers(min_value=0, max_value=STATE_MASK))
    @settings(max_examples=200)
    def test_always_in_open_interval(self, state):
        assert 0.0 < state_to_unit(state) < 1.0
