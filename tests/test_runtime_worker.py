"""Tests for repro.runtime.worker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, RealizationError
from repro.rng import current_rnd128, rnd128
from repro.rng.streams import StreamTree
from repro.runtime.config import RunConfig
from repro.runtime.worker import adapt_realization, run_worker


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestAdaptRealization:
    def test_one_argument_passthrough(self):
        def routine(rng):
            return rng.random()
        adapted = adapt_realization(routine)
        assert adapted is routine

    def test_zero_argument_installs_global_rng(self, tree):
        def routine():
            return rnd128()
        adapted = adapt_realization(routine)
        generator = tree.rng(0, 0, 5)
        expected = tree.rng(0, 0, 5).random()
        assert adapted(generator) == expected
        # The global generator now *is* the supplied one.
        assert current_rnd128() is generator

    def test_default_arguments_do_not_count(self):
        def routine(rng, scale=2.0):
            return rng.random() * scale
        adapted = adapt_realization(routine)
        assert adapted is routine

    def test_two_required_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            adapt_realization(lambda rng, extra: 0.0)

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            adapt_realization(42)


class TestRunWorker:
    def test_simulates_exactly_quota(self):
        config = RunConfig(maxsv=100, processors=1)
        messages = []
        accumulator = run_worker(lambda rng: rng.random(), config, 0, 17,
                                 send=messages.append)
        assert accumulator.volume == 17
        assert messages[-1].final
        assert messages[-1].snapshot.volume == 17

    def test_uses_correct_stream_coordinates(self):
        # Worker rank 1 of experiment 3 must consume exactly the
        # realization streams (3, 1, 0), (3, 1, 1), ...
        config = RunConfig(maxsv=100, processors=2, seqnum=3)
        values = []
        run_worker(lambda rng: values.append(rng.random()) or values[-1],
                   config, 1, 3, send=lambda m: None)
        tree = StreamTree()
        expected = [tree.rng(3, 1, r).random() for r in range(3)]
        assert values == expected

    def test_perpass_zero_sends_every_realization(self):
        config = RunConfig(maxsv=100, processors=1, perpass=0.0)
        messages = []
        run_worker(lambda rng: 1.0, config, 0, 5, send=messages.append)
        # 5 per-realization messages plus the final one.
        assert len(messages) == 6
        assert [m.snapshot.volume for m in messages] == [1, 2, 3, 4, 5, 5]

    def test_perpass_throttles_sends(self):
        clock = FakeClock()
        config = RunConfig(maxsv=100, processors=1, perpass=10.0)

        def routine(rng):
            clock.advance(1.0)  # each realization takes 1 virtual second
            return 1.0

        messages = []
        run_worker(routine, config, 0, 25, send=messages.append,
                   clock=clock)
        # Sends at t=10 and t=20 (plus final): 3 messages.
        assert len(messages) == 3
        assert messages[-1].final

    def test_deadline_stops_early(self):
        clock = FakeClock()
        config = RunConfig(maxsv=1000, processors=1, perpass=1000.0)

        def routine(rng):
            clock.advance(1.0)
            return 1.0

        messages = []
        accumulator = run_worker(routine, config, 0, 1000,
                                 send=messages.append, clock=clock,
                                 deadline=5.0)
        assert accumulator.volume == 5
        assert messages[-1].final

    def test_compute_time_recorded(self):
        clock = FakeClock()
        config = RunConfig(maxsv=10, processors=1)

        def routine(rng):
            clock.advance(2.0)
            return 1.0

        accumulator = run_worker(routine, config, 0, 4,
                                 send=lambda m: None, clock=clock)
        assert accumulator.compute_time == pytest.approx(8.0)

    def test_matrix_realizations(self):
        config = RunConfig(nrow=2, ncol=2, maxsv=10, processors=1)
        accumulator = run_worker(
            lambda rng: np.full((2, 2), rng.random()), config, 0, 4,
            send=lambda m: None)
        assert accumulator.shape == (2, 2)
        assert accumulator.volume == 4

    def test_user_exception_wrapped(self):
        config = RunConfig(maxsv=10, processors=1, seqnum=2)

        def broken(rng):
            raise ValueError("boom")

        with pytest.raises(RealizationError) as info:
            run_worker(broken, config, 1, 3, send=lambda m: None)
        assert info.value.experiment == 2
        assert info.value.processor == 1
        assert info.value.realization == 0
        assert isinstance(info.value.__cause__, ValueError)

    def test_zero_quota_sends_only_final(self):
        config = RunConfig(maxsv=10, processors=1)
        messages = []
        accumulator = run_worker(lambda rng: 1.0, config, 0, 0,
                                 send=messages.append)
        assert accumulator.volume == 0
        assert len(messages) == 1
        assert messages[0].final

    def test_negative_quota_rejected(self):
        config = RunConfig(maxsv=10, processors=1)
        with pytest.raises(ConfigurationError):
            run_worker(lambda rng: 1.0, config, 0, -1, send=lambda m: None)

    def test_determinism_across_runs(self):
        config = RunConfig(maxsv=10, processors=1)
        first = run_worker(lambda rng: rng.random(), config, 0, 10,
                           send=lambda m: None)
        second = run_worker(lambda rng: rng.random(), config, 0, 10,
                            send=lambda m: None)
        assert np.array_equal(first.snapshot().sum1,
                              second.snapshot().sum1)
