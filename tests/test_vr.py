"""Tests for repro.vr: variance reduction wrappers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import parmonc
from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128
from repro.vr import (
    AntitheticStream,
    StratifiedRealization,
    StratifiedStream,
    antithetic_realization,
    control_variate_realization,
    exponential_proposal,
    fit_control_coefficient,
    importance_realization,
    polynomial_proposal,
)

EXACT_EXP = math.e - 1.0  # integral_0^1 exp(x) dx


def exp_realization(rng):
    return math.exp(rng.random())


def estimate(routine, maxsv=10_000, seqnum=0):
    return parmonc(routine, maxsv=maxsv, seqnum=seqnum, processors=2,
                   use_files=False).estimates


class TestAntithetic:
    def test_stream_mirrors_draws(self):
        inner = Lcg128()
        reference = Lcg128()
        mirror = AntitheticStream(inner)
        for _ in range(50):
            assert mirror.random() == 1.0 - reference.random()

    def test_unbiased(self):
        estimates = estimate(antithetic_realization(exp_realization))
        assert abs(estimates.mean[0, 0] - EXACT_EXP) \
            <= 3 * estimates.abs_error[0, 0] + 1e-9

    def test_variance_reduced_for_monotone_integrand(self):
        plain = estimate(exp_realization)
        anti = estimate(antithetic_realization(exp_realization))
        assert anti.variance[0, 0] < 0.1 * plain.variance[0, 0]

    def test_deterministic_per_stream(self, tree):
        wrapped = antithetic_realization(exp_realization)
        a = wrapped(tree.rng(0, 0, 7))
        b = wrapped(tree.rng(0, 0, 7))
        assert np.array_equal(a, b)

    def test_symmetric_integrand_gives_zero_variance(self):
        # f(U) + f(1-U) constant => the pair average is deterministic.
        linear = antithetic_realization(lambda rng: rng.random())
        estimates = estimate(linear, maxsv=100)
        assert estimates.mean[0, 0] == pytest.approx(0.5)
        assert estimates.variance[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_matrix_realizations_supported(self, tree):
        wrapped = antithetic_realization(
            lambda rng: np.array([[rng.random(), rng.random() ** 2]]))
        value = wrapped(tree.rng(0, 0, 0))
        assert value.shape == (1, 2)

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            antithetic_realization(42)


class TestControlVariate:
    def test_fit_finds_strong_correlation(self):
        beta, correlation = fit_control_coefficient(
            exp_realization, lambda rng: rng.random())
        assert correlation > 0.95
        # beta ~ Cov(e^U, U)/Var(U) = (12)(0.5(e-1)... just positivity
        # and magnitude sanity:
        assert 1.0 < beta < 2.5

    def test_adjusted_estimator_unbiased_and_tighter(self):
        def control(rng):
            return rng.random()
        beta, _ = fit_control_coefficient(exp_realization, control)
        adjusted = control_variate_realization(
            exp_realization, control, 0.5, beta)
        plain = estimate(exp_realization)
        tightened = estimate(adjusted)
        assert abs(tightened.mean[0, 0] - EXACT_EXP) \
            <= 3 * tightened.abs_error[0, 0] + 1e-9
        assert tightened.variance[0, 0] < 0.05 * plain.variance[0, 0]

    def test_control_replays_same_uniforms(self, tree):
        seen = []
        adjusted = control_variate_realization(
            lambda rng: seen.append(rng.random()) or seen[-1],
            lambda rng: seen.append(rng.random()) or seen[-1],
            0.5, 1.0)
        adjusted(tree.rng(0, 0, 0))
        assert seen[0] == seen[1]

    def test_constant_control_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_control_coefficient(exp_realization, lambda rng: 1.0)

    def test_tiny_pilot_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_control_coefficient(exp_realization,
                                    lambda rng: rng.random(),
                                    pilot_size=5)


class TestStratified:
    def test_stream_rescales_only_first_draw(self):
        inner = Lcg128()
        reference = Lcg128()
        stream = StratifiedStream(inner, stratum=3, strata=4)
        first = stream.random()
        assert 0.75 <= first < 1.0
        assert first == pytest.approx((3 + reference.random()) / 4)
        assert stream.random() == reference.random()

    def test_cycle_covers_all_strata(self, tree):
        wrapped = StratifiedRealization(lambda rng: rng.random(), 4)
        cells = sorted(int(wrapped(tree.rng(0, 0, i)) * 4)
                       for i in range(4))
        assert cells == [0, 1, 2, 3]

    def test_unbiased(self):
        wrapped = StratifiedRealization(exp_realization, 8)
        estimates = estimate(wrapped, maxsv=8_000)
        assert abs(estimates.mean[0, 0] - EXACT_EXP) < 0.02

    def test_reduces_estimate_spread_across_experiments(self):
        def spread(factory):
            means = [estimate(factory(), maxsv=128, seqnum=s).mean[0, 0]
                     for s in range(25)]
            return float(np.var(means))

        plain_spread = spread(lambda: exp_realization)
        stratified_spread = spread(
            lambda: StratifiedRealization(exp_realization, 16))
        assert stratified_spread < plain_spread / 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StratifiedRealization(exp_realization, 1)
        with pytest.raises(ConfigurationError):
            StratifiedStream(Lcg128(), stratum=4, strata=4)
        with pytest.raises(ConfigurationError):
            StratifiedRealization(7, 4)


class TestImportance:
    def test_polynomial_proposal_samples_match_density(self, tree):
        proposal = polynomial_proposal(2.0)
        generator = tree.rng(0, 0, 0)
        samples = np.array([proposal.inverse_cdf(generator.random())
                            for _ in range(20_000)])
        # E X under p(x) = 3 x**2 is 3/4.
        assert samples.mean() == pytest.approx(0.75, abs=0.01)

    def test_perfectly_matched_proposal_zero_variance(self):
        # Integrand proportional to the proposal density => constant
        # weights => zero variance.
        def integrand(x):
            return 3.0 * x * x
        wrapped = importance_realization(integrand,
                                         polynomial_proposal(2.0))
        estimates = estimate(wrapped, maxsv=500)
        assert estimates.mean[0, 0] == pytest.approx(1.0)
        assert estimates.variance[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_unbiased_with_mismatched_proposal(self):
        wrapped = importance_realization(math.exp,
                                         polynomial_proposal(1.0))
        estimates = estimate(wrapped, maxsv=20_000)
        assert abs(estimates.mean[0, 0] - EXACT_EXP) \
            <= 3 * estimates.abs_error[0, 0] + 1e-9

    def test_exponential_proposal_reduces_variance_for_decaying_f(self):
        def integrand(x):
            return math.exp(-8.0 * x)
        plain = estimate(lambda rng: integrand(rng.random()),
                         maxsv=10_000)
        weighted = estimate(
            importance_realization(integrand, exponential_proposal(8.0)),
            maxsv=10_000)
        assert weighted.variance[0, 0] < 0.05 * plain.variance[0, 0]
        assert abs(weighted.mean[0, 0] - (1 - math.exp(-8.0)) / 8.0) \
            < 0.001

    def test_mirrored_polynomial(self, tree):
        proposal = polynomial_proposal(3.0, mirrored=True)
        generator = tree.rng(0, 0, 0)
        samples = np.array([proposal.inverse_cdf(generator.random())
                            for _ in range(5_000)])
        assert samples.mean() < 0.35  # mass near 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            polynomial_proposal(-1.0)
        with pytest.raises(ConfigurationError):
            exponential_proposal(0.0)
