"""Tests for repro.cluster.events."""

from __future__ import annotations

import pytest

from repro.cluster.events import EventQueue
from repro.exceptions import ConfigurationError


class TestEventQueue:
    def test_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda t: fired.append(("c", t)))
        queue.schedule(1.0, lambda t: fired.append(("a", t)))
        queue.schedule(2.0, lambda t: fired.append(("b", t)))
        queue.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_fifo_on_ties(self):
        queue = EventQueue()
        fired = []
        for label in "abcde":
            queue.schedule(1.0, lambda t, name=label: fired.append(name))
        queue.run()
        assert fired == list("abcde")

    def test_now_tracks_dispatch(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: None)
        assert queue.now == 0.0
        queue.step()
        assert queue.now == 5.0

    def test_step_on_empty(self):
        assert EventQueue().step() is False

    def test_scheduling_from_callback(self):
        queue = EventQueue()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3.0:
                queue.schedule(t + 1.0, chain)

        queue.schedule(1.0, chain)
        queue.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: None)
        queue.step()
        with pytest.raises(ConfigurationError):
            queue.schedule(4.0, lambda t: None)

    def test_run_until_leaves_future_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda t: fired.append(t))
        queue.schedule(10.0, lambda t: fired.append(t))
        final = queue.run(until=5.0)
        assert fired == [1.0]
        assert final == 5.0
        assert len(queue) == 1

    def test_len(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda t: None)
        queue.schedule(2.0, lambda t: None)
        assert len(queue) == 2
