"""RunResult.summary() and throughput stress tests."""

from __future__ import annotations

import time

import pytest

from repro import parmonc


class TestSummary:
    def test_summary_mentions_key_figures(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=100,
                         processors=2, workdir=tmp_path)
        text = result.summary()
        assert "L=100" in text
        assert "eps_max" in text
        assert "rho_max" in text
        assert "messages" in text
        assert str(tmp_path) in text

    def test_resumed_summary_counts_sessions(self, tmp_path):
        parmonc(lambda rng: rng.random(), maxsv=50, workdir=tmp_path)
        result = parmonc(lambda rng: rng.random(), maxsv=50, res=1,
                         seqnum=1, workdir=tmp_path)
        text = result.summary()
        assert "session 2 (resumed)" in text
        assert "added 50 realizations" in text

    def test_accounting_only_summary(self, tmp_path):
        # Accounting-only runs keep zero-matrix books: the summary
        # renders with L and a zero error, without crashing on the
        # missing user routine.
        result = parmonc(None, maxsv=10, processors=2,
                         backend="simcluster", use_files=False,
                         workdir=tmp_path, execute_realizations=False)
        text = result.summary()
        assert "L=10" in text
        assert "T_comp" in text


class TestThroughputStress:
    @pytest.mark.slow
    def test_quarter_million_realizations(self, tmp_path):
        # A volume big enough to surface quadratic bookkeeping bugs.
        started = time.monotonic()
        result = parmonc(lambda rng: rng.random(), maxsv=250_000,
                         processors=4, workdir=tmp_path)
        elapsed = time.monotonic() - started
        assert result.total_volume == 250_000
        assert abs(result.estimates.mean[0, 0] - 0.5) < 0.005
        # Sanity throughput bound: > 20k realizations/second.
        assert elapsed < 12.5, elapsed

    @pytest.mark.slow
    def test_wide_matrix_volume(self, tmp_path):
        import numpy as np
        result = parmonc(
            lambda rng: np.full((50, 20), rng.random()),
            nrow=50, ncol=20, maxsv=2_000, processors=2,
            workdir=tmp_path)
        assert result.estimates.shape == (50, 20)
        assert result.total_volume == 2_000
