"""Tests for repro.stats.compare and runtime logging hygiene."""

from __future__ import annotations

import logging
import math

import numpy as np
import pytest

from repro import parmonc
from repro.exceptions import ConfigurationError
from repro.stats import (
    compare_means,
    compare_variances,
    efficiency_gain,
)
from repro.stats.estimators import estimates_from_moments
from repro.vr import antithetic_realization


def estimates_of(values):
    values = np.asarray(values, dtype=np.float64)
    return estimates_from_moments(
        np.array([[values.sum()]]),
        np.array([[float(np.sum(values ** 2))]]), values.size)


class TestCompareMeans:
    def test_same_target_not_significant(self):
        plain = parmonc(lambda rng: rng.random() ** 2, maxsv=2000,
                        use_files=False).estimates
        reduced = parmonc(
            antithetic_realization(lambda rng: rng.random() ** 2),
            maxsv=1000, seqnum=1, use_files=False).estimates
        result = compare_means(plain, reduced)
        assert not result.significant, result

    def test_detects_bias(self):
        generator = np.random.default_rng(0)
        honest = estimates_of(generator.normal(0.0, 1.0, size=2000))
        biased = estimates_of(generator.normal(0.3, 1.0, size=2000))
        result = compare_means(honest, biased)
        assert result.significant

    def test_deterministic_estimators(self):
        a = estimates_of([2.0, 2.0, 2.0])
        b = estimates_of([2.0, 2.0])
        result = compare_means(a, b)
        assert result.p_value == 1.0
        c = estimates_of([3.0, 3.0])
        assert compare_means(a, c).significant

    def test_entry_bounds(self):
        a = estimates_of([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            compare_means(a, a, row=5)

    def test_needs_two_realizations(self):
        a = estimates_of([1.0])
        with pytest.raises(ConfigurationError):
            compare_means(a, a)

    def test_str_mentions_verdict(self):
        a = estimates_of([1.0, 2.0, 3.0])
        assert "significant" in str(compare_means(a, a))


class TestCompareVariances:
    def test_variance_reduction_is_significant(self):
        plain = parmonc(lambda rng: math.exp(rng.random()), maxsv=1000,
                        use_files=False).estimates
        reduced = parmonc(
            antithetic_realization(lambda rng: math.exp(rng.random())),
            maxsv=500, seqnum=1, use_files=False).estimates
        result = compare_variances(reduced, plain)
        assert result.significant
        assert result.statistic < 0.2

    def test_equal_variances_not_significant(self):
        generator = np.random.default_rng(7)
        a = estimates_of(generator.normal(size=4000))
        b = estimates_of(generator.normal(size=4000))
        assert not compare_variances(a, b).significant

    def test_zero_comparator_rejected(self):
        a = estimates_of([1.0, 2.0])
        constant = estimates_of([1.0, 1.0])
        with pytest.raises(ConfigurationError):
            compare_variances(a, constant)


class TestEfficiencyGain:
    def test_matches_variance_ratio_for_equal_cost(self):
        generator = np.random.default_rng(2)
        a = estimates_of(generator.normal(0, 1.0, size=1000))
        b = estimates_of(generator.normal(0, 3.0, size=1000))
        gain = efficiency_gain(a, b)
        assert gain == pytest.approx(
            b.variance[0, 0] / a.variance[0, 0])

    def test_cost_weighting(self):
        generator = np.random.default_rng(3)
        a = estimates_of(generator.normal(size=1000))
        b = estimates_of(generator.normal(size=1000))
        # Identical variance, but a costs 2x per realization.
        assert efficiency_gain(a, b, cost_a=2.0) \
            == pytest.approx(efficiency_gain(a, b) / 2.0)

    def test_zero_variance_is_infinite_gain(self):
        a = estimates_of([1.0, 1.0])
        b = estimates_of([0.0, 2.0])
        assert efficiency_gain(a, b) == math.inf

    def test_cost_validation(self):
        a = estimates_of([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            efficiency_gain(a, a, cost_a=0.0)


class TestRuntimeLogging:
    def test_session_start_logged(self, tmp_path, caplog):
        with caplog.at_level(logging.INFO, logger="repro.runtime"):
            parmonc(lambda rng: rng.random(), maxsv=10,
                    workdir=tmp_path)
        messages = [record.message for record in caplog.records]
        assert any("session 1 started" in message
                   for message in messages), messages

    def test_save_points_logged_at_debug(self, tmp_path, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.runtime"):
            parmonc(lambda rng: rng.random(), maxsv=10, peraver=0.0,
                    workdir=tmp_path)
        assert any("save-point" in record.message
                   for record in caplog.records)
