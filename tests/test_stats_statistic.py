"""Tests for the mergeable-statistic abstraction (repro.stats.statistic).

Covers the registry, the normalization of statistic specs, and every
built-in implementation: scalar/batch bit-identity, payload round-trips,
merge semantics, and validation of malformed input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import MOMENT_WORDS_PER_ENTRY, MomentAccumulator
from repro.stats.merging import merge_statistic_maps, merge_statistics
from repro.stats.statistic import (
    DEFAULT_STATISTICS,
    Counter,
    Covariance,
    Extrema,
    Histogram,
    Moments,
    Statistic,
    StatisticSet,
    create_statistic,
    normalize_statistics,
    payload_map,
    register_statistic,
    statistic_class,
    statistic_from_payload,
    statistic_kinds,
    statistics_from_payload_map,
)

EXTRA_KINDS = ("covariance", "histogram", "extrema", "counter")


def _sample(count: int, nrow: int = 2, ncol: int = 3,
            seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(scale=2.0, size=(count, nrow, ncol))


class TestRegistry:
    def test_builtins_registered(self):
        kinds = statistic_kinds()
        assert "moments" in kinds
        for kind in EXTRA_KINDS:
            assert kind in kinds

    def test_statistic_class_roundtrip(self):
        for kind in ("moments",) + EXTRA_KINDS:
            cls = statistic_class(kind)
            assert cls.kind == kind
            statistic = create_statistic(kind, 2, 2)
            assert isinstance(statistic, cls)
            assert statistic.shape == (2, 2)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError, match="unknown statistic"):
            statistic_class("no-such-kind")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            @register_statistic
            class Impostor(Statistic):  # noqa: F811
                kind = "histogram"

    def test_custom_kind_registers_and_runs(self):
        @register_statistic
        class AbsSum(Statistic):
            kind = "test-abs-sum"

            def __init__(self, nrow, ncol):
                super().__init__(nrow, ncol)
                self._total = np.zeros((nrow, ncol))

            def _update(self, matrices):
                self._total += np.abs(matrices).sum(axis=0)

            def _merge(self, other):
                self._total += other._total

            def _payload(self):
                return {"total": self._total.tolist()}

            def _restore(self, payload):
                self._total = np.asarray(payload["total"], dtype=np.float64)

            def _words(self):
                return self._size + 1

        try:
            statistic = create_statistic("test-abs-sum", 1, 1)
            statistic.update(-2.0)
            statistic.update(3.0)
            assert statistic.volume == 2
            restored = statistic_from_payload(statistic.to_payload())
            assert restored.to_payload() == statistic.to_payload()
            assert normalize_statistics(["test-abs-sum"]) == (
                "moments", "test-abs-sum")
        finally:
            from repro.stats import statistic as module
            module._REGISTRY.pop("test-abs-sum", None)


class TestNormalizeStatistics:
    def test_default(self):
        assert normalize_statistics(None) == DEFAULT_STATISTICS
        assert normalize_statistics(()) == DEFAULT_STATISTICS

    def test_moments_always_first_and_deduped(self):
        assert normalize_statistics(["histogram", "moments",
                                     "histogram"]) == (
            "moments", "histogram")

    def test_comma_string(self):
        assert normalize_statistics("covariance, extrema") == (
            "moments", "covariance", "extrema")

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            normalize_statistics(["bogus"])


class TestScalarBatchIdentity:
    """One batched update must equal the per-realization loop, bitwise."""

    @pytest.mark.parametrize("kind", EXTRA_KINDS)
    def test_batch_equals_scalar_loop(self, kind):
        matrices = _sample(37)
        scalar = create_statistic(kind, 2, 3)
        for matrix in matrices:
            scalar.update(matrix)
        batched = create_statistic(kind, 2, 3)
        batched.update(matrices, count=len(matrices))
        assert batched.volume == scalar.volume == 37
        assert batched.to_payload() == scalar.to_payload()

    def test_covariance_batch_widths_do_not_change_bits(self):
        matrices = _sample(101, 1, 2)
        whole = create_statistic("covariance", 1, 2)
        whole.update(matrices, count=101)
        pieces = create_statistic("covariance", 1, 2)
        for start in (0, 3, 50, 83):
            stop = {0: 3, 3: 50, 50: 83, 83: 101}[start]
            pieces.update(matrices[start:stop], count=stop - start)
        assert pieces.to_payload() == whole.to_payload()


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("kind", ("moments",) + EXTRA_KINDS)
    def test_roundtrip_preserves_payload(self, kind):
        statistic = create_statistic(kind, 2, 3)
        statistic.update(_sample(19), count=19)
        payload = statistic.to_payload()
        restored = statistic_from_payload(payload)
        assert restored.kind == kind
        assert restored.volume == 19
        assert restored.to_payload() == payload

    def test_empty_extrema_roundtrip(self):
        statistic = create_statistic("extrema", 2, 2)
        restored = statistic_from_payload(statistic.to_payload())
        assert restored.volume == 0

    @pytest.mark.parametrize("kind", EXTRA_KINDS)
    def test_malformed_payload_raises(self, kind):
        statistic = create_statistic(kind, 1, 2)
        statistic.update(np.array([[0.5, -0.5]]))
        payload = statistic.to_payload()
        del payload["volume"]
        with pytest.raises(ConfigurationError, match="malformed"):
            statistic_from_payload(payload)

    def test_wrong_kind_rejected(self):
        statistic = create_statistic("extrema", 1, 1)
        payload = statistic.to_payload()
        payload["kind"] = "histogram"
        with pytest.raises(ConfigurationError):
            Extrema.from_payload(payload)

    def test_negative_histogram_counts_rejected(self):
        statistic = create_statistic("histogram", 1, 1)
        statistic.update(0.25)
        payload = statistic.to_payload()
        payload["counts"][0][0] = -1
        with pytest.raises(ConfigurationError):
            statistic_from_payload(payload)

    def test_payload_map_helpers(self):
        statistics = {kind: create_statistic(kind, 1, 1)
                      for kind in EXTRA_KINDS}
        for statistic in statistics.values():
            statistic.update(0.5)
        payloads = payload_map(statistics)
        assert set(payloads) == set(EXTRA_KINDS)
        known, unknown = statistics_from_payload_map(payloads)
        assert set(known) == set(EXTRA_KINDS)
        assert unknown == ()
        payloads["mystery"] = {"kind": "mystery", "anything": 1}
        known, unknown = statistics_from_payload_map(payloads)
        assert unknown == ("mystery",)


class TestMerge:
    @pytest.mark.parametrize("kind", ("histogram", "extrema", "counter"))
    def test_integer_merge_is_exactly_the_union(self, kind):
        matrices = _sample(40)
        whole = create_statistic(kind, 2, 3)
        whole.update(matrices, count=40)
        left = create_statistic(kind, 2, 3)
        left.update(matrices[:17], count=17)
        right = create_statistic(kind, 2, 3)
        right.update(matrices[17:], count=23)
        left.merge(right)
        assert left.to_payload() == whole.to_payload()

    def test_covariance_merge_is_formula_exact(self):
        matrices = _sample(30, 1, 2)
        whole = create_statistic("covariance", 1, 2)
        whole.update(matrices, count=30)
        left = create_statistic("covariance", 1, 2)
        left.update(matrices[:11], count=11)
        right = create_statistic("covariance", 1, 2)
        right.update(matrices[11:], count=19)
        left.merge(right)
        assert left.volume == 30
        assert np.allclose(left.accumulator.covariance(),
                           whole.accumulator.covariance())

    def test_kind_mismatch_raises(self):
        histogram = create_statistic("histogram", 1, 1)
        with pytest.raises(ConfigurationError):
            histogram.merge(create_statistic("extrema", 1, 1))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            create_statistic("extrema", 1, 1).merge(
                create_statistic("extrema", 2, 2))

    def test_histogram_binning_mismatch_raises(self):
        class Narrow(Histogram):
            DEFAULT_LO = 0.0
            DEFAULT_HI = 1.0

        with pytest.raises(ConfigurationError):
            create_statistic("histogram", 1, 1).merge(Narrow(1, 1))

    def test_merge_statistics_helper(self):
        parts = []
        for seed in (1, 2, 3):
            statistic = create_statistic("counter", 1, 1)
            statistic.update(_sample(5, 1, 1, seed=seed), count=5)
            parts.append(statistic)
        merged = merge_statistics(parts)
        assert merged.volume == 15
        assert parts[0].volume == 5  # inputs untouched

    def test_merge_statistic_maps_union(self):
        first = {"extrema": create_statistic("extrema", 1, 1)}
        first["extrema"].update(1.0)
        second = {"extrema": create_statistic("extrema", 1, 1),
                  "counter": create_statistic("counter", 1, 1)}
        second["extrema"].update(-3.0)
        second["counter"].update(-3.0)
        merged = merge_statistic_maps([first, second])
        assert merged["extrema"].volume == 2
        assert merged["extrema"].minimum[0, 0] == -3.0
        assert merged["counter"].volume == 1
        assert first["extrema"].volume == 1  # inputs untouched


class TestImplementations:
    def test_histogram_under_and_overflow(self):
        statistic = Histogram(1, 1)
        statistic.update(np.array([[[-100.0]], [[100.0]], [[0.0]]]),
                         count=3)
        assert statistic.underflow == 1
        assert statistic.overflow == 1
        assert statistic.bin_counts.sum() == 1
        assert statistic.volume == 3

    def test_extrema_bounds(self):
        statistic = Extrema(1, 2)
        statistic.update(np.array([[1.0, -2.0]]))
        statistic.update(np.array([[-5.0, 7.0]]))
        assert statistic.minimum.tolist() == [[-5.0, -2.0]]
        assert statistic.maximum.tolist() == [[1.0, 7.0]]

    def test_counter_signs(self):
        statistic = Counter(1, 1)
        statistic.update(np.array([[[-1.0]], [[0.0]], [[2.0]], [[3.0]]]),
                         count=4)
        assert statistic.negative[0, 0] == 1
        assert statistic.zero[0, 0] == 1
        assert statistic.positive[0, 0] == 2

    def test_nonfinite_rejected(self):
        for kind in EXTRA_KINDS:
            statistic = create_statistic(kind, 1, 1)
            with pytest.raises(Exception):
                statistic.update(float("nan"))
            assert statistic.volume == 0

    def test_nbytes_model(self):
        assert create_statistic("moments", 10, 2).nbytes == (
            8 * MOMENT_WORDS_PER_ENTRY * 20)
        histogram = Histogram(1, 1)
        assert histogram.nbytes == 8 * (histogram.bins + 2 + 3)
        assert Covariance(1, 2).nbytes == 8 * (2 + 4 + 1)
        assert Extrema(2, 2).nbytes == 8 * (2 * 4 + 1)
        assert Counter(2, 2).nbytes == 8 * (3 * 4 + 1)

    def test_moments_wraps_accumulator_bitwise(self):
        matrices = _sample(25, 1, 1)
        statistic = Moments(1, 1)
        reference = MomentAccumulator(1, 1)
        for matrix in matrices:
            statistic.update(matrix)
            reference.add(matrix)
        ours = statistic.moment_snapshot()
        theirs = reference.snapshot()
        assert np.array_equal(ours.sum1, theirs.sum1)
        assert np.array_equal(ours.sum2, theirs.sum2)
        assert ours.volume == theirs.volume


class TestStatisticSet:
    def test_for_run_orders_moments_first(self):
        statistics = StatisticSet.for_run(
            ("moments", "histogram", "extrema"), 1, 2)
        assert statistics.kinds == ("moments", "histogram", "extrema")
        assert isinstance(statistics.moments, MomentAccumulator)
        assert len(statistics.extras) == 2

    def test_moments_only_snapshot_is_none(self):
        statistics = StatisticSet.for_run(DEFAULT_STATISTICS, 1, 1)
        statistics.update(0.5)
        assert statistics.extras_snapshot() is None

    def test_update_feeds_every_statistic(self):
        statistics = StatisticSet.for_run(
            ("moments", "counter", "extrema"), 1, 1)
        statistics.update(-1.5)
        statistics.update_batch(np.array([[[0.5]], [[2.5]]]))
        assert statistics.moments.volume == 3
        snapshot = statistics.extras_snapshot()
        assert snapshot["counter"].volume == 3
        assert snapshot["extrema"].maximum[0, 0] == 2.5

    def test_invalid_update_leaves_extras_untouched(self):
        statistics = StatisticSet.for_run(("moments", "counter"), 1, 1)
        with pytest.raises(Exception):
            statistics.update(float("inf"))
        assert statistics.moments.volume == 0
        assert statistics.extras[0].volume == 0
