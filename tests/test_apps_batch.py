"""Tests for the vectorized batch kernels of the example applications.

Each ``make_batch_realization`` must be bit-identical to its scalar
``make_realization`` — same substreams, same draws, same floating-point
arithmetic — so a batched application run reproduces the scalar run's
estimates exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import finance, integration
from repro.rng.streams import StreamTree
from repro.runtime.config import RunConfig
from repro.runtime.sequential import run_sequential

PROBLEMS = {
    "quarter_circle": integration.unit_square_quarter_circle,
    "product_of_powers": integration.product_of_powers,
    "oscillatory_genz": integration.oscillatory_genz,
    "exponential_peak": integration.exponential_peak,
}


def run(routine, nrow=1, ncol=1, maxsv=200):
    config = RunConfig(maxsv=maxsv, nrow=nrow, ncol=ncol, seqnum=1,
                       perpass=0.0)
    return run_sequential(routine, config, use_files=False)


def assert_identical(left, right):
    assert np.array_equal(left.estimates.mean, right.estimates.mean)
    assert np.array_equal(left.estimates.abs_error,
                          right.estimates.abs_error)


class TestIntegrationBatch:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_bit_identical_to_scalar(self, name):
        problem = PROBLEMS[name]()
        scalar = run(integration.make_realization(problem))
        batched = run(integration.make_batch_realization(problem, 64))
        assert_identical(scalar, batched)

    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_sample_points_match_sample_point(self, name):
        problem = PROBLEMS[name]()
        tree = StreamTree()
        block = tree.experiment(0).processor(0).realization_block(0, 16)
        points = problem.sample_points(block)
        assert points.shape == (16, problem.dimension)
        for i in range(16):
            rng = tree.rng(realization=i)
            assert np.array_equal(points[i], problem.sample_point(rng))

    def test_batch_integrand_consistent_with_scalar(self):
        """The vectorized integrands must equal the scalar ones exactly."""
        for name, factory in PROBLEMS.items():
            problem = factory()
            if problem.batch_integrand is None:
                continue
            rng = np.random.default_rng(5)
            points = problem.lower + (problem.upper - problem.lower) \
                * rng.random((50, problem.dimension))
            vectorized = np.asarray(problem.batch_integrand(points),
                                    dtype=np.float64)
            looped = np.array([problem.integrand(point)
                               for point in points])
            assert np.array_equal(vectorized, looped), name

    def test_partial_block(self):
        problem = integration.unit_square_quarter_circle()
        scalar = run(integration.make_realization(problem), maxsv=150)
        batched = run(integration.make_batch_realization(problem, 64),
                      maxsv=150)
        assert_identical(scalar, batched)


class TestFinanceBatch:
    def test_bit_identical_to_scalar(self):
        option = finance.EuropeanOption()
        scalar = run(finance.make_realization(option), nrow=1, ncol=2)
        batched = run(finance.make_batch_realization(option, 64),
                      nrow=1, ncol=2)
        assert_identical(scalar, batched)

    def test_rows_match_scalar_realizations(self):
        option = finance.EuropeanOption(spot=90.0, strike=100.0,
                                        rate=0.05, volatility=0.3)
        tree = StreamTree()
        block = tree.experiment(0).processor(0).realization_block(0, 32)
        batch = finance.make_batch_realization(option, 32)(block)
        assert batch.shape == (32, 1, 2)
        scalar = finance.make_realization(option)
        for i in range(32):
            row = scalar(tree.rng(realization=i))
            assert np.array_equal(batch[i], row)

    def test_prices_converge_to_black_scholes(self):
        option = finance.EuropeanOption()
        result = run(finance.make_batch_realization(option, 256),
                     nrow=1, ncol=2, maxsv=20_000)
        call = result.estimates.mean[0, 0]
        error = result.estimates.abs_error[0, 0]
        assert abs(call - option.black_scholes_call()) < 5 * error
