"""Tests for repro.rng.vectorized: limb arithmetic and block generation.

The central property is bit-identity: the vectorized generator must
produce *exactly* the scalar generator's doubles, for any block size and
lane count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128, state_to_unit
from repro.rng.multiplier import BASE_MULTIPLIER, STATE_MASK
from repro.rng.vectorized import (
    VectorLcg128,
    generate_block,
    int_to_limbs,
    limbs_to_int,
    limbs_to_unit,
    mul_mod_2_128,
)

uint128 = st.integers(min_value=0, max_value=STATE_MASK)


class TestLimbConversion:
    @given(value=uint128)
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert limbs_to_int(int_to_limbs(value)) == value

    def test_zero(self):
        assert int_to_limbs(0).tolist() == [0, 0, 0, 0]

    def test_max(self):
        assert int_to_limbs(STATE_MASK).tolist() == [0xFFFFFFFF] * 4

    def test_limbs_are_little_endian(self):
        limbs = int_to_limbs(1 << 96)
        assert limbs.tolist() == [0, 0, 0, 1]

    def test_values_above_modulus_wrap(self):
        assert limbs_to_int(int_to_limbs((1 << 128) + 7)) == 7


class TestMulMod:
    @given(a=uint128, b=uint128)
    @settings(max_examples=200)
    def test_matches_python_ints(self, a, b):
        states = int_to_limbs(a).reshape(1, 4)
        product = mul_mod_2_128(states, int_to_limbs(b))
        assert limbs_to_int(product[0]) == (a * b) % (1 << 128)

    def test_vectorized_rows_independent(self):
        values = [3, 5, STATE_MASK, 12345678901234567890]
        states = np.stack([int_to_limbs(v) for v in values])
        product = mul_mod_2_128(states, int_to_limbs(BASE_MULTIPLIER))
        for row, value in zip(product, values):
            assert limbs_to_int(row) \
                == value * BASE_MULTIPLIER % (1 << 128)

    def test_multiply_by_one(self):
        states = int_to_limbs(98765).reshape(1, 4)
        assert limbs_to_int(mul_mod_2_128(states, int_to_limbs(1))[0]) \
            == 98765

    def test_multiply_by_zero(self):
        states = int_to_limbs(98765).reshape(1, 4)
        assert limbs_to_int(mul_mod_2_128(states, int_to_limbs(0))[0]) == 0


class TestLimbsToUnit:
    @given(value=uint128)
    @settings(max_examples=200)
    def test_matches_scalar_conversion(self, value):
        limbs = int_to_limbs(value).reshape(1, 4)
        assert limbs_to_unit(limbs)[0] == state_to_unit(value)

    def test_clamps_zero_mantissa(self):
        limbs = int_to_limbs(1).reshape(1, 4)
        assert limbs_to_unit(limbs)[0] == 2.0 ** -53


class TestGenerateBlock:
    @given(size=st.integers(0, 400), lanes=st.integers(1, 70))
    @settings(max_examples=60, deadline=None)
    def test_bit_identity_with_scalar(self, size, lanes):
        scalar = Lcg128()
        expected = scalar.block(size)
        values, new_state = generate_block(1, size, lanes=lanes)
        assert np.array_equal(values, expected)
        assert new_state == scalar.state

    def test_new_state_continues_sequence(self):
        values1, state = generate_block(1, 100)
        values2, _ = generate_block(state, 100)
        reference = Lcg128()
        expected = reference.block(200)
        assert np.array_equal(np.concatenate([values1, values2]), expected)

    def test_empty_block(self):
        values, state = generate_block(1, 0)
        assert values.size == 0
        assert state == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_block(1, -1)

    def test_zero_lanes_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_block(1, 10, lanes=0)

    def test_custom_multiplier(self):
        multiplier = pow(5, 17, 1 << 128)
        scalar = Lcg128(1, multiplier)
        values, _ = generate_block(1, 64, multiplier=multiplier)
        assert np.array_equal(values, scalar.block(64))

    def test_arbitrary_start_state(self):
        start = Lcg128().jumped(999).state
        scalar = Lcg128(start)
        values, _ = generate_block(start, 50)
        assert np.array_equal(values, scalar.block(50))


class TestVectorLcg128:
    def test_matches_scalar_across_calls(self):
        vector = VectorLcg128(1, lanes=16)
        scalar = Lcg128()
        for size in (1, 7, 64, 129, 3):
            assert np.array_equal(vector.uniforms(size), scalar.block(size))
        assert vector.state == scalar.state
        assert vector.count == scalar.count

    def test_construct_from_scalar_generator(self):
        scalar = Lcg128()
        scalar.block(37)
        vector = VectorLcg128(scalar)
        assert np.array_equal(vector.uniforms(10), scalar.block(10))

    def test_scalar_random_method(self):
        vector = VectorLcg128(1)
        reference = Lcg128()
        assert vector.random() == reference.random()
        # And block generation continues seamlessly after scalar draws.
        assert np.array_equal(vector.uniforms(5), reference.block(5))

    def test_to_scalar_handoff(self):
        vector = VectorLcg128(1)
        vector.uniforms(42)
        scalar = vector.to_scalar()
        reference = Lcg128()
        reference.block(42)
        assert scalar.state == reference.state

    def test_even_state_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorLcg128(2)

    def test_bad_lanes_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorLcg128(1, lanes=0)

    def test_repr(self):
        assert "lanes=8" in repr(VectorLcg128(1, lanes=8))
