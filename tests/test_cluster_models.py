"""Tests for repro.cluster.machine and repro.cluster.network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.machine import DurationModel, Processor
from repro.cluster.network import CollectorService, NetworkModel
from repro.exceptions import ConfigurationError


class TestDurationModel:
    def test_fixed_is_deterministic(self):
        model = DurationModel(mean=7.7, distribution="fixed")
        rng = np.random.default_rng(0)
        assert [model.sample(rng) for _ in range(5)] == [7.7] * 5

    @pytest.mark.parametrize("distribution", ["exponential", "lognormal",
                                              "uniform"])
    def test_stochastic_means(self, distribution):
        model = DurationModel(mean=7.7, distribution=distribution,
                              spread=0.25)
        rng = np.random.default_rng(42)
        samples = np.array([model.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(7.7, rel=0.05)
        assert np.all(samples > 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DurationModel(mean=0.0)
        with pytest.raises(ConfigurationError):
            DurationModel(distribution="weird")
        with pytest.raises(ConfigurationError):
            DurationModel(spread=-1.0)
        with pytest.raises(ConfigurationError):
            DurationModel(distribution="uniform", spread=1.5)


class TestProcessor:
    def test_speed_factor_scales_duration(self):
        model = DurationModel(mean=10.0)
        rng = np.random.default_rng(0)
        fast = Processor(0, speed_factor=2.0)
        slow = Processor(1, speed_factor=0.5)
        assert fast.duration(model, rng) == pytest.approx(5.0)
        assert slow.duration(model, rng) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Processor(-1)
        with pytest.raises(ConfigurationError):
            Processor(0, speed_factor=0.0)


class TestNetworkModel:
    def test_transfer_time_formula(self):
        network = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert network.transfer_time(500_000) == pytest.approx(0.501)

    def test_local_messages_free(self):
        network = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert network.transfer_time(10 ** 9, local=True) == 0.0

    def test_paper_message_over_gigabit(self):
        # 120 KB over ~1 GB/s is ~0.12 ms plus latency: negligible next
        # to tau = 7.7 s, which is why Fig. 2 stays linear.
        network = NetworkModel()
        assert network.transfer_time(120_000) < 0.001

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(latency=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            NetworkModel().transfer_time(-5)


class TestCollectorService:
    def test_fifo_queueing(self):
        service = CollectorService(service_time=1.0)
        # Two messages arriving together: second waits for the first.
        assert service.admit(0.0) == pytest.approx(1.0)
        assert service.admit(0.0) == pytest.approx(2.0)

    def test_idle_server_starts_immediately(self):
        service = CollectorService(service_time=0.5)
        service.admit(0.0)
        assert service.admit(10.0) == pytest.approx(10.5)

    def test_busy_accounting(self):
        service = CollectorService(service_time=2.0)
        service.admit(0.0)
        service.admit(1.0)
        assert service.served == 2
        assert service.busy_total == pytest.approx(4.0)
        assert service.utilization(8.0) == pytest.approx(0.5)

    def test_utilization_capped_at_one(self):
        service = CollectorService(service_time=5.0)
        service.admit(0.0)
        assert service.utilization(1.0) == 1.0

    def test_zero_horizon(self):
        assert CollectorService().utilization(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CollectorService(service_time=-1.0)
        with pytest.raises(ConfigurationError):
            CollectorService().admit(-1.0)
