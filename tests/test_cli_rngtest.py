"""Tests for the parmonc-rngtest certification command."""

from __future__ import annotations


from repro.cli.rngtest import certify, main as rngtest_main
from repro.rng.multiplier import LeapSet
from repro.runtime.files import write_genparam_file


class TestCertify:
    def test_default_generator_passes(self, tmp_path):
        passed, report = certify(draws=30_000, substreams=12,
                                 workdir=tmp_path)
        assert passed, report
        assert "certification: PASSED" in report
        assert "12/12 tests passed" in report
        assert "spectral test" in report

    def test_honours_genparam_file(self, tmp_path):
        leaps = LeapSet(experiment_exponent=40, processor_exponent=30,
                        realization_exponent=20)
        write_genparam_file(tmp_path, 40, 30, 20, leaps.multipliers())
        passed, report = certify(draws=20_000, substreams=12,
                                 workdir=tmp_path)
        assert "parmonc_genparam.dat" in report
        assert "2^40/2^30/2^20" in report
        assert passed, report

    def test_report_sections_present(self, tmp_path):
        _, report = certify(draws=20_000, substreams=12,
                            workdir=tmp_path)
        assert "general sequence" in report
        assert "two-level chi-square" in report
        assert "worst merit" in report


class TestCli:
    def test_exit_code_zero_on_pass(self, tmp_path, capsys):
        code = rngtest_main(["--draws", "20000", "--substreams", "12",
                             "--workdir", str(tmp_path)])
        assert code == 0
        assert "PASSED" in capsys.readouterr().out

    def test_alpha_propagates(self, tmp_path, capsys):
        # An absurdly lax alpha can only keep things passing; the point
        # is the flag parses and runs end to end.
        code = rngtest_main(["--draws", "20000", "--substreams", "12",
                             "--alpha", "0.001",
                             "--workdir", str(tmp_path)])
        assert code == 0
