"""Tests for the zero-copy shared-memory ring transport.

Ring mechanics first (codec round-trips, the commit protocol's
occupancy accounting, every fallback reason), then the lifetime story
the resource tracker makes hard: a SIGKILLed worker must not leak a
``/dev/shm`` segment — the owning backend unlinks on shutdown and the
bootstrap sweep reclaims what a killed *owner* left behind.
"""

from __future__ import annotations

import glob
import os
import signal

import numpy as np
import pytest

from repro.core.parmonc import parmonc
from repro.exceptions import ConfigurationError
from repro.runtime.messages import MomentMessage
from repro.runtime.shm import (
    ShmRing,
    ShmSender,
    attach_ring,
    segment_name,
    shm_available,
    sweep_orphans,
)
from repro.stats.accumulator import MomentAccumulator
from repro.stats.statistic import create_statistic

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no multiprocessing.shared_memory")


def _message(rank=3, volume=7, *, shape=(2, 2), final=False,
             metrics=None, statistics=None):
    accumulator = MomentAccumulator(*shape)
    for index in range(volume):
        accumulator.add(np.full(shape, float(index + 1)))
    return MomentMessage(rank=rank, snapshot=accumulator.snapshot(),
                         sent_at=1.25, final=final, metrics=metrics,
                         statistics=statistics)


@pytest.fixture
def ring():
    ring = ShmRing.create(segment_name("test"), (2, 2), slots=4)
    yield ring
    ring.close()
    ring.unlink()


class TestRingCodec:
    def test_plain_roundtrip(self, ring):
        message = _message()
        assert ring.try_send(message)
        received = ring.receive()
        assert received.rank == message.rank
        assert received.final is False
        assert received.sent_at == message.sent_at
        assert np.array_equal(received.snapshot.sum1,
                              message.snapshot.sum1)
        assert np.array_equal(received.snapshot.sum2,
                              message.snapshot.sum2)
        assert received.snapshot.volume == message.snapshot.volume
        assert received.snapshot.compute_time \
            == message.snapshot.compute_time
        assert received.metrics is None
        assert received.statistics is None

    def test_final_flag_and_extras_roundtrip(self, ring):
        extras = {"extrema": create_statistic("extrema", 2, 2)}
        extras["extrema"].update(np.full((2, 2), 0.5))
        message = _message(final=True, metrics={"rate": 12.5},
                           statistics=extras)
        assert ring.try_send(message)
        received = ring.receive()
        assert received.final is True
        assert received.metrics == {"rate": 12.5}
        assert (received.statistics["extrema"].to_payload()
                == extras["extrema"].to_payload())

    def test_fifo_order_and_occupancy(self, ring):
        for volume in (1, 2, 3):
            assert ring.try_send(_message(volume=volume))
        assert ring.occupancy() == 3
        volumes = [ring.receive().snapshot.volume for _ in range(3)]
        assert volumes == [1, 2, 3]  # send order preserved
        assert ring.occupancy() == 0
        assert ring.receive() is None

    def test_full_ring_refuses_then_recovers(self, ring):
        for _ in range(ring.slots):
            assert ring.try_send(_message())
        assert not ring.try_send(_message())
        assert ring.receive() is not None
        assert ring.try_send(_message())

    def test_shape_mismatch_refused(self, ring):
        assert not ring.try_send(_message(shape=(3, 1)))

    def test_oversized_extra_refused(self):
        small = ShmRing.create(segment_name("tiny"), (1, 1),
                               extra_capacity=8)
        try:
            message = _message(shape=(1, 1),
                               metrics={"key": "x" * 256})
            assert not small.try_send(message)
            assert small.try_send(_message(shape=(1, 1)))
        finally:
            small.close()
            small.unlink()


class TestSender:
    def test_fallback_diverts_to_queue_and_counts(self, ring):
        spill = []
        sender = ShmSender(ring, spill.append, wait=0.01)
        for _ in range(ring.slots + 2):
            sender(_message())
        assert len(spill) == 2
        assert ring.fallbacks == 2
        assert ring.occupancy() == ring.slots


class TestLifetime:
    def test_attach_sees_the_owners_data(self, ring):
        assert ring.try_send(_message(volume=5))
        reader = attach_ring(ring.name)
        try:
            assert reader.shape == (2, 2)
            assert reader.receive().snapshot.volume == 5
        finally:
            reader.close()

    def test_foreign_segment_rejected(self):
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(
            name=segment_name("alien"), create=True, size=1024)
        try:
            with pytest.raises(ConfigurationError, match="not a parmonc"):
                attach_ring(segment.name)
        finally:
            segment.close()
            segment.unlink()

    def test_unlink_is_idempotent(self):
        ring = ShmRing.create(segment_name("gone"), (1, 1))
        ring.close()
        ring.unlink()
        ring.unlink()
        assert not glob.glob(f"/dev/shm/{ring.name}")

    def test_sweep_reclaims_dead_owner_segments_only(self):
        from multiprocessing import shared_memory
        dead_pid = 99999
        while True:
            try:
                os.kill(dead_pid, 0)
                dead_pid += 1
            except ProcessLookupError:
                break
            except PermissionError:
                dead_pid += 1
        orphan_name = f"parmonc_{dead_pid}_deadbe_r0"
        orphan = shared_memory.SharedMemory(name=orphan_name, create=True,
                                            size=256)
        orphan.close()
        live = ShmRing.create(segment_name("live"), (1, 1))
        try:
            removed = sweep_orphans()
            assert orphan_name in removed
            assert not glob.glob(f"/dev/shm/{orphan_name}")
            assert glob.glob(f"/dev/shm/{live.name}")
        finally:
            live.close()
            live.unlink()


def make_sigkill_crasher(flag_path):
    """A routine whose 5th call SIGKILLs its worker — once, run-wide.

    SIGKILL skips every ``finally`` and atexit hook, so the worker's
    attached ring never gets a clean close: the regression this guards
    is the backend still unlinking every segment afterwards.
    """
    calls = {"n": 0}

    def routine(rng):
        calls["n"] += 1
        if calls["n"] == 5:
            try:
                flag_path.touch(exist_ok=False)
            except FileExistsError:
                pass
            else:
                os.kill(os.getpid(), signal.SIGKILL)
        return rng.random()

    return routine


class TestLeakRegression:
    def test_sigkilled_worker_leaks_no_segment(self, tmp_path):
        routine = make_sigkill_crasher(tmp_path / "killed.flag")
        result = parmonc(routine, maxsv=40, perpass=0.0, peraver=0.0,
                         processors=2, backend="multiprocess",
                         start_method="fork", transport="shm",
                         on_worker_death="reassign", workdir=tmp_path)
        assert result.total_volume == 40
        assert len(result.recovered_ranks) == 1
        assert glob.glob("/dev/shm/parmonc_*") == []

    def test_tree_run_with_shm_leaves_no_segment(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=40, perpass=0.0,
                         peraver=0.0, processors=4,
                         backend="multiprocess", start_method="fork",
                         transport="shm", reduction_fanout=2,
                         workdir=tmp_path)
        assert result.total_volume == 40
        assert glob.glob("/dev/shm/parmonc_*") == []
