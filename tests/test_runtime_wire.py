"""Tests for the distributed wire format: framing, checksums, codecs.

The framing layer is the trust boundary of the distributed backend:
estimates stay bit-identical across hosts only if a ``MomentMessage``
survives the wire exactly, and a run only fails cleanly if corrupt or
foreign traffic is rejected *before* deserialization.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, WireError
from repro.runtime.config import RunConfig
from repro.runtime.messages import MomentMessage
from repro.runtime.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    FrameDecoder,
    FrameKind,
    config_from_payload,
    config_to_payload,
    decode_frame,
    encode_frame,
    message_from_payload,
    message_to_payload,
    routine_from_payload,
    routine_to_payload,
)
from repro.stats.accumulator import MomentAccumulator
from repro.stats.statistic import StatisticSet


def sample_message(rank=3, final=True, statistics=False) -> MomentMessage:
    stats = StatisticSet.for_run(
        ("moments", "extrema") if statistics else ("moments",), 2, 2)
    rng = np.random.default_rng(7)
    for _ in range(5):
        stats.update(rng.random((2, 2)), compute_time=0.01)
    return MomentMessage(
        rank=rank, snapshot=stats.moments.snapshot(), sent_at=12.5,
        final=final, metrics={"messages": 5, "bytes": 640},
        statistics=stats.extras_snapshot())


# ---------------------------------------------------------------------------
# Framing


class TestFraming:
    def test_round_trip(self):
        payload = {"rank": 4, "value": 0.1 + 0.2, "nested": {"a": [1, 2]}}
        kind, decoded = decode_frame(
            encode_frame(FrameKind.ASSIGN, payload))
        assert kind is FrameKind.ASSIGN
        assert decoded == payload

    def test_every_kind_round_trips(self):
        for kind in FrameKind:
            out_kind, payload = decode_frame(encode_frame(kind, {}))
            assert out_kind is kind
            assert payload == {}

    def test_floats_survive_bit_exactly(self):
        values = [0.1, 1 / 3, np.nextafter(1.0, 2.0), 1e-308, 2**53 + 0.0]
        _, decoded = decode_frame(
            encode_frame(FrameKind.DATA, {"values": values}))
        assert all(a == b and struct.pack("!d", a) == struct.pack("!d", b)
                   for a, b in zip(decoded["values"], values))

    def test_incremental_decoder_handles_arbitrary_chunking(self):
        stream = b"".join(
            encode_frame(FrameKind.DATA, {"i": i}) for i in range(7))
        for chunk_size in (1, 3, 16, len(stream)):
            decoder = FrameDecoder()
            frames = []
            for start in range(0, len(stream), chunk_size):
                frames.extend(decoder.feed(stream[start:start + chunk_size]))
            assert [payload["i"] for _, payload in frames] == list(range(7))
            assert decoder.pending_bytes == 0

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame(FrameKind.HELLO, {"x": 1})
        decoder = FrameDecoder()
        assert list(decoder.feed(frame[:-1])) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert list(decoder.feed(frame[-1:]))[0][1] == {"x": 1}

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FrameKind.DATA, {}))
        frame[:4] = b"HTTP"
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch_rejected(self):
        frame = bytearray(encode_frame(FrameKind.DATA, {}))
        struct.pack_into("!H", frame, 4, WIRE_VERSION + 1)
        with pytest.raises(WireError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_kind_rejected(self):
        frame = bytearray(encode_frame(FrameKind.DATA, {}))
        struct.pack_into("!H", frame, 6, 999)
        with pytest.raises(WireError, match="kind"):
            decode_frame(bytes(frame))

    def test_corrupt_payload_fails_checksum(self):
        frame = bytearray(encode_frame(FrameKind.DATA, {"rank": 1}))
        frame[-1] ^= 0xFF
        with pytest.raises(WireError, match="checksum"):
            decode_frame(bytes(frame))

    def test_absurd_length_rejected_before_allocation(self):
        frame = bytearray(encode_frame(FrameKind.DATA, {}))
        struct.pack_into("!I", frame, 8, MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError, match="limit"):
            decode_frame(bytes(frame))

    def test_non_object_payload_rejected(self):
        body = b"[1,2,3]"
        header = struct.pack("!4sHHII", b"PMNC", WIRE_VERSION,
                             int(FrameKind.DATA), len(body),
                             zlib.crc32(body))
        with pytest.raises(WireError, match="object"):
            decode_frame(header + body)


# ---------------------------------------------------------------------------
# Payload codecs


class TestMessageCodec:
    def test_message_round_trips_bit_identically(self):
        message = sample_message(statistics=True)
        rebuilt = message_from_payload(message_to_payload(message))
        assert rebuilt.rank == message.rank
        assert rebuilt.final is message.final
        assert rebuilt.sent_at == message.sent_at
        assert rebuilt.metrics == message.metrics
        np.testing.assert_array_equal(rebuilt.snapshot.sum1,
                                      message.snapshot.sum1)
        np.testing.assert_array_equal(rebuilt.snapshot.sum2,
                                      message.snapshot.sum2)
        assert rebuilt.snapshot.volume == message.snapshot.volume
        assert set(rebuilt.statistics) == set(message.statistics)

    def test_message_survives_a_full_wire_frame(self):
        message = sample_message()
        _, payload = decode_frame(
            encode_frame(FrameKind.DATA, message_to_payload(message)))
        rebuilt = message_from_payload(payload)
        np.testing.assert_array_equal(rebuilt.snapshot.sum1,
                                      message.snapshot.sum1)

    def test_moments_only_message_has_no_statistics_key(self):
        message = MomentMessage(rank=0,
                                snapshot=MomentAccumulator(1, 1).snapshot(),
                                sent_at=0.0, final=False)
        payload = message_to_payload(message)
        assert "statistics" not in payload and "metrics" not in payload
        assert message_from_payload(payload).statistics is None

    def test_malformed_message_payload_raises_wire_error(self):
        with pytest.raises(WireError, match="malformed"):
            message_from_payload({"rank": 1})

    def test_unregistered_statistic_kind_raises_wire_error(self):
        payload = message_to_payload(sample_message(statistics=True))
        payload["statistics"]["no_such_kind"] = {"version": 1}
        with pytest.raises(WireError, match="no_such_kind"):
            message_from_payload(payload)


class TestConfigCodec:
    def test_worker_fields_round_trip(self):
        config = RunConfig(nrow=3, ncol=2, maxsv=100, seqnum=4,
                           perpass=0.25, statistics=("moments", "extrema"),
                           telemetry=True)
        rebuilt = config_from_payload(config_to_payload(config))
        assert rebuilt.nrow == 3 and rebuilt.ncol == 2
        assert rebuilt.seqnum == 4
        assert rebuilt.perpass == 0.25
        assert rebuilt.statistics == ("moments", "extrema")
        assert rebuilt.telemetry is True
        assert rebuilt.leaps == config.leaps

    def test_malformed_config_raises_wire_error(self):
        with pytest.raises(WireError, match="hello"):
            config_from_payload({"nrow": 1})


def module_level_routine(rng):
    return rng.random()


class TestRoutineCodec:
    def test_spec_payload_uses_importer(self):
        payload = routine_to_payload(None, spec="mymodel:traj")
        seen = []
        routine = routine_from_payload(payload, lambda s:
                                       seen.append(s) or module_level_routine)
        assert seen == ["mymodel:traj"]
        assert routine is module_level_routine

    def test_pickle_payload_round_trips(self):
        payload = routine_to_payload(module_level_routine)
        assert "pickle" in payload
        routine = routine_from_payload(
            payload, lambda s: pytest.fail("importer must not be used"))
        assert routine is module_level_routine

    def test_unpicklable_routine_gets_guidance(self):
        with pytest.raises(ConfigurationError, match="module level"):
            routine_to_payload(lambda rng: rng.random())

    def test_empty_routine_payload_rejected(self):
        with pytest.raises(WireError, match="neither"):
            routine_from_payload({}, lambda s: None)


class TestStreamingFrames:
    """PR 10's additive frames: values frozen, version unchanged.

    A classic (sealed) session never emits SUBMIT or CANCEL, so its
    byte stream must be indistinguishable from historical version-1
    traffic — which pins the version constant and every existing
    frame-kind value."""

    def test_frame_kind_values_are_frozen(self):
        assert WIRE_VERSION == 1
        assert [int(kind) for kind in FrameKind] == list(range(1, 11))
        assert int(FrameKind.SUBMIT) == 9
        assert int(FrameKind.CANCEL) == 10

    def test_submit_frame_round_trips_job_context(self):
        payload = {
            "job": "late",
            "config": config_to_payload(RunConfig(maxsv=8, processors=2,
                                                  perpass=0.0,
                                                  peraver=0.0)),
            "routine": routine_to_payload(module_level_routine),
        }
        kind, decoded = decode_frame(
            encode_frame(FrameKind.SUBMIT, payload))
        assert kind is FrameKind.SUBMIT
        assert decoded == payload

    def test_cancel_frame_round_trips(self):
        kind, decoded = decode_frame(
            encode_frame(FrameKind.CANCEL, {"job": "victim"}))
        assert kind is FrameKind.CANCEL
        assert decoded == {"job": "victim"}
