"""Tests for fault injection on the simulated cluster."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DurationModel
from repro.cluster.simulation import ClusterSimulation
from repro.exceptions import ConfigurationError
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.stats.accumulator import MomentSnapshot


def run_with_failures(maxsv, processors, failures, *, perpass=0.0,
                      tau=1.0):
    spec = ClusterSpec(duration_model=DurationModel(mean=tau),
                       failures=failures)
    config = RunConfig(maxsv=maxsv, processors=processors,
                       perpass=perpass, peraver=3600.0)
    collector = Collector(config, MomentSnapshot.zero(1, 1), None)
    simulation = ClusterSimulation(config, spec, collector,
                                   routine=lambda rng: rng.random())
    return simulation.run(), collector


class TestFailureInjection:
    def test_failed_node_stops_contributing(self):
        result, collector = run_with_failures(40, 4, {3: 2.5})
        assert result.failed_ranks == (3,)
        # Rank 3 computed only ~2 realizations before dying at t=2.5.
        assert result.per_rank_volumes[3] <= 3
        # Survivors completed their quotas.
        for rank in (0, 1, 2):
            assert result.per_rank_volumes[rank] == 10

    def test_perpass_zero_loses_at_most_in_flight_work(self):
        # With a pass after every realization, only the realization in
        # flight at the failure can be lost.
        result, _ = run_with_failures(40, 4, {3: 5.5}, perpass=0.0)
        assert result.lost_realizations <= 1

    def test_rare_passes_lose_a_window_of_work(self):
        # With perpass = 4 s and tau = 1 s, up to ~4 realizations sit
        # undelivered when the node dies.
        result, _ = run_with_failures(400, 4, {3: 50.5}, perpass=4.0)
        assert result.lost_realizations >= 2

    def test_collector_keeps_predeath_subtotals(self):
        result, collector = run_with_failures(40, 4, {3: 5.5})
        delivered = collector.worker_volume(3)
        assert delivered >= 4  # passes before death survive
        assert collector.total_volume \
            == result.total_volume - result.lost_realizations

    def test_estimates_remain_unbiased_after_failure(self):
        _, collector = run_with_failures(400, 4, {3: 10.5})
        estimates = collector.estimates()
        assert abs(estimates.mean[0, 0] - 0.5) \
            < 5 * estimates.abs_error[0, 0]

    def test_multiple_failures(self):
        result, _ = run_with_failures(60, 6, {2: 1.5, 4: 3.5, 5: 0.0})
        assert result.failed_ranks == (2, 4, 5)
        assert result.per_rank_volumes[5] == 0

    def test_immediate_failure_contributes_nothing(self):
        result, collector = run_with_failures(30, 3, {2: 0.0})
        assert result.per_rank_volumes[2] == 0
        assert collector.worker_volume(2) == 0

    def test_collector_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_failures(10, 2, {0: 1.0})

    def test_unknown_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_failures(10, 2, {5: 1.0})

    def test_negative_failure_time_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_failures(10, 2, {1: -1.0})

    def test_no_failures_unchanged(self):
        clean, _ = run_with_failures(40, 4, {})
        assert clean.failed_ranks == ()
        assert clean.lost_realizations == 0
        assert clean.total_volume == 40
