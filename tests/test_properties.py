"""Cross-cutting property-based tests on the core invariants.

These encode the theorems the library's correctness rests on:

* leap algebra — jumping commutes, composes additively, and the stream
  hierarchy is a homomorphic image of it;
* estimator algebra — formula (5) merging equals monolithic
  accumulation for *any* partition of the sample;
* protocol — the collector's merged state is invariant under message
  order and duplication.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import STATE_MASK
from repro.rng.streams import StreamTree
from repro.rng.vectorized import generate_block
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.messages import MomentMessage
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot
from repro.stats.merging import merge_snapshots

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


class TestLeapAlgebra:
    @given(jumps=st.lists(st.integers(0, 10 ** 12), min_size=1,
                          max_size=6))
    @settings(max_examples=40)
    def test_jump_sequence_equals_total(self, jumps):
        stepwise = Lcg128()
        for jump in jumps:
            stepwise.jump(jump)
        direct = Lcg128()
        direct.jump(sum(jumps))
        assert stepwise.state == direct.state

    @given(e=st.integers(0, 100), p=st.integers(0, 100),
           r=st.integers(0, 100))
    @settings(max_examples=30)
    def test_hierarchy_equals_flat_offset(self, e, p, r):
        tree = StreamTree()
        leaps = tree.leaps
        offset = (e * leaps.experiment_leap + p * leaps.processor_leap
                  + r * leaps.realization_leap)
        assert tree.rng(e, p, r).state == Lcg128().jumped(offset).state

    @given(size1=st.integers(0, 200), size2=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_block_concatenation(self, size1, size2):
        # Drawing size1 then size2 numbers equals drawing size1+size2.
        first, state = generate_block(1, size1)
        second, _ = generate_block(state, size2)
        combined, _ = generate_block(1, size1 + size2)
        assert np.array_equal(np.concatenate([first, second]), combined)

    @given(state=st.integers(0, STATE_MASK).map(lambda v: v | 1),
           steps=st.integers(0, 10 ** 6))
    @settings(max_examples=40)
    def test_state_stays_odd(self, state, steps):
        # Odd states form the maximal-period orbit; the recurrence must
        # never leave it.
        generator = Lcg128(state)
        generator.jump(steps)
        assert generator.state % 2 == 1
        generator.next_raw()
        assert generator.state % 2 == 1


class TestEstimatorAlgebra:
    @given(values=st.lists(finite, min_size=1, max_size=40),
           cut_points=st.lists(st.integers(0, 40), max_size=4))
    @settings(max_examples=50)
    def test_any_partition_merges_to_monolithic(self, values, cut_points):
        cuts = sorted({min(c, len(values)) for c in cut_points})
        boundaries = [0, *cuts, len(values)]
        snapshots = []
        for lo, hi in zip(boundaries, boundaries[1:]):
            accumulator = MomentAccumulator(1, 1)
            for value in values[lo:hi]:
                accumulator.add(value)
            snapshots.append(accumulator.snapshot())
        merged = merge_snapshots(snapshots)
        monolithic = MomentAccumulator(1, 1)
        for value in values:
            monolithic.add(value)
        reference = monolithic.snapshot()
        assert merged.volume == reference.volume
        assert merged.sum1[0, 0] == pytest.approx(reference.sum1[0, 0])
        assert merged.sum2[0, 0] == pytest.approx(reference.sum2[0, 0])

    @given(values=st.lists(finite, min_size=2, max_size=30))
    @settings(max_examples=50)
    def test_variance_nonnegative_and_errors_consistent(self, values):
        accumulator = MomentAccumulator(1, 1)
        for value in values:
            accumulator.add(value)
        estimates = accumulator.estimates()
        assert estimates.variance[0, 0] >= 0.0
        assert estimates.abs_error[0, 0] == pytest.approx(
            3.0 * np.sqrt(estimates.variance[0, 0] / len(values)))

    @given(values=st.lists(finite, min_size=1, max_size=30),
           scale=st.floats(0.1, 10.0))
    @settings(max_examples=40)
    def test_mean_is_linear_variance_quadratic(self, values, scale):
        plain = MomentAccumulator(1, 1)
        scaled = MomentAccumulator(1, 1)
        for value in values:
            plain.add(value)
            scaled.add(scale * value)
        assert scaled.estimates().mean[0, 0] == pytest.approx(
            scale * plain.estimates().mean[0, 0], rel=1e-9, abs=1e-9)
        assert scaled.estimates().variance[0, 0] == pytest.approx(
            scale ** 2 * plain.estimates().variance[0, 0],
            rel=1e-6, abs=1e-7)


class TestProtocolInvariance:
    def _snapshots(self, rng_seed):
        generator = np.random.default_rng(rng_seed)
        snapshots = []
        for _ in range(4):
            accumulator = MomentAccumulator(1, 1)
            for value in generator.uniform(size=generator.integers(1, 6)):
                accumulator.add(float(value))
            snapshots.append(accumulator.snapshot())
        return snapshots

    @given(seed=st.integers(0, 100), order=st.permutations(range(4)))
    @settings(max_examples=40)
    def test_message_order_does_not_change_result(self, seed, order):
        snapshots = self._snapshots(seed)
        config = RunConfig(maxsv=100, processors=4, peraver=1e9)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        for position, rank in enumerate(order):
            collector.receive(
                MomentMessage(rank=rank, snapshot=snapshots[rank],
                              sent_at=float(position)),
                now=float(position))
        merged = collector.merged()
        reference = merge_snapshots(snapshots)
        assert merged.volume == reference.volume
        assert merged.sum1[0, 0] == pytest.approx(reference.sum1[0, 0])

    @given(seed=st.integers(0, 100), repeats=st.integers(1, 4))
    @settings(max_examples=30)
    def test_duplicate_cumulative_messages_are_idempotent(self, seed,
                                                          repeats):
        snapshots = self._snapshots(seed)
        config = RunConfig(maxsv=100, processors=4, peraver=1e9)
        collector = Collector(config, MomentSnapshot.zero(1, 1), None)
        for rank, snapshot in enumerate(snapshots):
            for _ in range(repeats):  # resend the same cumulative state
                collector.receive(
                    MomentMessage(rank=rank, snapshot=snapshot,
                                  sent_at=0.0), now=0.0)
        assert collector.total_volume == sum(s.volume for s in snapshots)
