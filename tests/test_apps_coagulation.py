"""Tests for repro.apps.coagulation: the Smoluchowski workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.apps.coagulation import (
    CoagulationProblem,
    make_realization,
    simulate_coagulation,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def problem():
    return CoagulationProblem(n0=200, output_times=(0.5, 1.0, 2.0),
                              max_size=5)


class TestExactSolution:
    def test_total_decays_hyperbolically(self, problem):
        assert problem.exact_total(0.0) == 1.0
        assert problem.exact_total(2.0) == pytest.approx(0.5)
        assert problem.exact_total(6.0) == pytest.approx(0.25)

    def test_concentrations_sum_to_total(self, problem):
        # sum_k c_k(t) = N(t); the geometric series sums exactly.
        t = 1.7
        total = sum(problem.exact_concentration(k, t)
                    for k in range(1, 400))
        assert total == pytest.approx(problem.exact_total(t), rel=1e-6)

    def test_mass_conserved(self, problem):
        # sum_k k c_k(t) = 1 for all t (mass density stays 1).
        t = 2.3
        mass = sum(k * problem.exact_concentration(k, t)
                   for k in range(1, 2000))
        assert mass == pytest.approx(1.0, rel=1e-6)

    def test_exact_matrix_shape(self, problem):
        assert problem.exact_matrix().shape == problem.shape

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoagulationProblem(n0=1)
        with pytest.raises(ConfigurationError):
            CoagulationProblem(kernel=0.0)
        with pytest.raises(ConfigurationError):
            CoagulationProblem(output_times=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            CoagulationProblem(output_times=())
        with pytest.raises(ConfigurationError):
            CoagulationProblem(max_size=0)
        with pytest.raises(ConfigurationError):
            CoagulationProblem().exact_concentration(0, 1.0)


class TestTrajectory:
    def test_deterministic_per_stream(self, problem, tree):
        a = simulate_coagulation(problem, tree.rng(0, 0, 4))
        b = simulate_coagulation(problem, tree.rng(0, 0, 4))
        assert np.array_equal(a, b)

    def test_cluster_count_monotone_decreasing(self, problem, tree):
        trajectory = simulate_coagulation(problem, tree.rng(0, 0, 0))
        totals = trajectory[:, 0]
        assert np.all(np.diff(totals) <= 1e-12)

    def test_mass_conserved_in_realization(self, tree):
        # Track all sizes: with max_size >= n0 the recorded spectrum
        # carries the full mass at every output time.
        problem = CoagulationProblem(n0=30, output_times=(0.2, 1.0),
                                     max_size=30)
        trajectory = simulate_coagulation(problem, tree.rng(0, 0, 1))
        for row in trajectory:
            mass = sum(k * row[k] for k in range(1, 31))
            assert mass == pytest.approx(1.0)

    def test_full_merge_freezes_spectrum(self, tree):
        problem = CoagulationProblem(n0=5, kernel=50.0,
                                     output_times=(10.0, 20.0),
                                     max_size=5)
        trajectory = simulate_coagulation(problem, tree.rng(0, 0, 0))
        # By t=10 with that kernel everything merged to one cluster of
        # size 5, which is of tracked size 5: concentration 1/n0.
        assert trajectory[0, 0] == pytest.approx(1.0 / 5.0)
        assert np.array_equal(trajectory[0], trajectory[1])


class TestAgainstMeanField:
    def test_parmonc_estimates_match_exact(self, problem):
        result = parmonc(make_realization(problem),
                         nrow=3, ncol=6, maxsv=120, processors=2,
                         use_files=False)
        exact = problem.exact_matrix()
        deviation = np.abs(result.estimates.mean - exact)
        # Finite-size bias O(1/n0) + MC error; generous but meaningful.
        assert deviation.max() < 0.02

    def test_spectrum_shape_geometric(self, problem, tree):
        # At Kt/2 = 1 (t=2): c_k ∝ (1/2)**(k+1); successive tracked
        # sizes should roughly halve in the sample average.
        total = np.zeros(problem.shape)
        n = 60
        for index in range(n):
            total += simulate_coagulation(problem, tree.rng(0, 0, index))
        mean = total / n
        ratios = mean[2, 2:5] / mean[2, 1:4]
        assert np.all(np.abs(ratios - 0.5) < 0.15)
