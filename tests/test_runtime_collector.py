"""Tests for repro.runtime.collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.messages import MomentMessage
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot


def message(rank, values, sent_at=0.0, final=False, shape=(1, 1)):
    accumulator = MomentAccumulator(*shape)
    for value in values:
        accumulator.add(np.full(shape, float(value)))
    return MomentMessage(rank=rank, snapshot=accumulator.snapshot(),
                         sent_at=sent_at, final=final)


def make_collector(tmp_path=None, **config_kwargs):
    config_kwargs.setdefault("maxsv", 100)
    config_kwargs.setdefault("processors", 2)
    config = RunConfig(**config_kwargs)
    data = DataDirectory(tmp_path) if tmp_path is not None else None
    base = MomentSnapshot.zero(config.nrow, config.ncol)
    return Collector(config, base, data), config


class TestReceive:
    def test_latest_snapshot_wins(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0]), now=1.0)
        collector.receive(message(0, [1.0, 2.0]), now=2.0)
        assert collector.worker_volume(0) == 2
        assert collector.total_volume == 2

    def test_stale_message_ignored(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0, 2.0]), now=1.0)
        collector.receive(message(0, [9.0]), now=2.0)  # lower volume
        assert collector.worker_volume(0) == 2
        assert collector.merged().sum1[0, 0] == 3.0

    def test_unknown_rank_rejected(self):
        collector, _ = make_collector()
        with pytest.raises(ConfigurationError):
            collector.receive(message(7, [1.0]), now=0.0)

    def test_shape_mismatch_rejected(self):
        collector, _ = make_collector()
        with pytest.raises(ConfigurationError):
            collector.receive(message(0, [1.0], shape=(2, 2)), now=0.0)

    def test_receive_count(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0]), now=0.0)
        collector.receive(message(1, [1.0]), now=0.0)
        assert collector.receive_count == 2


class TestCompletion:
    def test_complete_requires_all_finals(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0], final=True), now=0.0)
        assert not collector.complete
        assert collector.finals_received == 1
        collector.receive(message(1, [2.0], final=True), now=0.0)
        assert collector.complete

    def test_non_final_messages_do_not_complete(self):
        collector, _ = make_collector()
        for _ in range(5):
            collector.receive(message(0, [1.0]), now=0.0)
        assert not collector.complete


class TestMergingFormula5:
    def test_unequal_worker_volumes(self):
        # §2.2: "the sample volumes l_m ... may be different at the
        # moment of passing data".
        collector, _ = make_collector()
        collector.receive(message(0, [1.0, 2.0, 3.0]), now=0.0)
        collector.receive(message(1, [10.0]), now=0.0)
        estimates = collector.estimates()
        assert estimates.volume == 4
        assert estimates.mean[0, 0] == pytest.approx(4.0)

    def test_resume_base_included(self):
        config = RunConfig(maxsv=100, processors=1)
        base_acc = MomentAccumulator(1, 1)
        base_acc.add(100.0)
        collector = Collector(config, base_acc.snapshot(), None)
        collector.receive(message(0, [0.0]), now=0.0)
        assert collector.total_volume == 2
        assert collector.session_volume == 1
        assert collector.estimates().mean[0, 0] == pytest.approx(50.0)

    def test_base_shape_guard(self):
        config = RunConfig(maxsv=10)
        with pytest.raises(ConfigurationError):
            Collector(config, MomentSnapshot.zero(3, 3), None)

    def test_estimates_without_data_rejected(self):
        collector, _ = make_collector()
        with pytest.raises(ConfigurationError):
            collector.estimates()


class TestPeriodicSaving:
    def test_peraver_zero_saves_on_every_message(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=0.0)
        assert collector.receive(message(0, [1.0]), now=0.0)
        assert collector.receive(message(0, [1.0, 2.0]), now=0.1)
        assert collector.save_count == 2

    def test_peraver_throttles_saves(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=10.0)
        assert collector.receive(message(0, [1.0]), now=0.0)  # first save
        assert not collector.receive(message(0, [1.0, 2.0]), now=1.0)
        assert not collector.receive(message(0, [1.0] * 3), now=9.0)
        assert collector.receive(message(0, [1.0] * 4), now=10.5)

    def test_final_message_always_saves(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=1000.0,
                                      processors=1)
        collector.receive(message(0, [1.0]), now=0.0)
        saved = collector.receive(message(0, [1.0, 2.0], final=True),
                                  now=0.5)
        assert saved
        assert collector.complete

    def test_save_writes_result_files(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=0.0)
        collector.receive(message(0, [1.0, 3.0]), now=0.0)
        data = DataDirectory(tmp_path)
        assert data.read_mean_matrix()[0, 0] == pytest.approx(2.0)

    def test_save_with_no_volume_is_noop(self, tmp_path):
        collector, _ = make_collector(tmp_path)
        collector.save(now=0.0)
        data = DataDirectory(tmp_path)
        assert not (data.results_dir / "func.dat").exists()

    def test_subtotal_persistence_for_manaver(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=1000.0)
        collector.receive(message(0, [1.0]), now=0.0)
        collector.receive(message(1, [2.0, 3.0]), now=0.0)
        snapshots = DataDirectory(tmp_path).load_processor_snapshots()
        assert snapshots[0].volume == 1
        assert snapshots[1].volume == 2

    def test_subtotal_persistence_can_be_disabled(self, tmp_path):
        config = RunConfig(maxsv=10, processors=1)
        collector = Collector(config, MomentSnapshot.zero(1, 1),
                              DataDirectory(tmp_path),
                              persist_subtotals=False)
        collector.receive(message(0, [1.0]), now=0.0)
        assert DataDirectory(tmp_path).load_processor_snapshots() == {}

    def test_memory_only_collector_never_touches_disk(self, tmp_path):
        collector, _ = make_collector(None, peraver=0.0)
        collector.receive(message(0, [1.0]), now=0.0)
        assert collector.save_count == 1  # counted, but nothing written
