"""Tests for repro.runtime.collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs.telemetry import RunTelemetry
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.messages import MomentMessage
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot


def message(rank, values, sent_at=0.0, final=False, shape=(1, 1)):
    accumulator = MomentAccumulator(*shape)
    for value in values:
        accumulator.add(np.full(shape, float(value)))
    return MomentMessage(rank=rank, snapshot=accumulator.snapshot(),
                         sent_at=sent_at, final=final)


def make_collector(tmp_path=None, **config_kwargs):
    config_kwargs.setdefault("maxsv", 100)
    config_kwargs.setdefault("processors", 2)
    config = RunConfig(**config_kwargs)
    data = DataDirectory(tmp_path) if tmp_path is not None else None
    base = MomentSnapshot.zero(config.nrow, config.ncol)
    return Collector(config, base, data), config


class TestReceive:
    def test_latest_snapshot_wins(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0]), now=1.0)
        collector.receive(message(0, [1.0, 2.0]), now=2.0)
        assert collector.worker_volume(0) == 2
        assert collector.total_volume == 2

    def test_stale_message_ignored(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0, 2.0]), now=1.0)
        collector.receive(message(0, [9.0]), now=2.0)  # lower volume
        assert collector.worker_volume(0) == 2
        assert collector.merged().sum1[0, 0] == 3.0

    def test_unknown_rank_rejected(self):
        collector, _ = make_collector()
        with pytest.raises(ConfigurationError):
            collector.receive(message(7, [1.0]), now=0.0)

    def test_shape_mismatch_rejected(self):
        collector, _ = make_collector()
        with pytest.raises(ConfigurationError):
            collector.receive(message(0, [1.0], shape=(2, 2)), now=0.0)

    def test_receive_count(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0]), now=0.0)
        collector.receive(message(1, [1.0]), now=0.0)
        assert collector.receive_count == 2


class TestCompletion:
    def test_complete_requires_all_finals(self):
        collector, _ = make_collector()
        collector.receive(message(0, [1.0], final=True), now=0.0)
        assert not collector.complete
        assert collector.finals_received == 1
        collector.receive(message(1, [2.0], final=True), now=0.0)
        assert collector.complete

    def test_non_final_messages_do_not_complete(self):
        collector, _ = make_collector()
        for _ in range(5):
            collector.receive(message(0, [1.0]), now=0.0)
        assert not collector.complete


class TestMergingFormula5:
    def test_unequal_worker_volumes(self):
        # §2.2: "the sample volumes l_m ... may be different at the
        # moment of passing data".
        collector, _ = make_collector()
        collector.receive(message(0, [1.0, 2.0, 3.0]), now=0.0)
        collector.receive(message(1, [10.0]), now=0.0)
        estimates = collector.estimates()
        assert estimates.volume == 4
        assert estimates.mean[0, 0] == pytest.approx(4.0)

    def test_resume_base_included(self):
        config = RunConfig(maxsv=100, processors=1)
        base_acc = MomentAccumulator(1, 1)
        base_acc.add(100.0)
        collector = Collector(config, base_acc.snapshot(), None)
        collector.receive(message(0, [0.0]), now=0.0)
        assert collector.total_volume == 2
        assert collector.session_volume == 1
        assert collector.estimates().mean[0, 0] == pytest.approx(50.0)

    def test_base_shape_guard(self):
        config = RunConfig(maxsv=10)
        with pytest.raises(ConfigurationError):
            Collector(config, MomentSnapshot.zero(3, 3), None)

    def test_estimates_without_data_rejected(self):
        collector, _ = make_collector()
        with pytest.raises(ConfigurationError):
            collector.estimates()


class TestPeriodicSaving:
    def test_peraver_zero_saves_on_every_message(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=0.0)
        assert collector.receive(message(0, [1.0]), now=0.0)
        assert collector.receive(message(0, [1.0, 2.0]), now=0.1)
        assert collector.save_count == 2

    def test_peraver_throttles_saves(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=10.0)
        assert collector.receive(message(0, [1.0]), now=0.0)  # first save
        assert not collector.receive(message(0, [1.0, 2.0]), now=1.0)
        assert not collector.receive(message(0, [1.0] * 3), now=9.0)
        assert collector.receive(message(0, [1.0] * 4), now=10.5)

    def test_final_message_always_saves(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=1000.0,
                                      processors=1)
        collector.receive(message(0, [1.0]), now=0.0)
        saved = collector.receive(message(0, [1.0, 2.0], final=True),
                                  now=0.5)
        assert saved
        assert collector.complete

    def test_save_writes_result_files(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=0.0)
        collector.receive(message(0, [1.0, 3.0]), now=0.0)
        data = DataDirectory(tmp_path)
        assert data.read_mean_matrix()[0, 0] == pytest.approx(2.0)

    def test_save_with_no_volume_is_noop(self, tmp_path):
        collector, _ = make_collector(tmp_path)
        collector.save(now=0.0)
        data = DataDirectory(tmp_path)
        assert not (data.results_dir / "func.dat").exists()

    def test_subtotal_persistence_for_manaver(self, tmp_path):
        collector, _ = make_collector(tmp_path, peraver=1000.0)
        collector.receive(message(0, [1.0]), now=0.0)
        collector.receive(message(1, [2.0, 3.0]), now=0.0)
        snapshots = DataDirectory(tmp_path).load_processor_snapshots()
        assert snapshots[0].volume == 1
        assert snapshots[1].volume == 2

    def test_subtotal_persistence_can_be_disabled(self, tmp_path):
        config = RunConfig(maxsv=10, processors=1)
        collector = Collector(config, MomentSnapshot.zero(1, 1),
                              DataDirectory(tmp_path),
                              persist_subtotals=False)
        collector.receive(message(0, [1.0]), now=0.0)
        assert DataDirectory(tmp_path).load_processor_snapshots() == {}

    def test_memory_only_collector_never_touches_disk(self, tmp_path):
        collector, _ = make_collector(None, peraver=0.0)
        collector.receive(message(0, [1.0]), now=0.0)
        assert collector.save_count == 1  # counted, but nothing written


def make_instrumented_collector(**config_kwargs):
    config_kwargs.setdefault("maxsv", 100)
    config_kwargs.setdefault("processors", 3)
    config_kwargs.setdefault("peraver", 1000.0)
    config = RunConfig(**config_kwargs)
    telemetry = RunTelemetry(clock=lambda: 0.0)
    base = MomentSnapshot.zero(config.nrow, config.ncol)
    return Collector(config, base, None, telemetry=telemetry), telemetry


class TestOutOfOrderInstrumentation:
    """The stale-drop path: formula (5) stays exact, telemetry sees it."""

    def test_stale_interleaving_keeps_formula_5_exact(self):
        # Rank 0's messages arrive out of order: the cumulative 3-sample
        # snapshot lands before the 2-sample one.  The drop must keep
        # the merged average identical to in-order delivery.
        collector, telemetry = make_instrumented_collector()
        collector.receive(message(0, [1.0, 2.0, 3.0]), now=1.0)
        collector.receive(message(0, [1.0, 2.0]), now=2.0)  # late, stale
        collector.receive(message(1, [10.0]), now=3.0)
        assert collector.stale_count == 1
        assert collector.worker_volume(0) == 3
        estimates = collector.estimates()
        assert estimates.volume == 4
        assert estimates.mean[0, 0] == pytest.approx(4.0)
        counters = telemetry.registry.snapshot().counters
        assert counters["collector.stale_messages"] == 1
        assert counters["collector.messages"] == 2  # accepted only
        (stale,) = telemetry.events.by_kind("stale_message")
        assert stale.fields == {"rank": 0, "volume": 2, "kept_volume": 3}

    def test_equal_volume_resend_is_not_stale(self):
        collector, telemetry = make_instrumented_collector()
        collector.receive(message(0, [1.0]), now=1.0)
        collector.receive(message(0, [1.0]), now=2.0)  # duplicate resend
        assert collector.stale_count == 0
        assert telemetry.events.by_kind("stale_message") == ()

    def test_stale_message_does_not_advance_watermark(self):
        collector, _ = make_instrumented_collector()
        collector.receive(message(0, [1.0, 2.0]), now=1.0)
        collector.receive(message(0, [1.0]), now=5.0)  # stale
        assert collector.last_seen[0] == 1.0

    def test_piggybacked_worker_stats_ingested(self):
        collector, telemetry = make_instrumented_collector(processors=1)
        accumulator = MomentAccumulator(1, 1)
        accumulator.add(1.0)
        stats = {"rank": 0, "realizations": 1, "messages": 1, "bytes": 64,
                 "compute_seconds": 0.5, "send_seconds": 0.0,
                 "wall_seconds": 1.0}
        collector.receive(
            MomentMessage(rank=0, snapshot=accumulator.snapshot(),
                          sent_at=0.0, final=False, metrics=stats),
            now=0.0)
        assert telemetry.worker_stats()[0]["realizations"] == 1


class TestLastSeenWatermarks:
    def test_watermarks_track_arrival_times(self):
        collector, _ = make_instrumented_collector()
        collector.receive(message(0, [1.0]), now=1.0)
        collector.receive(message(1, [1.0]), now=4.0)
        collector.receive(message(0, [1.0, 2.0]), now=7.0)
        assert collector.last_seen == {0: 7.0, 1: 4.0}

    def test_silent_rank_judged_against_epoch(self):
        collector, _ = make_instrumented_collector()
        collector.mark_epoch(0.0)
        collector.receive(message(0, [1.0]), now=9.0)
        assert collector.stale_workers(now=10.0, threshold=5.0) == (1, 2)

    def test_finalized_ranks_never_stale(self):
        collector, _ = make_instrumented_collector(processors=2)
        collector.mark_epoch(0.0)
        collector.receive(message(0, [1.0], final=True), now=1.0)
        assert collector.stale_workers(now=100.0, threshold=5.0) == (1,)

    def test_no_epoch_no_messages_means_no_verdict(self):
        collector, _ = make_instrumented_collector()
        assert collector.stale_workers(now=100.0, threshold=5.0) == ()

    def test_without_epoch_first_arrival_stands_in(self):
        collector, _ = make_instrumented_collector()  # 3 processors
        collector.receive(message(0, [1.0]), now=2.0)
        collector.receive(message(1, [1.0]), now=8.0)
        # No epoch marked: the earliest watermark (2.0) stands in for
        # the never-heard-from rank 2.
        assert collector.stale_workers(now=10.0, threshold=5.0) == (0, 2)
        assert collector.stale_workers(now=10.0, threshold=9.0) == ()

    def test_negative_threshold_rejected(self):
        collector, _ = make_instrumented_collector()
        with pytest.raises(ConfigurationError):
            collector.stale_workers(now=0.0, threshold=-1.0)


class TestAveragingRoundTelemetry:
    def test_each_save_observed_in_histogram(self):
        collector, telemetry = make_instrumented_collector(
            processors=1, peraver=0.0)
        for index in range(1, 4):
            collector.receive(message(0, [1.0] * index), now=float(index))
        snapshot = telemetry.registry.snapshot()
        assert snapshot.histograms["collector.save_seconds"].count == 3
        saves = telemetry.events.by_kind("save")
        assert [e.fields["save_index"] for e in saves] == [1, 2, 3]
        assert saves[-1].fields["volume"] == 3
        assert saves[-1].ts == 3.0
