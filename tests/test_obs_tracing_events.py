"""Tests for repro.obs.tracing, repro.obs.events and repro.obs.log."""

from __future__ import annotations

import json
import logging

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.events import EventLog, read_events
from repro.obs.log import configure_logging, install_null_handler
from repro.obs.tracing import Tracer


class FakeClock:
    """A settable clock standing in for time.monotonic / virtual time."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTracer:
    def test_span_context_times_the_block(self):
        clock = FakeClock(10.0)
        tracer = Tracer(clock=clock)
        with tracer.span("work", rank=3) as attrs:
            clock.advance(2.5)
            attrs["volume"] = 42
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.duration == pytest.approx(2.5)
        assert span.attributes == {"rank": 3, "volume": 42}

    def test_epoch_shifts_to_run_relative(self):
        tracer = Tracer(clock=FakeClock(), epoch=100.0)
        span = tracer.record("w", 101.0, 103.0)
        assert span.start == pytest.approx(1.0)
        assert span.end == pytest.approx(3.0)

    def test_span_recorded_even_when_block_raises(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("w"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert tracer.spans[0].duration == pytest.approx(1.0)

    def test_cap_counts_drops_instead_of_growing(self):
        tracer = Tracer(clock=FakeClock(), max_spans=2)
        for index in range(5):
            tracer.record("w", 0.0, float(index))
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_backwards_span_rejected(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ConfigurationError):
            tracer.record("w", 2.0, 1.0)

    def test_by_name_filters(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 0.0, 1.0)
        tracer.record("a", 1.0, 2.0)
        assert len(tracer.by_name("a")) == 2


class TestEventLog:
    def test_append_uses_the_clock(self):
        clock = FakeClock(5.0)
        log = EventLog(clock=clock)
        event = log.append("save", volume=10)
        assert event.ts == 5.0
        assert event.fields == {"volume": 10}

    def test_explicit_ts_shifted_by_epoch(self):
        log = EventLog(clock=FakeClock(), epoch=100.0)
        assert log.append("save", ts=101.5).ts == pytest.approx(1.5)

    def test_flush_appends_jsonl(self, tmp_path):
        path = tmp_path / "telemetry" / "events.jsonl"
        log = EventLog(clock=FakeClock(), path=path)
        log.append("a", rank=0)
        log.flush()
        log.append("b", rank=1)
        log.flush()
        log.flush()  # idempotent: nothing new to write
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1]) == {"ts": 0.0, "kind": "b", "rank": 1}

    def test_by_kind(self):
        log = EventLog(clock=FakeClock())
        log.append("a")
        log.append("b")
        log.append("a")
        assert len(log.by_kind("a")) == 2

    def test_read_events_round_trip_and_filter(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(clock=FakeClock(), path=path)
        log.append("save", volume=5)
        log.append("message", rank=2)
        log.flush()
        saves = list(read_events(path, kind="save"))
        assert len(saves) == 1
        assert saves[0].fields == {"volume": 5}

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"ts": 0.0, "kind": "a"}\n{"ts": 1.0, "ki')
        events = list(read_events(path))
        assert [e.kind for e in events] == ["a"]

    def test_garbage_mid_file_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('not json\n{"ts": 0.0, "kind": "a"}\n')
        with pytest.raises(ConfigurationError):
            list(read_events(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            list(read_events(tmp_path / "absent.jsonl"))


class TestLoggingHygiene:
    def test_null_handler_installed_on_import(self):
        # repro/__init__ calls install_null_handler(); importing the
        # library must leave the root logger configuration alone.
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)

    def test_install_is_idempotent(self):
        before = len(logging.getLogger("repro").handlers)
        install_null_handler()
        install_null_handler()
        assert len(logging.getLogger("repro").handlers) == before

    def test_configure_logging_is_idempotent_and_scoped(self):
        root_handlers = list(logging.getLogger().handlers)
        handler = configure_logging("DEBUG")
        try:
            assert configure_logging("DEBUG") is handler
            assert logging.getLogger("repro").level == logging.DEBUG
            assert logging.getLogger().handlers == root_handlers
        finally:
            logging.getLogger("repro").removeHandler(handler)
            logging.getLogger("repro").setLevel(logging.NOTSET)
