"""Tests for repro.rng.multiplier: constants, jumps and the leap hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    DEFAULT_LEAPS,
    MODULUS,
    MODULUS_BITS,
    PERIOD,
    RECOMMENDED_LIMIT,
    STATE_MASK,
    LeapSet,
    jump_multiplier,
    jump_multiplier_pow2,
)


class TestConstants:
    def test_modulus_is_2_pow_128(self):
        assert MODULUS == 2 ** 128
        assert MODULUS_BITS == 128
        assert STATE_MASK == MODULUS - 1

    def test_base_multiplier_is_5_pow_101(self):
        assert BASE_MULTIPLIER == pow(5, 101, 2 ** 128)

    def test_base_multiplier_is_odd(self):
        assert BASE_MULTIPLIER % 2 == 1

    def test_period_formula_6_and_7(self):
        # Paper formula (7): L_r = 2**(r-2).
        assert PERIOD == 2 ** 126

    def test_recommended_limit_is_half_period(self):
        # "it is recommended to use the first half of the period only,
        # particularly, the first 2**125 random numbers".
        assert RECOMMENDED_LIMIT == 2 ** 125

    def test_multiplier_congruent_5_mod_8(self):
        # The maximal-period condition for a multiplicative generator
        # modulo 2**r is A = 3 or 5 (mod 8).  5**101 = 5 (mod 8); an
        # even 5-exponent (e.g. the OCR-plausible 5**100, which is
        # 1 mod 8) would cut the period to 2**124 — this is why the
        # exponent must be 101.
        assert BASE_MULTIPLIER % 8 == 5

    def test_multiplier_order_via_2adic_structure(self):
        # The order of A in (Z/2**128)* equals 2**126 iff A**(2**125)
        # != 1; squaring once more must give 1.
        assert pow(BASE_MULTIPLIER, 1 << 125, MODULUS) != 1
        assert pow(BASE_MULTIPLIER, 1 << 126, MODULUS) == 1

    def test_orbit_period_on_small_modulus_analogue(self):
        # Directly verify the period claim on a small analogue (r=16):
        # the orbit of 1 under A = 5**101 mod 2**16 has length 2**14.
        modulus = 1 << 16
        multiplier = pow(5, 101, modulus)
        state = 1
        seen_at = {}
        for step in range(1 << 15):
            if state in seen_at:
                assert step - seen_at[state] == 1 << 14
                break
            seen_at[state] = step
            state = state * multiplier % modulus
        else:
            pytest.fail("orbit did not close within 2**15 steps")


class TestJumpMultiplier:
    def test_identity_jump(self):
        assert jump_multiplier(0) == 1

    def test_single_step(self):
        assert jump_multiplier(1) == BASE_MULTIPLIER

    def test_matches_pow(self):
        assert jump_multiplier(12345) == pow(BASE_MULTIPLIER, 12345, MODULUS)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jump_multiplier(-1)

    def test_even_base_rejected(self):
        with pytest.raises(ConfigurationError):
            jump_multiplier(10, base=2)

    @given(a=st.integers(min_value=0, max_value=10 ** 6),
           b=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=50)
    def test_jump_is_homomorphism(self, a, b):
        # A(a) * A(b) == A(a + b) (mod 2**128): composing leaps adds
        # their lengths — the algebra the stream hierarchy relies on.
        assert (jump_multiplier(a) * jump_multiplier(b)) % MODULUS \
            == jump_multiplier(a + b)

    def test_pow2_variant_matches(self):
        for exponent in (0, 1, 7, 43, 98, 115):
            assert jump_multiplier_pow2(exponent) \
                == jump_multiplier(1 << exponent)

    def test_pow2_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jump_multiplier_pow2(-3)

    def test_pow2_absurd_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            jump_multiplier_pow2(4 * MODULUS_BITS)


class TestLeapSet:
    def test_paper_defaults(self):
        assert DEFAULT_LEAPS.experiment_exponent == 115
        assert DEFAULT_LEAPS.processor_exponent == 98
        assert DEFAULT_LEAPS.realization_exponent == 43

    def test_paper_capacity_arithmetic(self):
        # "approximately 2**125 * 2**-115 = 2**10 ~ 10**3 stochastic
        # experiments; ... 2**17 ~ 10**5 processors at most and ...
        # 2**55 ~ 10**16 independent realizations at most".
        assert DEFAULT_LEAPS.experiment_capacity == 2 ** 10
        assert DEFAULT_LEAPS.processor_capacity == 2 ** 17
        assert DEFAULT_LEAPS.realization_capacity == 2 ** 55

    def test_leap_lengths(self):
        assert DEFAULT_LEAPS.experiment_leap == 2 ** 115
        assert DEFAULT_LEAPS.processor_leap == 2 ** 98
        assert DEFAULT_LEAPS.realization_leap == 2 ** 43

    def test_multipliers_match_jump_arithmetic(self):
        a_ne, a_np, a_nr = DEFAULT_LEAPS.multipliers()
        assert a_ne == pow(BASE_MULTIPLIER, 2 ** 115, MODULUS)
        assert a_np == pow(BASE_MULTIPLIER, 2 ** 98, MODULUS)
        assert a_nr == pow(BASE_MULTIPLIER, 2 ** 43, MODULUS)

    def test_non_decreasing_rejected(self):
        with pytest.raises(ConfigurationError):
            LeapSet(experiment_exponent=50, processor_exponent=50,
                    realization_exponent=10)

    def test_increasing_rejected(self):
        with pytest.raises(ConfigurationError):
            LeapSet(experiment_exponent=10, processor_exponent=50,
                    realization_exponent=60)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            LeapSet(experiment_exponent=20, processor_exponent=10,
                    realization_exponent=-1)

    def test_experiment_leap_must_fit_period(self):
        with pytest.raises(ConfigurationError):
            LeapSet(experiment_exponent=126, processor_exponent=98,
                    realization_exponent=43)

    def test_custom_hierarchy_capacities(self):
        leaps = LeapSet(experiment_exponent=20, processor_exponent=12,
                        realization_exponent=6)
        assert leaps.experiment_capacity == 2 ** 105
        assert leaps.processor_capacity == 2 ** 8
        assert leaps.realization_capacity == 2 ** 6

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_LEAPS.experiment_exponent = 7
