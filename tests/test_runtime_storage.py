"""Tests for repro.runtime.storage: atomic I/O, checksums, crashpoints."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.exceptions import ArtifactVersionError, CorruptArtifactError
from repro.runtime import storage
from repro.runtime.storage import (
    CrashInjected,
    atomic_write_text,
    crashpoint,
    crashpoint_installed,
    payload_checksum,
    quarantine,
    read_artifact,
    sweep_temp_files,
    trace_crashpoints,
    write_artifact,
)


@pytest.fixture(autouse=True)
def _no_leaked_crashpoints():
    yield
    storage.clear_crashpoints()


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "sub" / "file.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_no_temp_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "f.txt", "x")
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_replaces_whole_content(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "a long first version\n")
        atomic_write_text(path, "v2\n")
        assert path.read_text() == "v2\n"

    @pytest.mark.parametrize("point", ["before_write", "after_write",
                                       "before_rename"])
    def test_crash_before_rename_keeps_old_content(self, tmp_path, point):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "old", label="lbl")
        with crashpoint_installed(f"lbl.{point}"):
            with pytest.raises(CrashInjected):
                atomic_write_text(path, "new", label="lbl")
        assert path.read_text() == "old"

    def test_crash_after_rename_shows_new_content(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "old", label="lbl")
        with crashpoint_installed("lbl.after_rename"):
            with pytest.raises(CrashInjected):
                atomic_write_text(path, "new", label="lbl")
        assert path.read_text() == "new"

    def test_crash_leaves_sweepable_temp(self, tmp_path):
        path = tmp_path / "f.txt"
        with crashpoint_installed("f.txt.before_rename"):
            with pytest.raises(CrashInjected):
                atomic_write_text(path, "content")
        assert not path.exists()
        removed = sweep_temp_files(tmp_path)
        assert [p.name for p in removed] == ["f.txt.tmp"]
        assert list(tmp_path.iterdir()) == []

    def test_durable_writes_toggle(self, tmp_path):
        with storage.durable_writes(False):
            atomic_write_text(tmp_path / "f.txt", "x")
        with storage.durable_writes(True):
            atomic_write_text(tmp_path / "f.txt", "y")
        assert (tmp_path / "f.txt").read_text() == "y"


class TestArtifactEnvelope:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "kind/x", {"value": [1, 2.5, "s"]}, version=3)
        payload, version = read_artifact(path, "kind/x", max_version=3)
        assert payload == {"value": [1, 2.5, "s"]}
        assert version == 3

    def test_checksum_is_canonical(self):
        assert (payload_checksum({"a": 1, "b": 2})
                == payload_checksum({"b": 2, "a": 1}))

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "kind/x", {"value": list(range(100))},
                       version=1)
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        with pytest.raises(CorruptArtifactError, match="truncated"):
            read_artifact(path, "kind/x", max_version=1)

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "kind/x", {"volume": 10}, version=1)
        document = json.loads(path.read_text())
        document["payload"]["volume"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            read_artifact(path, "kind/x", max_version=1)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "kind/x", {}, version=1)
        with pytest.raises(CorruptArtifactError, match="format"):
            read_artifact(path, "kind/y", max_version=1)

    def test_newer_version_raises_version_error(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "kind/x", {"v": 1}, version=9)
        with pytest.raises(ArtifactVersionError, match="newer"):
            read_artifact(path, "kind/x", max_version=2)
        # The file must be left untouched — it is healthy.
        assert path.exists()

    def test_legacy_document_returned_whole(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps({"version": 1, "snapshot": {"x": 1}}))
        payload, version = read_artifact(path, "kind/x", max_version=2)
        assert version == 0
        assert payload["snapshot"] == {"x": 1}

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CorruptArtifactError):
            read_artifact(path, "kind/x", max_version=1)


class TestQuarantine:
    def test_renames_and_keeps_evidence(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("garbage")
        target = quarantine(path, "test")
        assert not path.exists()
        assert target.name == "bad.json.corrupt"
        assert target.read_text() == "garbage"

    def test_serial_suffix_on_collision(self, tmp_path):
        for expected in ("bad.json.corrupt", "bad.json.corrupt.1",
                         "bad.json.corrupt.2"):
            path = tmp_path / "bad.json"
            path.write_text("garbage")
            assert quarantine(path, "test").name == expected

    def test_listeners_observe(self, tmp_path):
        seen = []
        listener = lambda *args: seen.append(args)  # noqa: E731
        storage.add_quarantine_listener(listener)
        try:
            path = tmp_path / "bad.json"
            path.write_text("garbage")
            target = quarantine(path, "why")
        finally:
            storage.remove_quarantine_listener(listener)
        assert seen == [(path, target, "why")]

    def test_quarantined_files_listing(self, tmp_path):
        (tmp_path / "deep").mkdir()
        (tmp_path / "deep" / "x.json").write_text("bad")
        quarantine(tmp_path / "deep" / "x.json", "test")
        found = storage.quarantined_files(tmp_path)
        assert [p.name for p in found] == ["x.json.corrupt"]


class TestCrashpoints:
    def test_noop_without_trigger(self):
        crashpoint("nothing.installed")  # must not raise

    def test_install_and_clear(self):
        storage.install_crashpoint("p")
        with pytest.raises(CrashInjected) as err:
            crashpoint("p")
        assert err.value.crashpoint == "p"
        storage.clear_crashpoints()
        crashpoint("p")

    def test_custom_trigger(self):
        hits = []
        storage.install_crashpoint("p", hits.append)
        crashpoint("p")
        assert hits == ["p"]

    def test_crash_injected_is_base_exception(self):
        # A simulated kill must rip through `except Exception` blocks.
        assert not issubclass(CrashInjected, Exception)

    def test_trace_records_order(self, tmp_path):
        with trace_crashpoints() as trace:
            atomic_write_text(tmp_path / "f.txt", "x", label="one")
            atomic_write_text(tmp_path / "g.txt", "y", label="two")
        assert trace[:4] == ["one.before_write", "one.after_write",
                             "one.before_rename", "one.after_rename"]
        assert trace[4].startswith("two.")

    def test_env_crashpoint_kills_subprocess(self, tmp_path):
        # PARMONC_CRASHPOINT makes the process die mid-write like a
        # SIGKILL: exit 137, target untouched, temp stranded.
        program = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from pathlib import Path\n"
            "from repro.runtime.storage import atomic_write_text\n"
            "atomic_write_text(Path(sys.argv[2]) / 'f.txt', 'new',"
            " label='lbl')\n")
        env = dict(os.environ, PARMONC_CRASHPOINT="lbl.before_rename")
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        result = subprocess.run(
            [sys.executable, "-c", program, repo_src, str(tmp_path)],
            env=env, capture_output=True)
        assert result.returncode == storage.CRASH_EXIT_CODE, result.stderr
        assert not (tmp_path / "f.txt").exists()
        assert (tmp_path / "f.txt.tmp").exists()


class TestSweep:
    def test_sweeps_recursively(self, tmp_path):
        (tmp_path / "savepoints").mkdir()
        (tmp_path / "savepoint.json.tmp").write_text("x")
        (tmp_path / "savepoints" / "processor_00000.json.tmp").write_text("y")
        (tmp_path / "keep.json").write_text("z")
        removed = sweep_temp_files(tmp_path)
        assert len(removed) == 2
        assert (tmp_path / "keep.json").exists()
        assert sweep_temp_files(tmp_path) == []

    def test_missing_root(self, tmp_path):
        assert sweep_temp_files(tmp_path / "absent") == []
