"""Tests for repro.stats.merging: formula (5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import MomentAccumulator, MomentSnapshot
from repro.stats.merging import combine_estimates, merge_snapshots


def snapshot_of(values, shape=(1, 1)):
    accumulator = MomentAccumulator(*shape)
    for value in values:
        accumulator.add(value)
    return accumulator.snapshot()


class TestMergeSnapshots:
    def test_formula_5_unequal_volumes(self):
        # Three "processors" with different sample volumes l_m; the
        # merged mean must be the volume-weighted mean, i.e. the plain
        # mean of the concatenated sample.
        parts = [[1.0, 2.0], [3.0], [4.0, 5.0, 6.0]]
        merged = merge_snapshots([snapshot_of(p) for p in parts])
        flat = [v for part in parts for v in part]
        assert merged.volume == len(flat)
        assert merged.estimates().mean[0, 0] == pytest.approx(
            np.mean(flat))

    def test_merge_single(self):
        snapshot = snapshot_of([1.0, 2.0])
        merged = merge_snapshots([snapshot])
        assert merged.volume == 2
        assert np.array_equal(merged.sum1, snapshot.sum1)

    def test_merge_empty_iterable_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_snapshots([])

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_snapshots([MomentSnapshot.zero(1, 1),
                             MomentSnapshot.zero(2, 1)])

    def test_merge_accumulates_compute_time(self):
        a = MomentAccumulator(1, 1)
        a.add(1.0, compute_time=2.0)
        b = MomentAccumulator(1, 1)
        b.add(1.0, compute_time=3.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.compute_time == pytest.approx(5.0)

    def test_zero_snapshots_merge_to_zero(self):
        merged = merge_snapshots([MomentSnapshot.zero(1, 1)] * 3)
        assert merged.volume == 0

    def test_does_not_mutate_inputs(self):
        a = snapshot_of([1.0])
        b = snapshot_of([2.0])
        merge_snapshots([a, b])
        assert a.sum1[0, 0] == 1.0
        assert b.sum1[0, 0] == 2.0

    @given(chunks=st.lists(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=0,
                 max_size=10),
        min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_merge_is_order_invariant_and_associative(self, chunks):
        snapshots = [snapshot_of(chunk) for chunk in chunks]
        forward = merge_snapshots(snapshots)
        backward = merge_snapshots(list(reversed(snapshots)))
        assert forward.volume == backward.volume
        assert forward.sum1[0, 0] == pytest.approx(backward.sum1[0, 0])
        # Associativity: merging a prefix first changes nothing.
        if len(snapshots) > 2:
            nested = merge_snapshots(
                [merge_snapshots(snapshots[:2]), *snapshots[2:]])
            assert nested.sum1[0, 0] == pytest.approx(forward.sum1[0, 0])
            assert nested.volume == forward.volume


class TestCombineEstimates:
    def test_combined_estimates_match_monolithic(self):
        values = list(np.linspace(0.0, 1.0, 50))
        split = [snapshot_of(values[:20]), snapshot_of(values[20:])]
        combined = combine_estimates(split)
        monolithic = snapshot_of(values).estimates()
        assert combined.mean[0, 0] == pytest.approx(
            monolithic.mean[0, 0])
        assert combined.variance[0, 0] == pytest.approx(
            monolithic.variance[0, 0])
        assert combined.abs_error[0, 0] == pytest.approx(
            monolithic.abs_error[0, 0])

    def test_zero_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_estimates([MomentSnapshot.zero(1, 1)])
