"""Tests for the parmonc-report command and run histories."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.cli.report import main as report_main, render_report
from repro.exceptions import ReproError
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.worker import run_worker


class TestRenderReport:
    def test_summary_of_completed_run(self, tmp_path):
        parmonc(lambda rng: rng.random(), maxsv=120, processors=3,
                workdir=tmp_path, seqnum=4)
        text = render_report(tmp_path)
        assert "total_sample_volume" in text
        assert "120" in text
        assert "seqnum" in text
        assert "resumable: yes" in text
        assert "next free seqnum is 5" in text

    def test_matrix_preview_truncated(self, tmp_path):
        parmonc(lambda rng: np.full((20, 10), rng.random()),
                nrow=20, ncol=10, maxsv=10, workdir=tmp_path)
        text = render_report(tmp_path, rows=3)
        assert "shape 20x10" in text
        assert "more rows" in text
        assert "..." in text

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ReproError):
            render_report(tmp_path)

    def test_pending_manaver_recovery_flagged(self, tmp_path):
        config = RunConfig(maxsv=12, processors=2, workdir=tmp_path)
        data, state = start_session(config)
        collector = Collector(config, state.base, data)
        for rank in range(2):
            run_worker(lambda rng: rng.random(), config, rank, 6,
                       send=lambda m: collector.receive(m, 0.0))
        text = render_report(tmp_path)
        assert "await `manaver` recovery" in text
        assert "12 realizations" in text

    def test_registry_shown(self, tmp_path):
        parmonc(lambda rng: 1.0, maxsv=5, workdir=tmp_path)
        parmonc(lambda rng: 1.0, maxsv=5, res=1, seqnum=1,
                workdir=tmp_path)
        text = render_report(tmp_path)
        assert "experiments started (2)" in text


class TestReportCli:
    def test_exit_codes(self, tmp_path, capsys):
        assert report_main(["--workdir", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err
        parmonc(lambda rng: 1.0, maxsv=5, workdir=tmp_path)
        assert report_main(["--workdir", str(tmp_path)]) == 0
        assert "PARMONC run summary" in capsys.readouterr().out


class TestRunHistory:
    def test_history_records_save_points(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=500,
                         processors=2, peraver=0.0, workdir=tmp_path)
        assert len(result.history) >= 2
        times, volumes, errors = zip(*result.history)
        # Volume is non-decreasing across save-points...
        assert all(b >= a for a, b in zip(volumes, volumes[1:]))
        # ...and the last entry covers the whole sample.
        assert volumes[-1] == 500

    def test_error_decays_along_history(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=4000,
                         processors=2, peraver=0.0, workdir=tmp_path)
        _, volumes, errors = zip(*result.history)
        early = next(e for v, e in zip(volumes, errors) if v >= 100)
        late = errors[-1]
        assert late < early

    def test_in_memory_runs_have_empty_history(self, tmp_path):
        result = parmonc(lambda rng: rng.random(), maxsv=100,
                         workdir=tmp_path, use_files=False)
        assert result.history == ()
