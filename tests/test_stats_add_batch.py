"""Tests for MomentAccumulator.add_batch: bit-identity with repeated add.

``add_batch`` is the batched worker loop's accumulation primitive; its
contract is exact equivalence with calling :meth:`MomentAccumulator.add`
once per row, including the rejection semantics (a poisoned batch must
leave the accumulator untouched).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.stats import MomentAccumulator

# Batch sizes straddling the internal fold chunk (32).
SIZES = [1, 2, 31, 32, 33, 64, 65, 100]
SHAPES = [(1, 1), (2, 1), (1, 3), (5, 4)]

finite = st.floats(min_value=-1e12, max_value=1e12,
                   allow_nan=False, allow_infinity=False)


def assert_same(left: MomentAccumulator, right: MomentAccumulator):
    a, b = left.snapshot(), right.snapshot()
    assert np.array_equal(a.sum1, b.sum1)
    assert np.array_equal(a.sum2, b.sum2)
    assert a.volume == b.volume
    assert a.compute_time == b.compute_time


class TestEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("size", SIZES)
    def test_matches_repeated_add(self, shape, size):
        rng = np.random.default_rng(size * 31 + shape[0])
        batch = rng.random((size,) + shape) * 200.0 - 100.0
        scalar = MomentAccumulator(*shape)
        batched = MomentAccumulator(*shape)
        # Warm both with a couple of scalar adds so the running sums are
        # non-zero when the batch arrives.
        for row in batch[: min(2, size)]:
            scalar.add(row)
            batched.add(row)
        for row in batch:
            scalar.add(row)
        batched.add_batch(batch)
        assert_same(scalar, batched)

    @given(values=st.lists(finite, min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_scalar_problem_property(self, values):
        scalar = MomentAccumulator(1, 1)
        batched = MomentAccumulator(1, 1)
        for value in values:
            scalar.add(value)
        batched.add_batch(np.asarray(values))
        assert_same(scalar, batched)

    @given(rows=st.lists(
        st.lists(finite, min_size=3, max_size=3), min_size=1, max_size=70))
    @settings(max_examples=40, deadline=None)
    def test_matrix_problem_property(self, rows):
        batch = np.asarray(rows, dtype=np.float64).reshape(-1, 1, 3)
        scalar = MomentAccumulator(1, 3)
        batched = MomentAccumulator(1, 3)
        for row in batch:
            scalar.add(row)
        batched.add_batch(batch)
        assert_same(scalar, batched)

    def test_flat_vector_convenience_for_1x1(self):
        acc = MomentAccumulator(1, 1)
        acc.add_batch([1.0, 2.0, 3.0])
        assert acc.volume == 3
        assert acc.snapshot().sum1[0, 0] == 6.0

    def test_broadcast_view_accepted(self):
        constant = np.full((2, 3), 1.5)
        batch = np.broadcast_to(constant, (40, 2, 3))
        scalar = MomentAccumulator(2, 3)
        batched = MomentAccumulator(2, 3)
        for _ in range(40):
            scalar.add(constant)
        batched.add_batch(batch)
        assert_same(scalar, batched)

    def test_successive_batches_chain(self):
        rng = np.random.default_rng(9)
        batch = rng.random((70, 3, 2))
        scalar = MomentAccumulator(3, 2)
        batched = MomentAccumulator(3, 2)
        for row in batch:
            scalar.add(row)
        batched.add_batch(batch[:33])
        batched.add_batch(batch[33:])
        assert_same(scalar, batched)

    def test_empty_batch_is_noop(self):
        acc = MomentAccumulator(2, 2)
        acc.add(np.ones((2, 2)))
        before = acc.snapshot()
        acc.add_batch(np.empty((0, 2, 2)))
        after = acc.snapshot()
        assert np.array_equal(before.sum1, after.sum1)
        assert before.volume == after.volume


class TestComputeTime:
    def test_accumulates_once_per_batch(self):
        acc = MomentAccumulator(1, 1)
        acc.add_batch(np.ones(5), compute_time=0.25)
        acc.add_batch(np.ones(3), compute_time=0.5)
        assert acc.compute_time == 0.75
        assert acc.volume == 8

    def test_negative_rejected(self):
        acc = MomentAccumulator(1, 1)
        with pytest.raises(ConfigurationError):
            acc.add_batch(np.ones(2), compute_time=-1.0)


class TestRejection:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("position", [0, 40, 99])
    def test_non_finite_rejects_whole_batch(self, bad, position):
        batch = np.ones((100, 2, 2))
        batch[position, 1, 0] = bad
        acc = MomentAccumulator(2, 2)
        acc.add(np.full((2, 2), 3.0))
        before = acc.snapshot()
        with pytest.raises(ConfigurationError, match="non-finite"):
            acc.add_batch(batch)
        after = acc.snapshot()
        assert np.array_equal(before.sum1, after.sum1)
        assert np.array_equal(before.sum2, after.sum2)
        assert before.volume == after.volume == 1

    def test_wrong_inner_shape(self):
        acc = MomentAccumulator(2, 2)
        with pytest.raises(ConfigurationError, match="batch shape"):
            acc.add_batch(np.ones((4, 2, 3)))

    def test_wrong_rank(self):
        acc = MomentAccumulator(2, 2)
        with pytest.raises(ConfigurationError, match="batch shape"):
            acc.add_batch(np.ones((2, 2)))

    def test_flat_vector_rejected_for_matrix_problem(self):
        acc = MomentAccumulator(2, 2)
        with pytest.raises(ConfigurationError, match="batch shape"):
            acc.add_batch(np.ones(4))
