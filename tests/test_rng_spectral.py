"""Tests for repro.rng.spectral: the exact lattice test."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.rng.multiplier import BASE_MULTIPLIER, MODULUS
from repro.rng.spectral import (
    dual_lattice_basis,
    gauss_reduce,
    lll_reduce,
    shortest_vector_sq,
    spectral_merit,
    spectral_nu,
    spectral_report,
)


def _dot(u, v):
    return sum(a * b for a, b in zip(u, v))


class TestDualLattice:
    def test_basis_rows_are_dual_vectors(self):
        # Every basis row u satisfies sum u_i A**i = 0 (mod m).
        multiplier, modulus = 137, 2 ** 16
        basis = dual_lattice_basis(multiplier, modulus, 4)
        for row in basis:
            value = sum(coefficient * pow(multiplier, i, modulus)
                        for i, coefficient in enumerate(row))
            assert value % modulus == 0

    def test_determinant_is_modulus(self):
        # The dual lattice has covolume m (triangular basis).
        basis = dual_lattice_basis(7, 64, 3)
        determinant = basis[0][0] * basis[1][1] * basis[2][2]
        assert determinant == 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dual_lattice_basis(5, 64, 1)
        with pytest.raises(ConfigurationError):
            dual_lattice_basis(64, 64, 2)


class TestGaussReduction:
    def test_finds_shortest_in_known_lattice(self):
        # Lattice Z(5,0) + Z(3,1): shortest vector is (-1, 2)
        # (= (3,1)*2 - (5,0)*... enumerate to confirm).
        u, v = gauss_reduce([5, 0], [3, 1])
        best = _dot(u, u)
        brute = min(
            _dot([a * 5 + b * 3, b], [a * 5 + b * 3, b])
            for a in range(-6, 7) for b in range(-6, 7)
            if (a, b) != (0, 0))
        assert best == brute

    @given(multiplier=st.integers(1, 2 ** 20 - 1).filter(lambda m: m % 2),
           log_modulus=st.integers(8, 20))
    @settings(max_examples=40)
    def test_matches_brute_force_for_small_moduli(self, multiplier,
                                                  log_modulus):
        modulus = 1 << log_modulus
        multiplier %= modulus
        if multiplier == 0:
            multiplier = 1
        basis = dual_lattice_basis(multiplier, modulus, 2)
        u, _ = gauss_reduce(basis[0], basis[1])
        nu_sq = _dot(u, u)
        # Brute force over dual vectors: u0 + u1*A = 0 mod m with
        # |u1| <= ceil(sqrt(m)) covers the shortest by Minkowski.
        bound = int(math.isqrt(modulus)) + 2
        brute = nu_sq
        for u1 in range(-bound, bound + 1):
            residue = (-u1 * multiplier) % modulus
            for u0 in (residue, residue - modulus):
                if u0 == 0 and u1 == 0:
                    continue
                brute = min(brute, u0 * u0 + u1 * u1)
        assert nu_sq == brute


class TestLll:
    def test_reduces_to_short_basis(self):
        basis = dual_lattice_basis(65539, 2 ** 31, 3)
        reduced = lll_reduce(basis)
        # RANDU's infamous 3-D relation: 9x_k - 6x_{k+1} + x_{k+2} = 0,
        # i.e. the dual vector (9, -6, 1) of squared length 118.
        assert shortest_vector_sq(reduced) == 118

    def test_preserves_lattice_membership(self):
        multiplier, modulus = 137, 2 ** 16
        basis = dual_lattice_basis(multiplier, modulus, 4)
        for row in lll_reduce(basis):
            value = sum(coefficient * pow(multiplier, i, modulus)
                        for i, coefficient in enumerate(row))
            assert value % modulus == 0

    def test_shortest_vector_dimension_guard(self):
        with pytest.raises(ConfigurationError):
            shortest_vector_sq([[1] * 9] * 9)


class TestSpectralValues:
    def test_randu_is_catastrophic_in_3d(self):
        # The canonical negative control: RANDU (A=65539, m=2**31).
        merit = spectral_merit(65539, 2 ** 31, 3)
        assert merit < 0.02

    def test_randu_fine_in_2d(self):
        # RANDU's failure is specifically 3-dimensional.
        assert spectral_merit(65539, 2 ** 31, 2) > 0.5

    def test_minstd_is_acceptable(self):
        for dimension in (2, 3):
            assert spectral_merit(16807, 2 ** 31 - 1, dimension) > 0.3

    def test_parmonc_multiplier_passes_all_dimensions(self):
        report = spectral_report(BASE_MULTIPLIER, MODULUS,
                                 dimensions=(2, 3, 4, 5, 6))
        assert report.worst > 0.3
        assert set(report.merits) == {2, 3, 4, 5, 6}

    def test_even_5_exponent_would_be_worse_or_period_broken(self):
        # Not strictly spectral: sanity that the chosen multiplier is
        # the odd-exponent member (period argument lives in
        # test_rng_multiplier).
        assert BASE_MULTIPLIER % 8 == 5

    def test_nu_dimension_2_brute_consistency(self):
        assert spectral_nu(5, 32, 2) == pytest.approx(
            math.sqrt(min((a + 5 * b) ** 2 + b ** 2
                          for b in range(-6, 7)
                          for a in (-32, 0, 32)
                          if (a + 5 * b, b) != (0, 0))))

    def test_merit_bounds(self):
        merit = spectral_merit(BASE_MULTIPLIER, MODULUS, 2)
        assert 0.0 < merit <= 1.0001

    def test_unsupported_dimension(self):
        with pytest.raises(ConfigurationError):
            spectral_merit(5, 64, 9)

    def test_report_render(self):
        report = spectral_report(dimensions=(2, 3))
        text = report.render()
        assert "S_2" in text and "S_3" in text
