"""Tests for the Job/Scheduler split: multi-tenant runs, one pool.

Invariants under test:

* fair share — long-run dispatch rates proportional to priorities;
* quotas — per-job ``max_workers`` and the global ``workers`` cap are
  never exceeded;
* admission — ``max_jobs`` back-pressure raises ``AdmissionError``;
* identity — N jobs multiplexed over one shared pool produce exactly
  the estimates and save-point artifacts of N single-job runs;
* the scheduler's measured SLOs match their own Monte Carlo
  prediction (the G/G/c/K model in ``repro.apps.queueing``).
"""

from __future__ import annotations

import json
import time

import pytest

from repro import parmonc
from repro.apps.queueing import (
    GGcKQueue,
    make_ggck_realization,
    simulate_ggck,
)
from repro.exceptions import AdmissionError, ConfigurationError
from repro.rng.lcg128 import Lcg128
from repro.runtime.config import RunConfig
from repro.runtime.engine import create_backend
from repro.runtime.job import JobSpec, JobStatus
from repro.runtime.scheduler import Scheduler
from repro.runtime.sequential import SequentialBackend, run_sequential


def square(rng):
    return rng.random() ** 2


def nap(rng):
    """A realization with a real wall-clock footprint (~0.3 s)."""
    time.sleep(0.3)
    return rng.random()


def spec(routine=square, *, seqnum=0, maxsv=12, processors=12,
         workdir=None, name=None, priority=1.0, max_workers=None,
         use_files=False, deadline=None):
    extra = {} if workdir is None else {"workdir": workdir}
    config = RunConfig(maxsv=maxsv, processors=processors,
                       perpass=0.0, peraver=0.0, seqnum=seqnum, **extra)
    return JobSpec(routine=routine, config=config, name=name,
                   priority=priority, max_workers=max_workers,
                   deadline=deadline, use_files=use_files)


class RecordingBackend(SequentialBackend):
    """Sequential backend that records every spawn batch it receives."""

    def __init__(self):
        super().__init__()
        self.spawned = []           # (job, rank) in dispatch order
        self.concurrency = []       # in-flight total at each spawn

    def spawn(self, assignments):
        busy = sum(len(job.in_flight) for job in self.engine.jobs)
        for assignment in assignments:
            self.spawned.append((assignment.job, assignment.rank))
            self.concurrency.append(busy + 1)
            busy += 1
        return super().spawn(assignments)


class TestFairShare:
    def test_dispatch_ratio_matches_priorities(self):
        # One slot, two starved jobs with priorities 3:1.  The deficit
        # auction must hand the slot to the priority-3 job three times
        # as often: the first 12 dispatches are exactly 9 + 3.
        backend = RecordingBackend()
        scheduler = Scheduler(backend, workers=1)
        high = scheduler.submit(spec(seqnum=0, name="high", priority=3.0))
        low = scheduler.submit(spec(seqnum=1, name="low", priority=1.0))
        scheduler.run()
        first = [job for job, _ in backend.spawned[:12]]
        assert first.count("high") == 9
        assert first.count("low") == 3
        assert high.status is JobStatus.DONE
        assert low.status is JobStatus.DONE
        # Starvation never happens: both jobs drain completely.
        assert high.dispatched == low.dispatched == 12

    def test_equal_priorities_alternate_fairly(self):
        backend = RecordingBackend()
        scheduler = Scheduler(backend, workers=1)
        scheduler.submit(spec(seqnum=0, name="a"))
        scheduler.submit(spec(seqnum=1, name="b"))
        scheduler.run()
        first = [job for job, _ in backend.spawned[:8]]
        assert first.count("a") == 4
        assert first.count("b") == 4

    def test_estimates_unaffected_by_contention(self, tmp_path):
        # Interleaving under a 1-slot pool must not change the numbers:
        # each job's estimate equals its solo sequential run.
        backend = RecordingBackend()
        scheduler = Scheduler(backend, workers=1)
        jobs = [scheduler.submit(spec(seqnum=i, name=f"j{i}",
                                      priority=float(i + 1)))
                for i in range(3)]
        scheduler.run()
        for i, job in enumerate(jobs):
            reference = run_sequential(
                square, RunConfig(maxsv=12, processors=12, perpass=0.0,
                                  peraver=0.0, seqnum=i,
                                  workdir=tmp_path / f"ref{i}"),
                use_files=False)
            assert (job.result.estimates.mean.tobytes()
                    == reference.estimates.mean.tobytes())
            assert (job.result.estimates.abs_error.tobytes()
                    == reference.estimates.abs_error.tobytes())


class TestQuotas:
    def test_global_worker_cap_never_exceeded(self):
        backend = RecordingBackend()
        scheduler = Scheduler(backend, workers=2)
        scheduler.submit(spec(seqnum=0, name="a"))
        scheduler.submit(spec(seqnum=1, name="b"))
        scheduler.run()
        assert backend.concurrency
        assert max(backend.concurrency) <= 2

    def test_max_workers_caps_one_job(self):
        # Unbounded pool: the capped job tops out at its quota while
        # its uncapped sibling fans out to every processor at once.
        backend = RecordingBackend()
        scheduler = Scheduler(backend)
        capped = scheduler.submit(
            spec(seqnum=0, name="capped", processors=6, maxsv=6,
                 max_workers=2))
        free = scheduler.submit(
            spec(seqnum=1, name="free", processors=6, maxsv=6))
        scheduler.run()
        assert capped.peak_workers == 2
        assert free.peak_workers == 6
        assert capped.status is JobStatus.DONE
        assert capped.result.total_volume == 6

    def test_max_workers_respected_under_global_cap(self):
        backend = RecordingBackend()
        scheduler = Scheduler(backend, workers=4)
        capped = scheduler.submit(
            spec(seqnum=0, name="capped", processors=8, maxsv=8,
                 max_workers=1))
        scheduler.submit(spec(seqnum=1, name="free", processors=8,
                              maxsv=8))
        scheduler.run()
        assert capped.peak_workers == 1
        assert max(backend.concurrency) <= 4


class TestAdmission:
    def test_admission_error_at_capacity(self):
        scheduler = Scheduler(SequentialBackend(), max_jobs=2)
        scheduler.submit(spec(seqnum=0, name="a"))
        scheduler.submit(spec(seqnum=1, name="b"))
        with pytest.raises(AdmissionError):
            scheduler.submit(spec(seqnum=2, name="c"))
        with pytest.raises(AdmissionError):
            scheduler.submit(spec(seqnum=3, name="d"))
        assert scheduler.rejected == 2
        scheduler.run()
        report = scheduler.sla_report()
        assert report["submitted"] == 2
        assert report["rejected"] == 2

    def test_duplicate_job_names_rejected(self):
        scheduler = Scheduler(SequentialBackend())
        scheduler.submit(spec(seqnum=0, name="twin"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            scheduler.submit(spec(seqnum=1, name="twin"))

    def test_single_job_backends_rejected(self):
        scheduler = Scheduler(create_backend("simcluster"))
        with pytest.raises(ConfigurationError, match="multiplex"):
            scheduler.submit(spec(seqnum=0, name="a"))

    def test_colliding_workdirs_rejected(self, tmp_path):
        scheduler = Scheduler(SequentialBackend())
        scheduler.submit(spec(seqnum=0, name="a", workdir=tmp_path,
                              use_files=True))
        with pytest.raises(ConfigurationError, match="workdir"):
            scheduler.submit(spec(seqnum=1, name="b", workdir=tmp_path,
                                  use_files=True))

    def test_submit_after_run_rejected(self):
        scheduler = Scheduler(SequentialBackend())
        scheduler.submit(spec(seqnum=0, name="a"))
        scheduler.run()
        with pytest.raises(ConfigurationError, match="before"):
            scheduler.submit(spec(seqnum=1, name="b"))
        with pytest.raises(ConfigurationError, match="once"):
            scheduler.run()

    def test_invalid_knobs(self):
        with pytest.raises(ConfigurationError):
            Scheduler(SequentialBackend(), workers=0)
        with pytest.raises(ConfigurationError):
            Scheduler(SequentialBackend(), max_jobs=0)
        with pytest.raises(ConfigurationError):
            Scheduler(SequentialBackend()).run()


class TestSlaTracking:
    def test_report_shape_and_deadline_miss(self):
        scheduler = Scheduler(SequentialBackend(), workers=1)
        # nap() sleeps 0.3 s per realization; a 1 ms deadline on a job
        # with two realizations is guaranteed missed, a generous one
        # is guaranteed met.
        missed = scheduler.submit(
            spec(nap, seqnum=0, name="tight", maxsv=2, processors=1,
                 deadline=0.001))
        met = scheduler.submit(
            spec(square, seqnum=1, name="loose", maxsv=2, processors=1,
                 deadline=3600.0))
        scheduler.run()
        report = scheduler.sla_report()
        assert report["deadline_misses"] == 1
        by_id = {record["job"]: record for record in report["jobs"]}
        assert by_id["tight"]["deadline_missed"]
        assert not by_id["loose"]["deadline_missed"]
        assert by_id["tight"]["wait_seconds"] >= 0.0
        assert (by_id["tight"]["makespan_seconds"]
                >= by_id["tight"]["wait_seconds"])
        # The result's snapshot is taken during finalization (status
        # "draining", no "done" lifecycle stamp yet); the report
        # re-snapshots afterwards ("done").
        volatile = {"status", "states"}
        for result_sla, reported in ((missed.result.sla, by_id["tight"]),
                                     (met.result.sla, by_id["loose"])):
            assert {k: v for k, v in result_sla.items()
                    if k not in volatile} \
                == {k: v for k, v in reported.items() if k not in volatile}
            assert reported["states"]["done"] \
                >= result_sla["states"]["draining"]


def _normalized_artifacts(workdir):
    """Read a job's result artifacts with wall-clock fields removed.

    Estimates and save-points depend only on the RNG hierarchy, never on
    scheduling — but a handful of fields record wall time (how long the
    run took), which legitimately differs between a contended shared
    pool and a solo run.  Strip exactly those and require everything
    else byte-identical.
    """
    root = workdir / "parmonc_data"
    artifacts = {}
    for name in ("results/func.dat", "results/func_ci.dat"):
        artifacts[name] = (root / name).read_bytes()
    log_lines = [line for line
                 in (root / "results/func_log.dat").read_text().splitlines()
                 if not line.startswith(("mean_time_per_realization_sec",
                                         "written_at", "elapsed_sec"))]
    artifacts["results/func_log.dat"] = "\n".join(log_lines)
    savepoint = json.loads((root / "savepoint.json").read_text())
    savepoint.pop("checksum", None)
    savepoint.pop("written_at", None)
    savepoint["payload"]["snapshot"].pop("compute_time", None)
    artifacts["savepoint.json"] = savepoint
    return artifacts


class TestConcurrentIdentity:
    def test_eight_jobs_match_single_runs_bit_for_bit(self, tmp_path):
        # The acceptance scenario: 8 experiments multiplexed over one
        # 4-slot multiprocess pool vs. the same 8 configs run one at a
        # time on the reference sequential path.  Estimates and result
        # artifacts must agree byte for byte (wall-clock fields aside).
        jobs = [{"realization": square, "name": f"exp{i}",
                 "maxsv": 40, "processors": 3, "seqnum": i,
                 "perpass": 0.0, "peraver": 0.0,
                 "workdir": tmp_path / "shared" / f"exp{i}",
                 "priority": float(1 + i % 3)}
                for i in range(8)]
        results = parmonc(jobs=jobs, backend="multiprocess", workers=4,
                          start_method="fork")
        assert len(results) == 8
        for i, shared in enumerate(results):
            solo = parmonc(square, maxsv=40, seqnum=i, perpass=0.0,
                           peraver=0.0, processors=3,
                           backend="sequential",
                           workdir=tmp_path / "solo" / f"exp{i}")
            assert shared.total_volume == solo.total_volume == 40
            assert (shared.estimates.mean.tobytes()
                    == solo.estimates.mean.tobytes())
            assert (shared.estimates.variance.tobytes()
                    == solo.estimates.variance.tobytes())
            assert (shared.estimates.abs_error.tobytes()
                    == solo.estimates.abs_error.tobytes())
            assert (_normalized_artifacts(tmp_path / "shared" / f"exp{i}")
                    == _normalized_artifacts(tmp_path / "solo" / f"exp{i}"))
            assert shared.sla["job"] == f"exp{i}"
            assert shared.sla["completed"]

    def test_batch_api_validation(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            parmonc(square, maxsv=10, jobs=[{"realization": square,
                                             "maxsv": 10}])
        with pytest.raises(ConfigurationError):
            parmonc(square, maxsv=10, workers=4)
        with pytest.raises(ConfigurationError, match="unknown"):
            parmonc(jobs=[{"realization": square, "maxsv": 10,
                           "wibble": 3}], backend="sequential")
        with pytest.raises(ConfigurationError):
            parmonc(jobs=[{"maxsv": 10}], backend="sequential")
        with pytest.raises(ConfigurationError):
            parmonc(jobs=[], backend="sequential")


class TestSchedulerSlosMatchMonteCarlo:
    """The SLA-validator pattern: the scheduler *is* a G/G/c/K queue.

    Job submissions are a batch arrival stream, the shared worker slots
    are the ``c`` servers, ``max_jobs`` is the capacity bound ``K``,
    submit-to-start wait is the latency SLO and admission rejection is
    blocking.  ``repro.apps.queueing`` simulates that queue with the
    library's own Monte Carlo machinery — so the scheduler's measured
    SLOs can be validated against their MC prediction.
    """

    def test_admission_rejections_match_predicted_blocking(self, tmp_path):
        # Batch of 6 submissions into a K=4 queue: the G/G/c/K model
        # with instantaneous arrivals predicts the blocked fraction
        # deterministically, and the scheduler must reject exactly
        # that share of the batch.
        queue = GGcKQueue(servers=2, capacity=4, customers=6,
                          interarrival=lambda rng: 0.0,
                          service=lambda rng: 1.0)
        prediction = parmonc(make_ggck_realization(queue), ncol=3,
                             maxsv=16, processors=2, perpass=0.0,
                             peraver=0.0, backend="sequential",
                             workdir=tmp_path, use_files=False)
        blocked_fraction = prediction.estimates.mean[0, 1]
        assert blocked_fraction == pytest.approx(2.0 / 6.0)

        scheduler = Scheduler(SequentialBackend(), workers=2, max_jobs=4)
        rejected = 0
        for i in range(6):
            try:
                scheduler.submit(spec(seqnum=i, name=f"j{i}", maxsv=4,
                                      processors=1))
            except AdmissionError:
                rejected += 1
        scheduler.run()
        assert rejected == round(blocked_fraction * 6)
        assert scheduler.sla_report()["rejected"] == rejected

    def test_measured_waits_match_predicted_waits(self, tmp_path):
        # 6 jobs of ~0.6 s each over c=2 real worker processes.  The
        # deterministic G/G/c/K prediction for the mean submit-to-start
        # wait is (0+0+s+s+2s+2s)/6 = 0.6 s; the measured scheduler
        # waits must land within 50% (process startup and poll
        # granularity are the slack).
        service = 0.6
        queue = GGcKQueue(servers=2, capacity=6, customers=6,
                          interarrival=lambda rng: 0.0,
                          service=lambda rng, s=service: s)
        prediction = parmonc(make_ggck_realization(queue), ncol=3,
                             maxsv=8, processors=1, perpass=0.0,
                             peraver=0.0, backend="sequential",
                             workdir=tmp_path, use_files=False)
        predicted_wait = prediction.estimates.mean[0, 0]
        assert predicted_wait == pytest.approx(service)

        jobs = [{"realization": nap, "name": f"j{i}", "maxsv": 2,
                 "processors": 1, "seqnum": i, "perpass": 0.0,
                 "peraver": 0.0, "use_files": False}
                for i in range(6)]
        results = parmonc(jobs=jobs, backend="multiprocess", workers=2,
                          start_method="fork")
        waits = [result.sla["wait_seconds"] for result in results]
        measured = sum(waits) / len(waits)
        assert abs(measured - predicted_wait) <= 0.5 * predicted_wait

    def test_ggck_batch_case_is_exact(self):
        # The hand-computable case the analogy rests on: 8 batch
        # arrivals, 2 servers, capacity 4, unit service.
        queue = GGcKQueue(servers=2, capacity=4, customers=8,
                          interarrival=lambda rng: 0.0,
                          service=lambda rng: 1.0)
        wait, blocked, sojourn = simulate_ggck(queue, Lcg128(7))
        assert wait == pytest.approx(0.5)
        assert blocked == pytest.approx(0.5)
        assert sojourn == pytest.approx(1.5)

    def test_ggck_validation(self):
        with pytest.raises(ConfigurationError):
            GGcKQueue(servers=0)
        with pytest.raises(ConfigurationError):
            GGcKQueue(servers=4, capacity=2)
        with pytest.raises(ConfigurationError):
            GGcKQueue(customers=0)

    def test_ggck_reduces_to_mm1_lindley(self):
        # c=1 with effectively unbounded capacity must reproduce the
        # M/M/1 Lindley recursion's regime: near the known steady
        # state for a long, moderately loaded day.
        queue = GGcKQueue(servers=1, capacity=10_000, customers=20_000,
                          interarrival=lambda rng: _expo(rng, 0.6),
                          service=lambda rng: _expo(rng, 1.0))
        wait, blocked, _ = simulate_ggck(queue, Lcg128(99))
        assert blocked == 0.0
        # W_q = rho / (mu - lambda) = 0.6 / 0.4 = 1.5
        assert wait == pytest.approx(1.5, rel=0.15)


def _expo(rng, rate):
    from repro.rng.distributions import exponential
    return exponential(rng, rate)


# ---------------------------------------------------------------------------
# Streaming service


def slow_square(rng):
    """``square`` with a small wall-clock footprint, to hold a pool busy."""
    time.sleep(0.02)
    return rng.random() ** 2


def _streaming(backend, **kwargs):
    """A scheduler in streaming mode, driven synchronously via step()."""
    scheduler = Scheduler(backend, **kwargs)
    scheduler.streaming = True
    return scheduler


def _drive(scheduler, predicate, limit=10_000):
    """Step the service loop until ``predicate()`` holds."""
    for _ in range(limit):
        if predicate():
            return
        scheduler.step(poll_timeout=0.0)
    raise AssertionError("scheduler did not reach the expected state")


class TestStreamingLifecycle:
    """Live-queue semantics: cancel, mid-stream admission, drain."""

    def test_cancel_queued_job_is_withdrawn_immediately(self):
        scheduler = _streaming(SequentialBackend())
        job = scheduler.submit(spec(name="queued-victim"))
        assert job.status is JobStatus.QUEUED
        assert scheduler.cancel(job) is True
        assert job.status is JobStatus.CANCELLED
        assert job.finished.is_set()
        assert "cancelled" in job.state_times
        # The withdrawn job never reaches the backend.
        assert scheduler.drain(timeout=5.0) is True
        assert job.result is None
        assert job.dispatched == 0

    def test_cancel_running_job_tears_down_pending_work(self):
        backend = SequentialBackend()
        scheduler = _streaming(backend)
        job = scheduler.submit(spec(name="victim", maxsv=40,
                                    processors=40))
        # Admit, dispatch, and run a few of the 40 one-realization
        # workers so the job is genuinely mid-flight.
        for _ in range(4):
            scheduler.step(poll_timeout=0.0)
        assert job.status is JobStatus.RUNNING
        assert scheduler.cancel("victim") is True
        assert job.status is JobStatus.RUNNING  # applied by the loop
        scheduler.step(poll_timeout=0.0)
        assert job.status is JobStatus.CANCELLED
        assert not job.pending and not job.in_flight
        assert not backend._pending  # cancel_job() purged the queue
        assert scheduler.drain(timeout=5.0) is True

    def test_cancel_finished_job_returns_false(self):
        scheduler = _streaming(SequentialBackend())
        job = scheduler.submit(spec(name="fast", maxsv=4, processors=2))
        _drive(scheduler, lambda: job.status is JobStatus.DONE)
        assert scheduler.cancel(job) is False
        assert scheduler.cancel("fast") is False

    def test_cancel_unknown_job_raises(self):
        scheduler = _streaming(SequentialBackend())
        with pytest.raises(ConfigurationError, match="unknown job"):
            scheduler.cancel("never-submitted")

    def test_admission_error_mid_stream_and_slot_reuse(self):
        scheduler = _streaming(SequentialBackend(), max_jobs=1)
        first = scheduler.submit(spec(name="first", maxsv=4,
                                      processors=2))
        with pytest.raises(AdmissionError):
            scheduler.submit(spec(name="second", seqnum=1))
        assert scheduler.rejected == 1
        _drive(scheduler, lambda: first.status is JobStatus.DONE)
        # A finished job frees its admission slot mid-stream.
        third = scheduler.submit(spec(name="third", maxsv=4,
                                      processors=2, seqnum=2))
        _drive(scheduler, lambda: third.status is JobStatus.DONE)
        assert scheduler.sla_report()["rejected"] == 1

    def test_cancelling_running_job_frees_admission_slot(self):
        scheduler = _streaming(SequentialBackend(), max_jobs=1)
        victim = scheduler.submit(spec(name="victim", maxsv=40,
                                       processors=40))
        scheduler.step(poll_timeout=0.0)
        assert victim.status is JobStatus.RUNNING
        assert scheduler.cancel(victim) is True
        scheduler.step(poll_timeout=0.0)
        assert victim.status is JobStatus.CANCELLED
        replacement = scheduler.submit(spec(name="replacement", maxsv=4,
                                            processors=2, seqnum=1))
        _drive(scheduler, lambda: replacement.status is JobStatus.DONE)

    def test_drain_with_empty_queue_returns_immediately(self):
        scheduler = _streaming(SequentialBackend())
        before = time.monotonic()
        assert scheduler.drain(timeout=5.0) is True
        assert time.monotonic() - before < 0.5

    def test_submit_after_shutdown_is_rejected(self):
        scheduler = Scheduler(SequentialBackend())
        scheduler.start()
        scheduler.shutdown(timeout=10.0)
        with pytest.raises(ConfigurationError, match="shutting down"):
            scheduler.submit(spec(name="late"))

    def test_prune_drops_finished_jobs_but_keeps_counters(self):
        scheduler = _streaming(SequentialBackend())
        done = scheduler.submit(spec(name="done", maxsv=4, processors=2))
        _drive(scheduler, lambda: done.status is JobStatus.DONE)
        live = scheduler.submit(spec(name="live", seqnum=1))
        assert scheduler.prune() == 1
        report = scheduler.sla_report()
        assert report["submitted"] == 2
        assert [job["job"] for job in report["jobs"]] == ["live"]
        _drive(scheduler, lambda: live.status is JobStatus.DONE)


class TestStreamingParity:
    """ISSUE acceptance: a job submitted while the scheduler is mid-run
    produces byte-identical save-points and estimates to the same job
    run solo — on sequential, multiprocess, and distributed backends."""

    def _late_spec(self, tmp_path):
        config = RunConfig(maxsv=40, processors=4, perpass=0.0,
                           peraver=0.0, seqnum=7,
                           workdir=tmp_path / "late")
        return JobSpec(routine=square, config=config, name="late",
                       use_files=True)

    def _run_streaming(self, backend, tmp_path, workers=None):
        scheduler = Scheduler(backend, workers=workers)
        scheduler.start()
        try:
            filler = scheduler.submit(spec(slow_square, name="filler",
                                           maxsv=60, processors=12))
            # Wait until the pool is genuinely mid-run before the late
            # job arrives.
            deadline = time.monotonic() + 30.0
            while not (filler.status is JobStatus.RUNNING
                       and filler.dispatched > 0):
                if time.monotonic() > deadline:
                    raise AssertionError("filler job never started")
                time.sleep(0.005)
            late = scheduler.submit(self._late_spec(tmp_path))
        finally:
            scheduler.shutdown(timeout=120.0)
        assert filler.status is JobStatus.DONE
        assert late.status is JobStatus.DONE
        assert filler.result.total_volume == 60
        return late

    def _assert_parity(self, tmp_path, late):
        solo = parmonc(square, maxsv=40, seqnum=7, perpass=0.0,
                       peraver=0.0, processors=4, backend="sequential",
                       workdir=tmp_path / "solo")
        streamed = late.result
        assert streamed.total_volume == solo.total_volume == 40
        assert (streamed.estimates.mean.tobytes()
                == solo.estimates.mean.tobytes())
        assert (streamed.estimates.variance.tobytes()
                == solo.estimates.variance.tobytes())
        assert (streamed.estimates.abs_error.tobytes()
                == solo.estimates.abs_error.tobytes())
        assert (_normalized_artifacts(tmp_path / "late")
                == _normalized_artifacts(tmp_path / "solo"))

    def test_sequential_mid_run_submission_is_bit_identical(
            self, tmp_path):
        late = self._run_streaming(SequentialBackend(), tmp_path)
        self._assert_parity(tmp_path, late)

    def test_multiprocess_mid_run_submission_is_bit_identical(
            self, tmp_path):
        backend = create_backend("multiprocess", start_method="fork")
        late = self._run_streaming(backend, tmp_path, workers=4)
        self._assert_parity(tmp_path, late)

    def test_distributed_mid_run_submission_is_bit_identical(
            self, tmp_path):
        from repro.runtime.pool import PoolServer
        server = PoolServer(port=0, workers=4, start_method="fork")
        host, port = server.start()
        try:
            backend = create_backend("distributed",
                                     connect=f"{host}:{port}")
            late = self._run_streaming(backend, tmp_path)
        finally:
            server.stop()
        self._assert_parity(tmp_path, late)


class TestStreamingJobScopedReduction:
    def test_fanout_job_admitted_mid_stream_matches_solo(self, tmp_path):
        # A reduction-fanout job rides the streaming service next to a
        # flat job: its k-ary tree is planned at admission, scoped to
        # the job, torn down at completion — and the estimate stays
        # bit-identical to the solo sequential run.
        backend = create_backend("multiprocess", start_method="fork")
        scheduler = _streaming(backend, workers=8)
        flat = scheduler.submit(spec(slow_square, name="flat",
                                     maxsv=24, processors=6))
        config = RunConfig(maxsv=36, processors=9, perpass=0.0,
                           peraver=0.0, seqnum=3, reduction_fanout=3,
                           workdir=tmp_path / "tree")
        tree = scheduler.submit(JobSpec(routine=square, config=config,
                                        name="tree", use_files=True))
        assert scheduler.drain(timeout=120.0) is True
        scheduler.shutdown(timeout=30.0)
        assert flat.status is JobStatus.DONE
        assert tree.status is JobStatus.DONE
        solo = parmonc(square, maxsv=36, seqnum=3, perpass=0.0,
                       peraver=0.0, processors=9, backend="sequential",
                       workdir=tmp_path / "solo")
        assert tree.result.total_volume == solo.total_volume == 36
        assert (tree.result.estimates.mean.tobytes()
                == solo.estimates.mean.tobytes())
        assert (tree.result.estimates.abs_error.tobytes()
                == solo.estimates.abs_error.tobytes())
        assert (_normalized_artifacts(tmp_path / "tree")
                == _normalized_artifacts(tmp_path / "solo"))


class TestStreamingLoadStudy:
    """Scaled-down million-submission study (the full-scale run lives
    in ``benchmarks/test_bench_streaming.py``): the live admission loop
    replayed against the G/G/c/K reference off one shared generator."""

    def test_rejections_exact_and_waits_match_reference(self):
        from repro.apps.loadstudy import run_load_study
        queue = GGcKQueue(servers=4, capacity=8, customers=20_000,
                          interarrival=lambda rng: _expo(rng, 3.5),
                          service=lambda rng: _expo(rng, 1.0))
        wait, blocked, _ = simulate_ggck(queue, Lcg128(43))
        study = run_load_study(queue, Lcg128(43))
        assert study.submitted == queue.customers
        assert study.rejected == round(blocked * queue.customers)
        assert study.admitted == queue.customers - study.rejected
        # Same draws, same event order: equality to float error, far
        # inside the ISSUE's +/-50% envelope.
        assert study.mean_wait == pytest.approx(wait, rel=1e-12)

    def test_study_matches_monte_carlo_prediction(self, tmp_path):
        from repro.apps.loadstudy import run_load_study
        # The MC leg: predict W_q and P_block with the library's own
        # machinery (independent seed), then check the live admission
        # loop lands within the ISSUE's 50% envelope.
        queue = GGcKQueue(servers=4, capacity=8, customers=2_000,
                          interarrival=lambda rng: _expo(rng, 3.5),
                          service=lambda rng: _expo(rng, 1.0))
        prediction = parmonc(make_ggck_realization(queue), ncol=3,
                             maxsv=32, processors=4, perpass=0.0,
                             peraver=0.0, backend="sequential",
                             workdir=tmp_path, use_files=False)
        predicted_wait = prediction.estimates.mean[0, 0]
        predicted_block = prediction.estimates.mean[0, 1]
        study = run_load_study(queue, Lcg128(101))
        assert (abs(study.mean_wait - predicted_wait)
                <= 0.5 * predicted_wait)
        assert (abs(study.rejected / study.submitted - predicted_block)
                <= 0.5 * predicted_block)
