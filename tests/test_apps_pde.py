"""Tests for repro.apps.pde: walk-on-spheres for the Laplace equation."""

from __future__ import annotations


import numpy as np
import pytest

from repro import parmonc
from repro.apps.pde import (
    DirichletDisk,
    harmonic_polynomial,
    make_realization,
    walk_on_spheres,
)
from repro.exceptions import ConfigurationError


class TestHarmonicPolynomial:
    def test_degree_zero_is_constant(self):
        g = harmonic_polynomial(0)
        assert g(1.0, 0.0) == 1.0
        assert g(0.0, 1.0) == 1.0

    def test_degree_one_is_x(self):
        g = harmonic_polynomial(1)
        assert g(0.3, 0.8) == pytest.approx(0.3)

    def test_degree_two_is_x2_minus_y2(self):
        g = harmonic_polynomial(2)
        assert g(0.6, 0.3) == pytest.approx(0.36 - 0.09)

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic_polynomial(-1)


class TestProblemValidation:
    def test_points_must_be_interior(self):
        with pytest.raises(ConfigurationError):
            DirichletDisk(harmonic_polynomial(1), ((1.0, 0.0),))

    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            DirichletDisk(harmonic_polynomial(1), ())

    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            DirichletDisk(harmonic_polynomial(1), ((0.0, 0.0),),
                          epsilon=0.0)

    def test_shape(self):
        problem = DirichletDisk(harmonic_polynomial(1),
                                ((0.0, 0.0), (0.5, 0.0)))
        assert problem.shape == (2, 1)


class TestWalks:
    def test_deterministic_per_stream(self, tree):
        problem = DirichletDisk(harmonic_polynomial(2), ((0.2, 0.1),))
        a = walk_on_spheres(problem, 0.2, 0.1, tree.rng(0, 0, 4))
        b = walk_on_spheres(problem, 0.2, 0.1, tree.rng(0, 0, 4))
        assert a == b

    def test_exit_values_lie_on_boundary_range(self, tree):
        # For g = x on the unit circle, every exit value is in [-1, 1].
        problem = DirichletDisk(harmonic_polynomial(1), ((0.3, 0.3),))
        values = [walk_on_spheres(problem, 0.3, 0.3, tree.rng(0, 0, r))
                  for r in range(200)]
        assert all(-1.0 <= v <= 1.0 for v in values)

    def test_constant_boundary_is_exact_pathwise(self, tree):
        problem = DirichletDisk(harmonic_polynomial(0), ((0.4, -0.2),))
        value = walk_on_spheres(problem, 0.4, -0.2, tree.rng(0, 0, 0))
        assert value == 1.0

    def test_walk_from_near_boundary_returns_quickly(self, tree):
        problem = DirichletDisk(harmonic_polynomial(1), ((0.0, 0.0),),
                                epsilon=1e-3)
        generator = tree.rng(0, 0, 0)
        walk_on_spheres(problem, 0.9995, 0.0, generator)
        assert generator.count == 0  # already in the absorption layer


class TestSolutionAccuracy:
    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_matches_exact_harmonic_solution(self, degree):
        points = ((0.0, 0.0), (0.5, 0.0), (0.3, 0.4), (-0.6, 0.2))
        problem = DirichletDisk(harmonic_polynomial(degree), points,
                                epsilon=1e-3)
        result = parmonc(make_realization(problem),
                         nrow=len(points), ncol=1, maxsv=3000,
                         processors=2, use_files=False)
        exact = problem.exact_for(harmonic_polynomial(degree))
        deviation = np.abs(result.estimates.mean - exact)
        # 3-sigma MC tolerance plus the O(epsilon) WoS bias.
        allowance = 3 * result.estimates.abs_error + 5e-3
        assert np.all(deviation <= allowance), (degree, deviation)

    def test_center_value_is_boundary_mean(self):
        # Mean value property: u(0) = average of g over the circle;
        # for g = x**2 restricted to the circle that is 1/2.
        problem = DirichletDisk(lambda x, y: x * x, ((0.0, 0.0),),
                                epsilon=1e-3)
        result = parmonc(make_realization(problem), nrow=1, ncol=1,
                         maxsv=4000, processors=2, use_files=False)
        assert result.estimates.mean[0, 0] == pytest.approx(0.5,
                                                            abs=0.03)

    def test_maximum_principle_respected(self):
        # Estimates at interior points stay within the boundary range.
        problem = DirichletDisk(harmonic_polynomial(3),
                                ((0.7, 0.0), (0.0, 0.7)),
                                epsilon=1e-3)
        result = parmonc(make_realization(problem), nrow=2, ncol=1,
                         maxsv=1000, use_files=False)
        assert np.all(np.abs(result.estimates.mean) <= 1.0 + 1e-9)
