"""Tests for batched_realization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import parmonc
from repro.core import batched_realization
from repro.exceptions import ConfigurationError


class TestBatchedRealization:
    def test_unbiased(self):
        wrapped = batched_realization(lambda rng: rng.random(), 50)
        estimates = parmonc(wrapped, maxsv=200, processors=2,
                            use_files=False).estimates
        assert abs(estimates.mean[0, 0] - 0.5) \
            <= 3 * estimates.abs_error[0, 0] + 1e-9

    def test_variance_drops_by_batch(self):
        plain = parmonc(lambda rng: rng.random(), maxsv=2000,
                        use_files=False).estimates
        batched = parmonc(batched_realization(lambda rng: rng.random(),
                                              20),
                          maxsv=2000, use_files=False).estimates
        ratio = plain.variance[0, 0] / batched.variance[0, 0]
        assert ratio == pytest.approx(20.0, rel=0.3)

    def test_batch_of_one_is_identity(self, tree):
        def routine(rng):
            return rng.random()
        wrapped = batched_realization(routine, 1)
        assert wrapped(tree.rng(0, 0, 3)) \
            == routine(tree.rng(0, 0, 3))

    def test_matrix_valued_routines(self, tree):
        wrapped = batched_realization(
            lambda rng: np.array([[rng.random(), 1.0]]), 10)
        value = wrapped(tree.rng(0, 0, 0))
        assert value.shape == (1, 2)
        assert value[0, 1] == 1.0

    def test_deterministic_per_stream(self, tree):
        wrapped = batched_realization(lambda rng: rng.random(), 7)
        assert np.array_equal(wrapped(tree.rng(0, 0, 2)),
                              wrapped(tree.rng(0, 0, 2)))

    def test_consumes_sequentially_from_one_stream(self, tree):
        wrapped = batched_realization(lambda rng: rng.random(), 5)
        generator = tree.rng(0, 0, 0)
        wrapped(generator)
        assert generator.count == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            batched_realization(lambda rng: 0.0, 0)
        with pytest.raises(ConfigurationError):
            batched_realization("nope", 3)
