"""Tests for the integration, transport, population, queueing, finance
and Ising workloads — each against its analytic oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import parmonc
from repro.apps import finance, integration, ising, population, queueing, \
    transport
from repro.exceptions import ConfigurationError


def estimate(realization, nrow=1, ncol=1, maxsv=4000, processors=2):
    return parmonc(realization, nrow=nrow, ncol=ncol, maxsv=maxsv,
                   processors=processors, use_files=False).estimates


class TestIntegration:
    @pytest.mark.parametrize("factory", [
        integration.unit_square_quarter_circle,
        integration.product_of_powers,
        integration.exponential_peak,
        integration.oscillatory_genz,
    ])
    def test_estimates_match_exact_value(self, factory):
        problem = factory()
        estimates = estimate(integration.make_realization(problem),
                             maxsv=20_000)
        error = abs(estimates.mean[0, 0] - problem.exact)
        assert error <= 1.5 * estimates.abs_error[0, 0] + 1e-9, problem.name

    def test_volume_scaling_of_domain(self):
        problem = integration.IntegrationProblem(
            integrand=lambda x: 1.0,
            lower=np.array([0.0]), upper=np.array([4.0]), exact=4.0)
        estimates = estimate(integration.make_realization(problem),
                             maxsv=100)
        assert estimates.mean[0, 0] == pytest.approx(4.0)
        assert estimates.variance[0, 0] == pytest.approx(0.0)

    def test_sampling_consumes_one_uniform_per_dimension(self, tree):
        problem = integration.product_of_powers((1, 1, 1))
        generator = tree.rng(0, 0, 0)
        problem.sample_point(generator)
        assert generator.count == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            integration.IntegrationProblem(
                integrand=lambda x: 0.0, lower=np.array([0.0]),
                upper=np.array([0.0]))
        with pytest.raises(ConfigurationError):
            integration.product_of_powers((-1,))
        with pytest.raises(ConfigurationError):
            integration.oscillatory_genz(frequencies=())
        with pytest.raises(ConfigurationError):
            integration.exponential_peak(rate=0.0)

    def test_genz_exact_value_by_quadrature(self):
        problem = integration.oscillatory_genz(frequencies=(1.0, 2.0),
                                               offset=0.3)
        from scipy import integrate as scipy_integrate
        value, _ = scipy_integrate.dblquad(
            lambda y, x: problem.integrand(np.array([x, y])),
            0.0, 1.0, 0.0, 1.0)
        assert problem.exact == pytest.approx(value, abs=1e-9)


class TestTransport:
    def test_pure_absorption_closed_form(self):
        problem = transport.SlabProblem(depth=2.0, absorption=1.0)
        estimates = estimate(transport.make_realization(problem), ncol=3,
                             maxsv=20_000)
        assert abs(estimates.mean[0, 0] - math.exp(-2.0)) \
            <= 1.5 * estimates.abs_error[0, 0] + 1e-9
        # Pure absorption: no reflection possible on the first flight...
        # (a scattered particle never exists), so reflected == 0.
        assert estimates.mean[0, 1] == 0.0

    def test_probabilities_sum_to_one(self):
        problem = transport.SlabProblem(depth=1.0, absorption=0.4)
        estimates = estimate(transport.make_realization(problem), ncol=3,
                             maxsv=5_000)
        assert estimates.mean.sum() == pytest.approx(1.0)

    def test_scattering_increases_reflection(self):
        absorbing = transport.SlabProblem(depth=2.0, absorption=0.9)
        scattering = transport.SlabProblem(depth=2.0, absorption=0.1)
        reflective = estimate(transport.make_realization(scattering),
                              ncol=3, maxsv=8_000).mean[0, 1]
        dark = estimate(transport.make_realization(absorbing), ncol=3,
                        maxsv=8_000).mean[0, 1]
        assert reflective > dark

    def test_history_is_deterministic_per_stream(self, tree):
        problem = transport.SlabProblem()
        a = transport.simulate_particle(problem, tree.rng(0, 0, 9))
        b = transport.simulate_particle(problem, tree.rng(0, 0, 9))
        assert a == b

    def test_collision_cap_counts_as_absorption(self, tree):
        problem = transport.SlabProblem(depth=1000.0, absorption=0.0,
                                        max_collisions=5)
        outcome = transport.simulate_particle(problem, tree.rng(0, 0, 0))
        assert outcome[2] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            transport.SlabProblem(depth=0.0)
        with pytest.raises(ConfigurationError):
            transport.SlabProblem(absorption=1.5)


class TestPopulation:
    def test_growth_curve_matches_exact_mean(self):
        process = population.BranchingProcess(offspring_mean=1.1,
                                              generations=6)
        estimates = estimate(population.make_realization(process),
                             nrow=6, ncol=2, maxsv=8_000)
        exact = process.exact_mean_sizes()
        deviation = np.abs(estimates.mean[:, 0] - exact)
        assert np.all(deviation <= 1.5 * estimates.abs_error[:, 0] + 1e-9)

    def test_subcritical_extinction_probability_high(self):
        process = population.BranchingProcess(offspring_mean=0.5,
                                              generations=15)
        estimates = estimate(population.make_realization(process),
                             nrow=15, ncol=2, maxsv=2_000)
        assert estimates.mean[-1, 1] > 0.95

    def test_extinction_indicator_monotone(self):
        process = population.BranchingProcess(offspring_mean=0.9,
                                              generations=10)
        estimates = estimate(population.make_realization(process),
                             nrow=10, ncol=2, maxsv=2_000)
        extinction = estimates.mean[:, 1]
        assert np.all(np.diff(extinction) >= -1e-12)

    def test_extinct_lineage_stays_extinct(self, tree):
        process = population.BranchingProcess(offspring_mean=0.1,
                                              generations=30)
        sizes = population.simulate_lineage(process, tree.rng(0, 0, 0))
        died = np.flatnonzero(sizes == 0.0)
        assert died.size > 0
        assert np.all(sizes[died[0]:] == 0.0)

    def test_large_population_normal_branch(self, tree):
        process = population.BranchingProcess(offspring_mean=2.0,
                                              generations=14,
                                              initial_size=100)
        sizes = population.simulate_lineage(process, tree.rng(0, 0, 0))
        # Growth should be roughly 2**g; allow wide tolerance.
        assert sizes[-1] > 100 * 2.0 ** 14 * 0.3

    def test_population_cap(self, tree):
        process = population.BranchingProcess(offspring_mean=3.0,
                                              generations=30,
                                              population_cap=1000)
        sizes = population.simulate_lineage(process, tree.rng(0, 0, 0))
        assert np.max(sizes) <= 1000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            population.BranchingProcess(offspring_mean=-0.1)
        with pytest.raises(ConfigurationError):
            population.BranchingProcess(generations=0)
        with pytest.raises(ConfigurationError):
            population.BranchingProcess(initial_size=10, population_cap=5)


class TestQueueing:
    def test_long_horizon_approaches_steady_state(self):
        queue = queueing.MM1Queue(arrival_rate=0.5, service_rate=1.0,
                                  customers=3_000)
        estimates = estimate(queueing.make_realization(queue), ncol=2,
                             maxsv=300)
        # W_q -> rho/(mu - lambda) = 1.0; finite horizon biases low.
        assert estimates.mean[0, 0] == pytest.approx(
            queue.steady_state_waiting(), rel=0.2)
        assert estimates.mean[0, 1] == pytest.approx(
            queue.steady_state_sojourn(), rel=0.2)

    def test_sojourn_exceeds_waiting(self):
        queue = queueing.MM1Queue()
        estimates = estimate(queueing.make_realization(queue), ncol=2,
                             maxsv=200)
        assert estimates.mean[0, 1] > estimates.mean[0, 0]

    def test_utilization_property(self):
        queue = queueing.MM1Queue(arrival_rate=0.8, service_rate=1.0)
        assert queue.utilization == pytest.approx(0.8)

    def test_light_traffic_short_waits(self):
        light = queueing.MM1Queue(arrival_rate=0.1, service_rate=1.0,
                                  customers=500)
        heavy = queueing.MM1Queue(arrival_rate=0.9, service_rate=1.0,
                                  customers=500)
        light_wait = estimate(queueing.make_realization(light), ncol=2,
                              maxsv=200).mean[0, 0]
        heavy_wait = estimate(queueing.make_realization(heavy), ncol=2,
                              maxsv=200).mean[0, 0]
        assert heavy_wait > 5 * light_wait

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            queueing.MM1Queue(arrival_rate=1.0, service_rate=1.0)
        with pytest.raises(ConfigurationError):
            queueing.MM1Queue(arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            queueing.MM1Queue(customers=0)


class TestFinance:
    def test_call_matches_black_scholes(self):
        option = finance.EuropeanOption()
        estimates = estimate(finance.make_realization(option), ncol=2,
                             maxsv=40_000)
        assert abs(estimates.mean[0, 0] - option.black_scholes_call()) \
            <= 1.5 * estimates.abs_error[0, 0] + 1e-9

    def test_put_call_parity_exact_in_sample(self):
        # Call and put come from the same terminal price, so parity
        # holds realization-wise, not just in expectation.
        option = finance.EuropeanOption()
        estimates = estimate(finance.make_realization(option), ncol=2,
                             maxsv=5_000)
        discount = math.exp(-option.rate * option.maturity)
        parity = estimates.mean[0, 0] - estimates.mean[0, 1]
        expected = option.spot - option.strike * discount
        # Sample-exact parity up to the MC error of S_T itself.
        assert parity == pytest.approx(expected, abs=1.0)

    def test_black_scholes_put_from_parity(self):
        option = finance.EuropeanOption()
        discount = math.exp(-option.rate * option.maturity)
        assert option.black_scholes_put() == pytest.approx(
            option.black_scholes_call() - option.spot
            + option.strike * discount)

    def test_deep_in_the_money_call(self):
        option = finance.EuropeanOption(spot=200.0, strike=10.0,
                                        volatility=0.1)
        # Price ~ S - K e^{-rT}: intrinsic value dominates.
        assert option.black_scholes_call() == pytest.approx(
            200.0 - 10.0 * math.exp(-0.03), rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            finance.EuropeanOption(spot=-1.0)
        with pytest.raises(ConfigurationError):
            finance.EuropeanOption(volatility=0.0)


class TestIsing:
    def test_critical_temperature_value(self):
        assert ising.CRITICAL_TEMPERATURE == pytest.approx(2.269, abs=0.001)

    def test_spontaneous_magnetization_limits(self):
        cold = ising.IsingModel(temperature=1.0)
        hot = ising.IsingModel(temperature=5.0)
        assert cold.spontaneous_magnetization() > 0.99
        assert hot.spontaneous_magnetization() == 0.0

    def test_cold_lattice_orders(self, tree):
        model = ising.IsingModel(size=8, temperature=1.2,
                                 equilibration=60, measurement=20)
        magnetization, energy = ising.simulate_replica(model,
                                                       tree.rng(0, 0, 0))
        assert magnetization > 0.9
        assert energy < -1.8  # near the ground state energy -2

    def test_hot_lattice_disorders(self, tree):
        model = ising.IsingModel(size=8, temperature=10.0,
                                 equilibration=40, measurement=20)
        magnetization, _ = ising.simulate_replica(model, tree.rng(0, 0, 0))
        assert magnetization < 0.5

    def test_replicas_independent_and_deterministic(self, tree):
        model = ising.IsingModel(size=4, temperature=2.0,
                                 equilibration=5, measurement=5)
        a = ising.simulate_replica(model, tree.rng(0, 0, 0))
        b = ising.simulate_replica(model, tree.rng(0, 0, 0))
        c = ising.simulate_replica(model, tree.rng(0, 0, 1))
        assert a == b
        assert a != c

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ising.IsingModel(size=1)
        with pytest.raises(ConfigurationError):
            ising.IsingModel(temperature=0.0)
        with pytest.raises(ConfigurationError):
            ising.IsingModel(measurement=0)
