"""Watching a simulation converge through its save-points.

PARMONC periodically averages and saves results *during* the run
(§2.2: "it is desirable to control the absolute and relative
stochastic errors during the simulation").  The library surfaces that
trace twice over: on ``RunResult.history`` — one ``(time, volume,
eps_max)`` entry per save-point — and, with ``telemetry=True``, as
``save`` events in the structured JSONL event log under
``parmonc_data/telemetry/`` (see docs/observability.md).  This example
reads the event log, plots (in ASCII) the 1/sqrt(L) error decay of a
live run, and shows the run_until() loop that stops at a target
accuracy.

Run:  python examples/convergence_monitoring.py
"""

import math
import tempfile
from pathlib import Path

from repro import MonteCarloRun, parmonc
from repro.obs import read_events


def heavy_tailish(rng):
    """A realization with some variance: (X1 + X2**2) / 2."""
    return 0.5 * (rng.random() + rng.random() ** 2)


def main():
    with tempfile.TemporaryDirectory() as workdir:
        result = parmonc(heavy_tailish, maxsv=20_000, processors=2,
                         peraver=0.0, perpass=0.0, workdir=workdir,
                         telemetry=True)
        events_path = (Path(workdir) / "parmonc_data" / "telemetry"
                       / "events.jsonl")
        saves = list(read_events(events_path, kind="save"))
        print(f"{len(saves)} save-points in the event log; "
              f"error decay along the run:")
        print("   t(s)        L      eps_max   eps_max * sqrt(L)  "
              "(should be ~flat)")
        step = max(1, len(saves) // 8)
        for event in saves[::step]:
            volume = event.fields["volume"]
            eps = event.fields["eps_max"]
            print(f"{event.ts:7.3f}  {volume:7d}   {eps:.6f}    "
                  f"{eps * math.sqrt(volume):8.4f}")
        final = saves[-1]
        print(f"final:  L = {final.fields['volume']}, "
              f"eps_max = {final.fields['eps_max']:.6f}")
        # The in-memory history carries the same trace (and works with
        # telemetry off); the event log survives the process.
        assert len(result.history) == len(saves)
        totals = result.telemetry
        print(f"telemetry: {totals['events']} events, "
              f"{totals['messages']} messages from "
              f"{totals['workers']} workers\n")

    with tempfile.TemporaryDirectory() as workdir:
        run = MonteCarloRun(heavy_tailish, workdir=workdir, processors=2)
        target = 0.004
        result = run.run_until(target_abs_error=target,
                               session_volume=5_000)
        print(f"run_until(eps <= {target}): stopped after "
              f"{result.sessions} session(s), L = {result.total_volume}, "
              f"eps_max = {result.estimates.abs_error_max:.6f}")


if __name__ == "__main__":
    main()
