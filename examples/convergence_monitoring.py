"""Watching a simulation converge through its save-points.

PARMONC periodically averages and saves results *during* the run
(§2.2: "it is desirable to control the absolute and relative
stochastic errors during the simulation").  The library surfaces that
trace on ``RunResult.history``: one ``(time, volume, eps_max)`` entry
per save-point.  This example plots (in ASCII) the 1/sqrt(L) error
decay of a live run and shows the run_until() loop that stops at a
target accuracy.

Run:  python examples/convergence_monitoring.py
"""

import math
import tempfile

from repro import MonteCarloRun, parmonc


def heavy_tailish(rng):
    """A realization with some variance: (X1 + X2**2) / 2."""
    return 0.5 * (rng.random() + rng.random() ** 2)


def main():
    with tempfile.TemporaryDirectory() as workdir:
        result = parmonc(heavy_tailish, maxsv=20_000, processors=2,
                         peraver=0.0, perpass=0.0, workdir=workdir)
        history = result.history
        print(f"{len(history)} save-points recorded; "
              f"error decay along the run:")
        print("      L      eps_max   eps_max * sqrt(L)  (should be ~flat)")
        step = max(1, len(history) // 8)
        for _, volume, eps in history[::step]:
            print(f"{volume:7d}   {eps:.6f}    {eps * math.sqrt(volume):8.4f}")
        _, final_volume, final_eps = history[-1]
        print(f"final:  L = {final_volume}, eps_max = {final_eps:.6f}\n")

    with tempfile.TemporaryDirectory() as workdir:
        run = MonteCarloRun(heavy_tailish, workdir=workdir, processors=2)
        target = 0.004
        result = run.run_until(target_abs_error=target,
                               session_volume=5_000)
        print(f"run_until(eps <= {target}): stopped after "
              f"{result.sessions} session(s), L = {result.total_volume}, "
              f"eps_max = {result.estimates.abs_error_max:.6f}")


if __name__ == "__main__":
    main()
