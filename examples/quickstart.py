"""Quickstart: estimate pi with a parallel stochastic simulation.

The user-side recipe from the paper, in Python:

1. write a routine that simulates ONE realization of your random object
   (here: the quarter-circle indicator, whose expectation is pi/4);
2. hand it to ``parmonc`` with the sample volume and processor count;
3. read the sample means and the automatically computed errors.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import parmonc


def quarter_circle(rng):
    """One realization: 1 if a uniform point falls inside the quarter disc."""
    x = rng.random()
    y = rng.random()
    return 1.0 if x * x + y * y <= 1.0 else 0.0


def main():
    with tempfile.TemporaryDirectory() as workdir:
        result = parmonc(
            quarter_circle,
            maxsv=200_000,      # total sample volume
            processors=4,       # simulated processors
            workdir=workdir,    # parmonc_data/ is created here
        )
        estimates = result.estimates
        pi_estimate = 4.0 * estimates.mean[0, 0]
        pi_error = 4.0 * estimates.abs_error[0, 0]
        print(f"sample volume     : {result.total_volume}")
        print(f"pi estimate       : {pi_estimate:.6f} +/- {pi_error:.6f}")
        print(f"relative error    : {estimates.rel_error[0, 0]:.4f} %")
        print(f"per-worker volumes: {result.per_rank_volumes}")
        print(f"result files under: {result.data_dir}/results")
        lower, upper = estimates.confidence_interval()
        print(f"99.7% CI for pi   : "
              f"[{4 * lower[0, 0]:.6f}, {4 * upper[0, 0]:.6f}]")


if __name__ == "__main__":
    main()
