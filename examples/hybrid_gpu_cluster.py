"""PARMONC on GPU and hybrid clusters — the paper's §5 future work.

Models the adaptation the paper proposes: nodes with batch accelerators
(kernel launch overhead + per-realization speedup) running the same
asynchronous moment-exchange protocol, including a mixed CPU+GPU
deployment with throughput-proportional work dealing.

Run:  python examples/hybrid_gpu_cluster.py
"""

from repro import parmonc
from repro.cluster import (
    Accelerator,
    ClusterSpec,
    DurationModel,
    proportional_quotas,
)
from repro.runtime.config import RunConfig
from repro.runtime.simcluster import run_simcluster

TAU = 7.7
GPU = Accelerator(batch=256, speedup=50.0, launch_overhead=5e-3)


def run(maxsv, processors, accelerators=None, quotas=None):
    spec = ClusterSpec(duration_model=DurationModel(mean=TAU),
                       accelerators=accelerators)
    return run_simcluster(
        None, RunConfig(maxsv=maxsv, processors=processors,
                        perpass=0.0, peraver=600.0),
        spec=spec, use_files=False, execute_realizations=False,
        quotas=quotas)


def main():
    print(f"workload: tau = {TAU}s per realization on CPU; "
          f"GPU = batch {GPU.batch}, {GPU.speedup:.0f}x, "
          f"{GPU.launch_overhead * 1e3:.0f}ms launch\n")

    cpu = run(2048, 8)
    gpu = run(2048, 8, accelerators=(GPU,) * 8)
    print(f"8 CPU nodes : T_comp = {cpu.virtual_time:9.1f} s")
    print(f"8 GPU nodes : T_comp = {gpu.virtual_time:9.1f} s "
          f"({cpu.virtual_time / gpu.virtual_time:.0f}x)\n")

    accelerators = (GPU, GPU, None, None, None, None)
    even = run(4096, 6, accelerators=accelerators)
    weights = [GPU.speedup, GPU.speedup, 1.0, 1.0, 1.0, 1.0]
    quotas = proportional_quotas(4096, weights)
    balanced = run(4096, 6, accelerators=accelerators, quotas=quotas)
    print("hybrid cluster (2 GPU + 4 CPU nodes), L = 4096:")
    print(f"  even dealing         : T_comp = {even.virtual_time:9.1f} s"
          f"  (CPU nodes are the bottleneck)")
    print(f"  proportional dealing : T_comp = "
          f"{balanced.virtual_time:9.1f} s  (quotas = {quotas})")
    ideal = 4096 / ((2 * GPU.speedup + 4) / TAU)
    print(f"  combined-throughput ideal: {ideal:9.1f} s")
    print("\nunequal per-node volumes merge exactly (formula (5)); the")
    print("PARMONC protocol needs no changes for hybrid deployment.")


if __name__ == "__main__":
    main()
