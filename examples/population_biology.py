"""Population biology with branching processes (the MONC heritage).

The predecessor library MONC was used for population-biology problems;
this example estimates mean population growth curves and extinction
probabilities for sub-, near- and super-critical Galton-Watson
processes, comparing the growth curves against the exact E Z_g = m**g.

Run:  python examples/population_biology.py
"""

import numpy as np

from repro import parmonc
from repro.apps.population import BranchingProcess, make_realization


def main():
    generations = 12
    lineages = 4_000
    print(f"{lineages} lineages, {generations} generations each\n")
    for mean_offspring, label in ((0.8, "subcritical"),
                                  (1.0, "critical"),
                                  (1.2, "supercritical")):
        process = BranchingProcess(offspring_mean=mean_offspring,
                                   generations=generations)
        result = parmonc(
            make_realization(process),
            nrow=generations, ncol=2, maxsv=lineages,
            processors=2, use_files=False,
        )
        estimates = result.estimates
        exact = process.exact_mean_sizes()
        final_size = estimates.mean[-1, 0]
        extinction = estimates.mean[-1, 1]
        growth_error = np.max(np.abs(estimates.mean[:, 0] - exact)
                              / np.maximum(exact, 1e-12))
        print(f"m = {mean_offspring:.1f} ({label})")
        print(f"  E Z_{generations} estimated {final_size:.3f}, "
              f"exact {exact[-1]:.3f} "
              f"(max rel dev over curve {growth_error * 100:.1f}%)")
        print(f"  P(extinct by gen {generations}) = {extinction:.3f} "
              f"+/- {estimates.abs_error[-1, 1]:.3f}")
        print()


if __name__ == "__main__":
    main()
