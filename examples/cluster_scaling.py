"""A miniature of the paper's Fig. 2 on the simulated cluster.

Runs the §4 diffusion workload's *cost model* (tau = 7.7 s per
realization, ~125 KB moment messages, data pass after EVERY realization
— the paper's strictest condition) on 1..64 virtual processors and
prints T_comp(L), the virtual time until the 0-th processor has
received, averaged and saved the complete sample.  The speedup column
shows the paper's headline: proportional to M despite the aggressive
exchange schedule.

The full four-panel reproduction (up to M = 512, L = 75000) lives in
benchmarks/test_bench_fig2_scaling.py.

Run:  python examples/cluster_scaling.py
"""

from repro import parmonc
from repro.cluster import ClusterSpec, DurationModel
from repro.runtime.messages import message_bytes


def main():
    total_sample = 2_000
    spec = ClusterSpec(
        duration_model=DurationModel(mean=7.7, distribution="fixed"),
        message_bytes=message_bytes(1000, 2),  # the paper's ~120 KB
    )
    print(f"L = {total_sample} realizations, tau = 7.7 s, "
          f"pass after every realization\n")
    print("   M    T_comp (s)    speedup   efficiency")
    baseline = None
    for processors in (1, 2, 4, 8, 16, 32, 64):
        result = parmonc(
            lambda rng: 0.0, maxsv=total_sample,
            perpass=0.0, peraver=60.0,
            processors=processors, backend="simcluster",
            cluster_spec=spec, use_files=False,
            execute_realizations=False,
        )
        t_comp = result.virtual_time
        if baseline is None:
            baseline = t_comp
        speedup = baseline / t_comp
        print(f"{processors:4d}  {t_comp:12.1f}  {speedup:9.2f}   "
              f"{speedup / processors:9.3f}")


if __name__ == "__main__":
    main()
