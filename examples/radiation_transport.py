"""Radiation transfer through a slab — Monte Carlo's original domain.

Sweeps the per-collision absorption probability with
``repro.parameter_sweep`` (one independent PARMONC experiment per
setting) and estimates the transmission / reflection / absorption split
of particle histories in a two-mean-free-paths slab.  The
pure-absorption endpoint has the closed form exp(-depth) and is checked
against it.

Run:  python examples/radiation_transport.py
"""

import math

from repro import parameter_sweep
from repro.apps.transport import SlabProblem, make_realization

DEPTH = 2.0


def factory(absorption):
    return make_realization(SlabProblem(depth=DEPTH,
                                        absorption=absorption))


def main():
    histories = 20_000
    absorptions = (1.0, 0.8, 0.5, 0.2)
    sweep = parameter_sweep(factory, absorptions, maxsv=histories,
                            ncol=3, processors=2,
                            backend="multiprocess")
    print(f"slab depth {DEPTH} mean free paths, "
          f"{histories} histories per setting\n")
    print("absorption  P(transmit)  P(reflect)  P(absorb)   eps_max  seqnum")
    for point in sweep:
        mean = point.result.estimates.mean[0]
        print(f"{point.value:10.2f}  {mean[0]:11.4f}  {mean[1]:10.4f}  "
              f"{mean[2]:9.4f}  {point.result.estimates.abs_error_max:9.4f}"
              f"  {point.seqnum:6d}")
    exact = math.exp(-DEPTH)
    print(f"\npure-absorption transmission, exact: exp(-{DEPTH}) = "
          f"{exact:.4f}")
    print("each sweep point consumed its own experiments subsequence, "
          "so the rows are mutually independent")


if __name__ == "__main__":
    main()
