"""Solving a PDE by Monte Carlo: walk-on-spheres for the Laplace equation.

Section 2.1's founding application area — stochastic representations of
PDE solutions.  The Dirichlet problem on the unit disk with boundary
data g(x, y) = Re((x+iy)^2) = x^2 - y^2 has the exact solution
u(r, theta) = r^2 cos(2 theta); this example estimates u along a radius
with walk-on-spheres realizations and prints estimate vs exact.

Run:  python examples/pde_laplace.py
"""

from repro import parmonc
from repro.apps.pde import DirichletDisk, harmonic_polynomial, \
    make_realization


def main():
    radii = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)
    points = tuple((r, 0.0) for r in radii)  # theta = 0: u = r^2
    problem = DirichletDisk(harmonic_polynomial(2), points,
                            epsilon=1e-3)
    result = parmonc(make_realization(problem),
                     nrow=len(points), ncol=1,
                     maxsv=4_000, processors=2, use_files=False)
    estimates = result.estimates
    exact = problem.exact_for(harmonic_polynomial(2))
    print("Dirichlet problem on the unit disk, g = x^2 - y^2 "
          f"({result.total_volume} walks per point)\n")
    print("   r     u estimated   u exact    3-sigma")
    for row, r in enumerate(radii):
        print(f"{r:5.2f}   {estimates.mean[row, 0]:11.4f}   "
              f"{exact[row, 0]:7.4f}   {estimates.abs_error[row, 0]:7.4f}")
    inside = (abs(estimates.mean - exact)
              <= estimates.abs_error + 5e-3).mean()
    print(f"\nwithin 3-sigma + WoS bias at {inside * 100:.0f}% of points "
          "(mean walk cost ~ log(1/epsilon) jumps)")


if __name__ == "__main__":
    main()
