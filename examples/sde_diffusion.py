"""The paper's §4 performance-test problem at laptop scale.

Simulates trajectories of the 2-D additive SDE

    dy(t) = C dt + D dw(t),  y(0) = 0,

with the generalized Euler method, estimates E y_j(t_i) on a grid of
output times, and compares against the exact line y_0 + C t.  This is
the Python twin of the paper's C ``main()``:

    int main() {
        int nrow = 1000, ncol = 2, res = 1, seqnum = 2, ...;
        parmoncc(difftraj, &nrow, &ncol, &maxsv, &res, &seqnum,
                 &perpass, &peraver);
    }

scaled down (fewer output times, coarser mesh, smaller sample volume)
so it runs in seconds rather than cluster-hours.

Run:  python examples/sde_diffusion.py
"""

import tempfile

import numpy as np

from repro import parmonc
from repro.apps.sde import EulerSpec, make_paper_realization, paper_system


def main():
    system = paper_system()
    spec = EulerSpec(mesh=0.01, t_max=10.0, n_output=100)
    difftraj = make_paper_realization(spec, system)

    with tempfile.TemporaryDirectory() as workdir:
        result = parmonc(
            difftraj,
            nrow=spec.n_output, ncol=system.dimension,
            maxsv=400, processors=4, workdir=workdir,
        )
        estimates = result.estimates
        exact = system.exact_mean(spec.output_times)
        worst = np.max(np.abs(estimates.mean - exact))
        covered = np.mean(np.abs(estimates.mean - exact)
                          <= estimates.abs_error + 1e-12)
        print(f"trajectories simulated : {result.total_volume}")
        print(f"output grid            : {spec.n_output} times x "
              f"{system.dimension} components")
        print(f"max |estimate - exact| : {worst:.4f}")
        print(f"entries inside 3-sigma : {covered * 100:.1f}% "
              f"(expect ~99.7%)")
        print()
        print(" t      E y1 (est)  E y1 (exact)  eps_1    "
              "E y2 (est)  E y2 (exact)  eps_2")
        for i in (9, 49, 99):
            t = spec.output_times[i]
            print(f"{t:5.1f}  {estimates.mean[i, 0]:10.4f}  "
                  f"{exact[i, 0]:12.4f}  {estimates.abs_error[i, 0]:6.4f}  "
                  f"{estimates.mean[i, 1]:10.4f}  {exact[i, 1]:12.4f}  "
                  f"{estimates.abs_error[i, 1]:6.4f}")


if __name__ == "__main__":
    main()
