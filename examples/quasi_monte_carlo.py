"""Randomized quasi-Monte Carlo inside the PARMONC runtime.

Each PARMONC realization below is one *randomized-QMC batch*: a fixed
low-discrepancy point set (Halton, or a Fibonacci lattice) shifted by a
uniform vector drawn from the realization's own RNG substream.  The
shifts make every batch an independent unbiased estimate, so the
standard error machinery applies — but the per-batch error decays near
N^-1 instead of the Monte Carlo N^-1/2.

Run:  python examples/quasi_monte_carlo.py
"""

import math

from repro import parmonc
from repro.qmc import (
    fibonacci_lattice,
    mc_batch_realization,
    rqmc_halton_realization,
    rqmc_lattice_realization,
)

EXACT = (math.e - 1.0) * math.sin(1.0)


def smooth(x):
    return math.exp(x[0]) * math.cos(x[1])


def periodic(x):
    return ((1 + math.sin(2 * math.pi * x[0]))
            * (1 + math.sin(2 * math.pi * x[1])))  # integral = 1


def main():
    replicates = 40
    print(f"smooth integrand, exact value {EXACT:.6f}; "
          f"{replicates} replicates per method\n")
    print("  batch N    MC sigma     RQMC-Halton sigma")
    for batch in (16, 64, 256, 1024):
        mc = parmonc(mc_batch_realization(smooth, 2, batch),
                     maxsv=replicates, use_files=False).estimates
        rqmc = parmonc(rqmc_halton_realization(smooth, 2, batch),
                       maxsv=replicates, use_files=False).estimates
        print(f"{batch:9d}   {math.sqrt(mc.variance[0, 0]):.3e}"
              f"     {math.sqrt(rqmc.variance[0, 0]):.3e}")

    n, z = fibonacci_lattice(12)
    lattice = parmonc(rqmc_lattice_realization(periodic, n, z),
                      maxsv=replicates, use_files=False).estimates
    print(f"\nperiodic integrand on the n={n} Fibonacci lattice:")
    print(f"  mean = {lattice.mean[0, 0]:.12f} (exact 1), "
          f"sigma = {math.sqrt(lattice.variance[0, 0]):.2e}")
    print("  (lattice rules integrate low-order trigonometric "
          "polynomials exactly)")


if __name__ == "__main__":
    main()
