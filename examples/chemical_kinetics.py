"""Stochastic chemical kinetics and coagulation under PARMONC.

Two of §2.1's "physical and chemical kinetics" applications in one
script: exact SSA trajectories of a reaction network (isomerization,
with the linear master equation as oracle) and Marcus–Lushnikov
coagulation (constant-kernel Smoluchowski solution as oracle).

Run:  python examples/chemical_kinetics.py
"""

import numpy as np

from repro import parmonc
from repro.apps import coagulation, kinetics


def main():
    # --- SSA: A -> B ---------------------------------------------------
    network = kinetics.isomerization(a0=200, rate=1.0,
                                     output_times=(0.25, 0.5, 1.0, 2.0))
    result = parmonc(kinetics.make_realization(network),
                     nrow=4, ncol=2, maxsv=1_000, processors=2,
                     use_files=False)
    exact = 200.0 * np.exp(-np.array(network.output_times))
    print(f"SSA, A -> B with A(0) = 200 ({result.total_volume} "
          "trajectories)\n")
    print("   t    E A(t) est   exact     eps")
    for row, t in enumerate(network.output_times):
        print(f"{t:5.2f}  {result.estimates.mean[row, 0]:10.2f}  "
              f"{exact[row]:7.2f}  {result.estimates.abs_error[row, 0]:6.2f}")

    # --- Smoluchowski coagulation --------------------------------------
    problem = coagulation.CoagulationProblem(
        n0=400, output_times=(0.5, 1.0, 2.0, 4.0), max_size=4)
    result = parmonc(coagulation.make_realization(problem),
                     nrow=4, ncol=5, maxsv=200, processors=2,
                     use_files=False)
    exact_matrix = problem.exact_matrix()
    print("\nconstant-kernel coagulation, 400 monomers "
          f"({result.total_volume} Marcus-Lushnikov trajectories)\n")
    print("   t    N(t) est   N(t) exact   c_1 est   c_1 exact")
    for row, t in enumerate(problem.output_times):
        print(f"{t:5.2f}  {result.estimates.mean[row, 0]:9.4f}  "
              f"{exact_matrix[row, 0]:10.4f}   "
              f"{result.estimates.mean[row, 1]:8.4f}  "
              f"{exact_matrix[row, 1]:9.4f}")
    worst = np.abs(result.estimates.mean - exact_matrix).max()
    print(f"\nmax |estimate - mean-field| over the spectrum: {worst:.4f} "
          "(finite-size bias is O(1/n0))")


if __name__ == "__main__":
    main()
