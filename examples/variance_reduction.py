"""Variance reduction: the other lever on the estimator cost.

The paper's cost model (§2.2) is C(zeta) = tau_zeta * Var(zeta) —
parallelization divides tau by M, and this example divides Var instead,
using the repro.vr wrappers on a smooth integration problem.  A 60x
variance reduction buys the same accuracy as 60 extra processors.

Run:  python examples/variance_reduction.py
"""

import math

from repro import parmonc
from repro.vr import (
    StratifiedRealization,
    antithetic_realization,
    control_variate_realization,
    fit_control_coefficient,
    importance_realization,
    exponential_proposal,
)

EXACT = math.e - 1.0  # integral_0^1 exp(x) dx


def smooth(rng):
    return math.exp(rng.random())


def show(name, routine, maxsv=20_000):
    estimates = parmonc(routine, maxsv=maxsv, processors=2,
                        use_files=False).estimates
    print(f"{name:<30s} mean={estimates.mean[0, 0]:.5f} "
          f"(exact {EXACT:.5f})  var={estimates.variance[0, 0]:.2e}  "
          f"eps={estimates.abs_error[0, 0]:.2e}")
    return estimates.variance[0, 0]


def main():
    base_variance = show("plain Monte Carlo", smooth)

    variance = show("antithetic variates",
                    antithetic_realization(smooth), maxsv=10_000)
    print(f"  -> {base_variance / variance:.0f}x variance reduction\n")

    control = lambda rng: rng.random()
    beta, correlation = fit_control_coefficient(smooth, control)
    print(f"control variate: pilot correlation {correlation:.3f}, "
          f"beta = {beta:.3f}")
    variance = show("control variate",
                    control_variate_realization(smooth, control, 0.5,
                                                beta))
    print(f"  -> {base_variance / variance:.0f}x variance reduction\n")

    show("stratified (16 cells)", StratifiedRealization(smooth, 16))
    print("  -> reported variance unchanged, but the *estimate* spread "
          "drops ~300x\n     (PARMONC's iid error bound is conservative "
          "here; see repro.vr.stratified)\n")

    # Proposal rate 6 against integrand rate 8: deliberately imperfect,
    # so the reduction is large but finite (a rate-8 proposal matches
    # the integrand exactly and drives the variance to zero).
    decaying = lambda x: math.exp(-8.0 * x)
    plain_var = parmonc(lambda rng: decaying(rng.random()), maxsv=20_000,
                        use_files=False).estimates.variance[0, 0]
    weighted = importance_realization(decaying, exponential_proposal(6.0))
    importance_var = parmonc(weighted, maxsv=20_000,
                             use_files=False).estimates.variance[0, 0]
    print(f"importance sampling on exp(-8x): variance {plain_var:.2e} "
          f"-> {importance_var:.2e} "
          f"({plain_var / importance_var:.0f}x reduction)")


if __name__ == "__main__":
    main()
