"""The PARMONC session lifecycle: run, crash, recover, resume.

Demonstrates the paper's §3.2/§3.4 operational story end to end:

1. a first session (res=0) simulates part of the sample;
2. a "killed job" leaves per-processor save-points behind with results
   files lagging — ``manaver`` recovers the full subtotals;
3. a resumed session (res=1, fresh seqnum) folds everything together by
   formula (5), and the merged estimate matches a single monolithic run
   of the same total volume exactly.

Run:  python examples/resume_workflow.py
"""

import tempfile

import numpy as np

from repro import MonteCarloRun, parmonc
from repro.cli.manaver import manual_average
from repro.runtime.collector import Collector
from repro.runtime.bootstrap import start_session
from repro.runtime.config import RunConfig
from repro.runtime.worker import run_worker


def cubic(rng):
    """One realization of X**3 for X uniform: expectation 1/4."""
    return rng.random() ** 3


def main():
    with tempfile.TemporaryDirectory() as workdir:
        # --- session 1: a normal run ---------------------------------
        run = MonteCarloRun(cubic, workdir=workdir, processors=3)
        first = run.run(maxsv=30_000)
        print(f"session 1: L={first.total_volume}, "
              f"mean={first.estimates.mean[0, 0]:.5f} (exact 0.25)")

        # --- a job that dies mid-flight ------------------------------
        # Simulate the crash by running workers manually and never
        # letting the session finalize: the collector has persisted
        # per-processor subtotals, but no final averaging happened.
        config = RunConfig(maxsv=12_000, processors=3, res=1, seqnum=1,
                           workdir=workdir)
        data, state = start_session(config)
        collector = Collector(config, state.base,
                              data, sessions=state.session_index)
        for rank in range(config.processors):
            run_worker(cubic, config, rank, config.worker_quota(rank),
                       send=lambda m: collector.receive(m, 0.0))
        print(f"job killed after workers delivered "
              f"{collector.session_volume} realizations "
              f"(results not finalized)")

        # --- manaver: manual averaging after termination -------------
        summary = manual_average(workdir)
        print(f"manaver recovered {summary['volume']} realizations from "
              f"{summary['processors_recovered']} processor save-points")

        # --- session 3: resume and compare with a monolithic run -----
        third = run.resume(maxsv=18_000)
        print(f"session 3: total L={third.total_volume}, "
              f"mean={third.estimates.mean[0, 0]:.6f}")

        total = third.total_volume
        print(f"\nthree sessions accumulated {total} realizations; "
              f"final mean {third.estimates.mean[0, 0]:.6f} "
              f"+/- {third.estimates.abs_error[0, 0]:.6f} (exact 0.25)")
        assert abs(third.estimates.mean[0, 0] - 0.25) \
            < 3 * third.estimates.abs_error[0, 0] + 1e-9


if __name__ == "__main__":
    main()
