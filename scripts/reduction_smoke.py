#!/usr/bin/env python
"""End-to-end tree-reduction + shm-transport smoke test (CI gate).

Runs the multiprocess backend with ``reduction_fanout=4`` and
``transport="shm"`` — interior reducer processes draining per-worker
shared-memory rings — and proves the exchange redesign's two headline
promises on real OS processes:

1. **Parity** — the tree + ring run is bit-identical to the sequential
   backend, and every ``/dev/shm`` segment is reclaimed afterwards.
2. **Fault tolerance** — with the rank-4 subtree's reducer killed
   deterministically the moment it absorbs its worker's final message
   (``PARMONC_REDUCER_CRASH``), the run still completes the full
   sample under ``on_worker_death="reassign"``: the reducer respawns,
   the eaten final's quota moves to a fresh rank, and the merged
   estimate is bit-identical to the rank-ordered merge of the pieces
   the run actually kept (computed locally as the reference).

Usage::

    $ PYTHONPATH=src python scripts/reduction_smoke.py [--artifacts DIR]

``--artifacts`` copies the recovery run's telemetry JSONL artifacts
(events, metrics) into DIR for CI upload.
"""

from __future__ import annotations

import argparse
import glob
import os
import shutil
import sys
import tempfile
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
REPO_SRC = str(SCRIPTS_DIR.parent / "src")
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.core.parmonc import parmonc  # noqa: E402
from repro.obs.events import read_events  # noqa: E402
from repro.runtime.config import RunConfig  # noqa: E402
from repro.runtime.reduction import CRASH_ENV  # noqa: E402
from repro.runtime.worker import run_worker  # noqa: E402
from repro.stats.merging import merge_snapshots  # noqa: E402


def square(rng):
    return rng.random() ** 2


def check(condition: bool, what: str) -> None:
    if not condition:
        print(f"smoke: FAIL — {what}", file=sys.stderr)
        sys.exit(1)
    print(f"smoke: ok — {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="copy the recovery run's telemetry JSONL "
                             "files into this directory")
    args = parser.parse_args()
    base = Path(tempfile.mkdtemp(prefix="parmonc-reduction-smoke-"))

    # -- Part 1: tree + shm parity against sequential ------------------
    sequential = parmonc(square, maxsv=400, perpass=0.0, peraver=0.0,
                         processors=8, backend="sequential",
                         workdir=base / "seq")
    tree = parmonc(square, maxsv=400, perpass=0.0, peraver=0.0,
                   processors=8, backend="multiprocess",
                   start_method="fork", reduction_fanout=4,
                   transport="shm", workdir=base / "tree")
    check(tree.total_volume == sequential.total_volume == 400,
          "tree+shm run completed the full sample")
    check(tree.estimates.mean[0, 0] == sequential.estimates.mean[0, 0]
          and tree.estimates.variance[0, 0]
          == sequential.estimates.variance[0, 0],
          "tree+shm estimates bit-identical to sequential")
    check(glob.glob("/dev/shm/parmonc_*") == [],
          "every shared-memory segment reclaimed after the run")

    # -- Part 2: reducer killed on a final, subtree reassigned ---------
    # processors=5, fanout=4: r1.0 serves ranks 0-3, r1.1 serves rank 4
    # alone.  perpass is huge, so rank 4's *only* message is its final —
    # r1.1 dies the moment it absorbs it, the worst case the grace path
    # must cover: worker 4 exited cleanly, nothing of it ever reached
    # the collector, so its full 5-realization quota moves to rank 5.
    os.environ[CRASH_ENV] = "r1.1:on-final"
    try:
        result = parmonc(square, maxsv=25, perpass=1000.0, peraver=0.0,
                         processors=5, backend="multiprocess",
                         start_method="fork", reduction_fanout=4,
                         transport="shm", on_worker_death="reassign",
                         death_grace=0.3, telemetry=True,
                         workdir=base / "elastic")
    finally:
        del os.environ[CRASH_ENV]
    check(result.total_volume == 25,
          "recovered run completed the full 25-realization sample")
    check(result.recovered_ranks == (4,),
          "rank 4's eaten quota was reassigned")
    check(glob.glob("/dev/shm/parmonc_*") == [],
          "no segment leaked across the reducer crash")

    # Reference: ranks 0-3 at full quota plus replacement rank 5 at
    # rank 4's quota, merged in rank order by a local worker loop.
    config = RunConfig(nrow=1, ncol=1, maxsv=25, perpass=0.0,
                       peraver=0.0, processors=5, workdir=base / "ref")
    pieces = [run_worker(square, config, rank, quota,
                         send=lambda message: None).snapshot()
              for rank, quota in ((0, 5), (1, 5), (2, 5), (3, 5), (5, 5))]
    reference = merge_snapshots(pieces).estimates()
    check(result.estimates.mean[0, 0] == reference.mean[0, 0]
          and result.estimates.variance[0, 0] == reference.variance[0, 0],
          "recovered estimate bit-identical to the rank-ordered "
          "reference merge")

    telemetry_dir = base / "elastic" / "parmonc_data" / "telemetry"
    kinds = [event.kind for event in
             read_events(telemetry_dir / "events.jsonl")]
    check("reducer_respawned" in kinds,
          "telemetry recorded the reducer respawn")
    check("worker_died" in kinds and "worker_recovered" in kinds,
          "telemetry recorded the death and the recovery")

    if args.artifacts is not None:
        args.artifacts.mkdir(parents=True, exist_ok=True)
        for artifact in sorted(telemetry_dir.glob("*.jsonl")):
            shutil.copy2(artifact, args.artifacts / artifact.name)
        print(f"smoke: telemetry JSONL copied to {args.artifacts}")
    print("smoke: OK — tree reduction parity and reducer fault "
          "tolerance hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
