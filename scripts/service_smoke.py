#!/usr/bin/env python
"""End-to-end streaming-service smoke test (CI gate for PR 10).

Boots a real ``parmonc-pool`` daemon and a real ``parmonc-sched
--serve`` process, then drives the live admission loop the way an
operator would — through ``parmonc-submit`` against the queue file:

1. **Staggered admission** — three jobs submitted one by one while the
   service is already running; each is admitted mid-session over the
   SUBMIT wire frame.
2. **Cancellation** — one running job is withdrawn with
   ``parmonc-submit --cancel``; its ``--wait`` must exit 1 and the
   status file must show ``cancelled``.
3. **Chaos** — one worker of the telemetry-enabled job is SIGKILLed
   mid-run; the job must recover via ``on_worker_death="reassign"``
   and still finish.
4. **Bit-identity** — the steady job's result artifacts must be
   byte-identical (wall-clock fields aside) to a solo sequential run.
5. **Validation** — a malformed submission must exit 2 and never touch
   the queue.
6. **SLA artifact** — the shutdown directive drains the service and
   leaves an SLA report covering all three jobs, copied (with the
   status file and the victim's telemetry) to ``--artifacts``.

Usage::

    $ PYTHONPATH=src python scripts/service_smoke.py [--artifacts DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
REPO_SRC = str(SCRIPTS_DIR.parent / "src")
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.cli.sched import status_path, submit_main  # noqa: E402
from repro.runtime.config import RunConfig  # noqa: E402
from repro.runtime.sequential import run_sequential  # noqa: E402

LISTEN_TIMEOUT = 30.0
SERVE_TIMEOUT = 60.0
CHAOS_TIMEOUT = 60.0

#: The routines module written next to the queue file; the serving
#: scheduler imports it from there and the pool unpickles the routines
#: by reference, so the pool's PYTHONPATH includes the directory too.
ROUTINES = '''\
"""Realization routines for the streaming-service smoke test."""
import os
import time

_CALLS = {"n": 0}


def square(rng):
    return rng.random() ** 2


def crawl(rng):
    """Slow enough that the job is still running when cancelled."""
    time.sleep(0.05)
    return rng.random()


def hang_on_sixth(rng):
    """One worker hangs forever on its 6th call (O_EXCL race)."""
    directory = os.environ.get("PARMONC_SERVICE_SMOKE_HANG_DIR")
    if directory:
        _CALLS["n"] += 1
        if _CALLS["n"] == 6:
            try:
                fd = os.open(os.path.join(directory, "hang.pid"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                while True:
                    time.sleep(3600)
    return rng.random() ** 2
'''


def check(condition: bool, what: str) -> None:
    if not condition:
        print(f"smoke: FAIL — {what}", file=sys.stderr)
        sys.exit(1)
    print(f"smoke: ok — {what}")


def child_env(base: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [REPO_SRC, str(base)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env["PARMONC_SERVICE_SMOKE_HANG_DIR"] = str(base)
    return env


def launch_pool(base: Path, workers: int) -> tuple[subprocess.Popen, str]:
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.pool", "--port", "0",
         "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=child_env(base))
    banner: list[str] = []

    def read_banner():
        banner.append(child.stdout.readline())

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    reader.join(LISTEN_TIMEOUT)
    if not banner or "listening on" not in banner[0]:
        child.kill()
        raise RuntimeError("pool did not announce itself: "
                           + (banner[0] if banner else "no output"))
    address = banner[0].rsplit(" ", 1)[-1].strip()
    print(f"smoke: pool up at {address} (pid {child.pid})")
    return child, address


def launch_service(base: Path, queue: Path,
                   address: str) -> subprocess.Popen:
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.sched", "--serve",
         "--queue", str(queue), "--backend", "distributed",
         "--connect", address, "--sla-report", str(base / "sla.json")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=child_env(base))
    threading.Thread(target=lambda: shutil.copyfileobj(
        child.stdout, sys.stdout), daemon=True).start()
    deadline = time.monotonic() + SERVE_TIMEOUT
    status_file = status_path(queue)
    while not status_file.exists():
        if child.poll() is not None or time.monotonic() > deadline:
            child.kill()
            raise RuntimeError("service never wrote its status file")
        time.sleep(0.05)
    print(f"smoke: service up (pid {child.pid})")
    return child


def read_status(queue: Path) -> dict:
    try:
        return json.loads(status_path(queue).read_text())
    except (OSError, ValueError):
        return {}


def wait_status(queue: Path, job: str, states: tuple[str, ...],
                timeout: float) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = (read_status(queue).get("jobs") or {}).get(job) or {}
        state = record.get("status")
        if state in states:
            return state
        time.sleep(0.1)
    raise RuntimeError(f"{job} never reached {states}")


def normalized_artifacts(workdir: Path) -> dict:
    """A job's result artifacts with the wall-clock fields removed."""
    root = workdir / "parmonc_data"
    artifacts = {}
    for name in ("results/func.dat", "results/func_ci.dat"):
        artifacts[name] = (root / name).read_bytes()
    log_lines = [line for line
                 in (root / "results/func_log.dat").read_text().splitlines()
                 if not line.startswith(("mean_time_per_realization_sec",
                                         "written_at", "elapsed_sec"))]
    artifacts["results/func_log.dat"] = "\n".join(log_lines)
    savepoint = json.loads((root / "savepoint.json").read_text())
    savepoint.pop("checksum", None)
    savepoint.pop("written_at", None)
    savepoint["payload"]["snapshot"].pop("compute_time", None)
    artifacts["savepoint.json"] = savepoint
    return artifacts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="copy the SLA report, status file and the "
                             "victim job's telemetry here")
    args = parser.parse_args()

    base = Path(tempfile.mkdtemp(prefix="parmonc-service-smoke-"))
    (base / "smokeroutines.py").write_text(ROUTINES)
    queue = base / "jobs.jsonl"
    pool: subprocess.Popen | None = None
    service: subprocess.Popen | None = None
    try:
        pool, address = launch_pool(base, workers=4)
        service = launch_service(base, queue, address)

        def submit(argv: list[str]) -> int:
            return submit_main(argv + ["--queue", str(queue)])

        # A malformed submission dies at validation, queue untouched.
        before = queue.read_text() if queue.exists() else ""
        code = submit(["smokeroutines:square", "--maxsv", "-5",
                       "--name", "broken"])
        check(code == 2 and (queue.read_text()
                             if queue.exists() else "") == before,
              "invalid submission exits 2 without touching the queue")

        # Three staggered jobs against the live admission loop.
        check(submit(["smokeroutines:square", "--maxsv", "200",
                      "--name", "steady", "--seqnum", "0",
                      "--processors", "1", "--perpass", "0",
                      "--peraver", "0"]) == 0, "submitted steady")
        wait_status(queue, "steady", ("running", "done"), SERVE_TIMEOUT)
        check(submit(["smokeroutines:crawl", "--maxsv", "600",
                      "--name", "doomed", "--seqnum", "1",
                      "--processors", "1", "--perpass", "0",
                      "--peraver", "0"]) == 0, "submitted doomed")
        check(submit(["smokeroutines:hang_on_sixth", "--maxsv", "20",
                      "--name", "victim", "--seqnum", "2",
                      "--processors", "2", "--perpass", "0",
                      "--peraver", "0", "--telemetry",
                      "--on-worker-death", "reassign"]) == 0,
              "submitted victim")

        # Chaos: SIGKILL the victim's hung worker once it appears.
        pid_path = base / "hang.pid"
        deadline = time.monotonic() + CHAOS_TIMEOUT
        while not pid_path.exists() or not pid_path.read_text():
            if time.monotonic() > deadline:
                check(False, "hang.pid never appeared")
            time.sleep(0.05)
        time.sleep(0.3)
        os.kill(int(pid_path.read_text()), signal.SIGKILL)
        print("smoke: SIGKILLed the victim job's hung worker")

        # Cancel the running crawler; --wait must report cancellation.
        wait_status(queue, "doomed", ("running",), SERVE_TIMEOUT)
        code = submit(["--cancel", "doomed", "--wait",
                       "--wait-timeout", str(SERVE_TIMEOUT)])
        check(code == 1, "--cancel + --wait exits 1 for the victim "
                         "of a cancellation")
        check(wait_status(queue, "doomed", ("cancelled",),
                          SERVE_TIMEOUT) == "cancelled",
              "status file shows doomed cancelled")

        # The survivors drain to completion.
        check(submit(["--wait", "--wait-timeout", str(SERVE_TIMEOUT),
                      "smokeroutines:square", "--maxsv", "40",
                      "--name", "late", "--seqnum", "3",
                      "--processors", "2", "--perpass", "0",
                      "--peraver", "0"]) == 0,
              "late job admitted mid-run and --wait exits 0")
        wait_status(queue, "steady", ("done",), SERVE_TIMEOUT)
        wait_status(queue, "victim", ("done",), SERVE_TIMEOUT)
        check(True, "steady and victim both finished")

        # Shutdown directive: drain, write the SLA report, exit 0.
        check(submit(["--shutdown"]) == 0, "shutdown directive queued")
        try:
            returncode = service.wait(timeout=SERVE_TIMEOUT)
        except subprocess.TimeoutExpired:
            service.kill()
            check(False, "service did not exit after shutdown")
        check(returncode == 0, "service exited 0")
        status = read_status(queue)
        check(status.get("serving") is False,
              "final status file records the service as stopped")

        # Bit-identity: the streamed steady job vs. a solo sequential
        # run of the same config.
        os.environ.pop("PARMONC_SERVICE_SMOKE_HANG_DIR", None)
        sys.path.insert(0, str(base))
        import smokeroutines
        run_sequential(smokeroutines.square,
                       RunConfig(maxsv=200, processors=1, perpass=0.0,
                                 peraver=0.0, seqnum=0,
                                 workdir=base / "ref-steady"))
        check(normalized_artifacts(base / "steady")
              == normalized_artifacts(base / "ref-steady"),
              "steady artifacts bit-identical to the solo reference")

        report = json.loads((base / "sla.json").read_text())
        by_id = {record["job"]: record for record in report["jobs"]}
        check({"steady", "doomed", "victim", "late"} <= set(by_id),
              "SLA report covers all submitted jobs")
        check(by_id["victim"]["recovered"] == 1,
              "SLA report records the victim's recovery")
        check(report["deadline_misses"] == 0, "no deadline misses")

        if args.artifacts is not None:
            args.artifacts.mkdir(parents=True, exist_ok=True)
            shutil.copy2(base / "sla.json", args.artifacts / "sla.json")
            shutil.copy2(status_path(queue),
                         args.artifacts / "status.json")
            telemetry = (base / "victim" / "parmonc_data"
                         / "telemetry")
            for artifact in sorted(telemetry.glob("*.jsonl")):
                shutil.copy2(artifact, args.artifacts / artifact.name)
            print(f"smoke: artifacts copied to {args.artifacts}")

        print("smoke: streaming service PASSED")
        return 0
    finally:
        for child in (service, pool):
            if child is not None and child.poll() is None:
                child.kill()
        shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
