#!/usr/bin/env python
"""End-to-end crash-recovery smoke test (CI gate for §3.4).

Launches a real multiprocess PARMONC run in a child process group,
SIGKILLs the whole group mid-run — the moral equivalent of a cluster
scheduler cancelling the job — and then proves the §3.4 recovery
promise: ``manaver`` exits 0 and recovers a non-zero sample volume from
the per-processor save-points, and the recovered save-point passes its
checksum.

Usage::

    $ PYTHONPATH=src python scripts/crash_recovery_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.cli.manaver import main as manaver_main  # noqa: E402
from repro.runtime.files import DataDirectory  # noqa: E402

#: The victim: a deliberately slow run that cannot finish before the
#: kill.  perpass=0 makes every realization pass its subtotal, so there
#: is always recent recoverable state on disk.
CHILD_PROGRAM = """
import sys, time
sys.path.insert(0, {src!r})
from repro import parmonc

def slow(rng):
    time.sleep(0.005)
    return rng.random()

parmonc(slow, maxsv=1_000_000, processors=2, backend="multiprocess",
        perpass=0.0, peraver=0.0, workdir={workdir!r})
"""

POLL_TIMEOUT = 60.0
EXTRA_RUNTIME = 0.5


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="parmonc-crash-smoke-"))
    program = CHILD_PROGRAM.format(src=REPO_SRC, workdir=str(workdir))
    child = subprocess.Popen([sys.executable, "-c", program],
                             start_new_session=True)
    data = DataDirectory(workdir)
    try:
        deadline = time.monotonic() + POLL_TIMEOUT
        while time.monotonic() < deadline:
            if child.poll() is not None:
                print("smoke: FAIL — run finished before the kill "
                      f"(exit {child.returncode}); raise maxsv",
                      file=sys.stderr)
                return 1
            if list(data.savepoints_dir.glob("processor_*.json")):
                break
            time.sleep(0.1)
        else:
            print("smoke: FAIL — no processor save-point appeared "
                  f"within {POLL_TIMEOUT:.0f}s", file=sys.stderr)
            return 1
        # Let a few more subtotals land, then kill the whole group the
        # way a scheduler would: no warning, no cleanup.
        time.sleep(EXTRA_RUNTIME)
        os.killpg(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - defensive
            os.killpg(child.pid, signal.SIGKILL)
            child.wait()
    print(f"smoke: killed run (pgid {child.pid}); recovering...")

    code = manaver_main(["--workdir", str(workdir)])
    if code != 0:
        print(f"smoke: FAIL — manaver exited {code}", file=sys.stderr)
        return 1
    snapshot, meta = data.load_savepoint()
    if snapshot.volume <= 0:
        print("smoke: FAIL — recovered sample volume is 0",
              file=sys.stderr)
        return 1
    if data.quarantined_files():
        print("smoke: FAIL — recovery quarantined artifacts: "
              f"{data.quarantined_files()}", file=sys.stderr)
        return 1
    print(f"smoke: OK — recovered {snapshot.volume} realizations over "
          f"{meta.sessions} session(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
