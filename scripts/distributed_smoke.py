#!/usr/bin/env python
"""End-to-end distributed-backend smoke test (CI gate for ISSUE 6).

Launches real ``parmonc-pool`` daemons as subprocesses and proves the
distributed backend's two headline promises over actual TCP:

1. **Parity** — a run dispatched to a pool is bit-identical to the
   sequential backend.
2. **Elastic recovery** — with a second pool joining mid-run and a
   worker SIGKILLed after delivering exactly 5 of its 10 realizations,
   the run still completes the full sample, and the merged estimate is
   bit-identical to the rank-ordered merge of the three pieces the run
   actually kept (computed locally as the reference).

Usage::

    $ PYTHONPATH=src python scripts/distributed_smoke.py \\
          [--artifacts DIR]

``--artifacts`` copies the recovery run's telemetry JSONL artifacts
(events, metrics) into DIR for CI upload.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
REPO_SRC = str(SCRIPTS_DIR.parent / "src")
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.core.parmonc import parmonc  # noqa: E402
from repro.obs.events import read_events  # noqa: E402
from repro.runtime.config import RunConfig  # noqa: E402
from repro.runtime.worker import run_worker  # noqa: E402
from repro.stats.merging import merge_snapshots  # noqa: E402

#: Routines are shipped to the pools by name (``routine_spec``), so the
#: pool processes import *this file* as a module — keep everything the
#: workers touch importable at module level.
_HANG_DIR_ENV = "PARMONC_SMOKE_HANG_DIR"

_CALLS = {"n": 0}

LISTEN_TIMEOUT = 30.0
CHAOS_TIMEOUT = 60.0


def square(rng):
    return rng.random() ** 2


def hang_on_sixth(rng):
    """One worker process hangs forever on its 6th call (O_EXCL race).

    The winner records its pid in ``hang.pid`` for the harness to
    SIGKILL after having delivered exactly 5 realizations
    (``perpass=0`` ships one message per realization).
    """
    directory = os.environ.get(_HANG_DIR_ENV)
    if directory:
        _CALLS["n"] += 1
        if _CALLS["n"] == 6:
            try:
                fd = os.open(os.path.join(directory, "hang.pid"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                while True:
                    time.sleep(3600)
    return rng.random() ** 2


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def launch_pool(port: int) -> tuple[subprocess.Popen, str]:
    """Start a one-slot parmonc-pool daemon; return (process, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [REPO_SRC, str(SCRIPTS_DIR)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.pool", "--port", str(port),
         "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    banner: list[str] = []

    def read_banner():
        banner.append(child.stdout.readline())

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    reader.join(LISTEN_TIMEOUT)
    if not banner or "listening on" not in banner[0]:
        child.kill()
        raise RuntimeError(
            f"pool did not announce itself within {LISTEN_TIMEOUT:.0f}s: "
            f"{banner[0]!r}" if banner else "no output")
    address = banner[0].rsplit(" ", 1)[-1].strip()
    print(f"smoke: pool up at {address} (pid {child.pid})")
    return child, address


def check(condition: bool, what: str) -> None:
    if not condition:
        print(f"smoke: FAIL — {what}", file=sys.stderr)
        sys.exit(1)
    print(f"smoke: ok — {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="copy the recovery run's telemetry JSONL "
                             "files into this directory")
    args = parser.parse_args()

    base = Path(tempfile.mkdtemp(prefix="parmonc-dist-smoke-"))
    os.environ[_HANG_DIR_ENV] = str(base)
    pools: list[subprocess.Popen] = []
    try:
        first, first_address = launch_pool(0)
        pools.append(first)
        late_port = free_port()

        # -- Part 1: clean parity over real TCP ------------------------
        sequential = parmonc(square, maxsv=400, perpass=0.0, peraver=0.0,
                             processors=2, backend="sequential",
                             workdir=base / "seq")
        distributed = parmonc(square, maxsv=400, perpass=0.0,
                              peraver=0.0, processors=2,
                              backend="distributed",
                              connect=first_address,
                              backend_options={
                                  "routine_spec":
                                      "distributed_smoke:square"},
                              workdir=base / "dist")
        check(distributed.total_volume == sequential.total_volume == 400,
              "parity run completed the full sample")
        check(distributed.estimates.mean[0, 0]
              == sequential.estimates.mean[0, 0]
              and distributed.estimates.variance[0, 0]
              == sequential.estimates.variance[0, 0],
              "distributed estimates bit-identical to sequential")

        # -- Part 2: late join + SIGKILL + reassign --------------------
        pid_path = base / "hang.pid"
        chaos_errors: list[str] = []

        def chaos():
            deadline = time.monotonic() + CHAOS_TIMEOUT
            while not pid_path.exists() or not pid_path.read_text():
                if time.monotonic() > deadline:
                    chaos_errors.append("hang.pid never appeared")
                    return
                time.sleep(0.05)
            try:
                pools.append(launch_pool(late_port)[0])
            except RuntimeError as error:
                chaos_errors.append(str(error))
                return
            time.sleep(0.3)
            os.kill(int(pid_path.read_text()), signal.SIGKILL)
            print("smoke: SIGKILLed the hung worker; late pool serving")

        agitator = threading.Thread(target=chaos, daemon=True)
        agitator.start()
        result = parmonc(
            hang_on_sixth, maxsv=20, perpass=0.0, peraver=0.0,
            processors=2, backend="distributed",
            connect=f"{first_address},127.0.0.1:{late_port}",
            backend_options={
                "routine_spec": "distributed_smoke:hang_on_sixth"},
            on_worker_death="reassign", telemetry=True,
            workdir=base / "elastic")
        agitator.join(timeout=CHAOS_TIMEOUT)
        check(not chaos_errors, "chaos thread ran to completion"
              if not chaos_errors else f"chaos: {chaos_errors[0]}")
        check(result.total_volume == 20,
              "recovered run completed the full 20-realization sample")
        check(result.recovered_ranks == (0,),
              "rank 0's remainder was reassigned")

        # Reference: the pieces the run kept — rank 0's 5 delivered,
        # rank 1's full 10, the replacement rank 2's 5 — merged in rank
        # order by a local worker loop (env unset -> routine benign).
        del os.environ[_HANG_DIR_ENV]
        config = RunConfig(nrow=1, ncol=1, maxsv=20, perpass=0.0,
                           peraver=0.0, processors=2,
                           workdir=base / "ref")
        pieces = [run_worker(hang_on_sixth, config, rank, quota,
                             send=lambda message: None).snapshot()
                  for rank, quota in ((0, 5), (1, 10), (2, 5))]
        reference = merge_snapshots(pieces).estimates()
        check(result.estimates.mean[0, 0] == reference.mean[0, 0]
              and result.estimates.variance[0, 0]
              == reference.variance[0, 0],
              "recovered estimate bit-identical to the rank-ordered "
              "reference merge")

        telemetry_dir = (base / "elastic" / "parmonc_data" / "telemetry")
        kinds = [event.kind for event in
                 read_events(telemetry_dir / "events.jsonl")]
        check(kinds.count("pool_connected") == 2,
              "both pools connected (one mid-run)")
        check("worker_died" in kinds and "worker_recovered" in kinds,
              "telemetry recorded the death and the recovery")

        if args.artifacts is not None:
            args.artifacts.mkdir(parents=True, exist_ok=True)
            for artifact in sorted(telemetry_dir.glob("*.jsonl")):
                shutil.copy2(artifact, args.artifacts / artifact.name)
            print(f"smoke: telemetry JSONL copied to {args.artifacts}")
        print("smoke: OK — distributed parity and elastic recovery hold")
        return 0
    finally:
        for pool in pools:
            if pool.poll() is None:
                pool.terminate()
                try:
                    pool.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    pool.kill()


if __name__ == "__main__":
    sys.exit(main())
