#!/usr/bin/env python
"""End-to-end scheduler smoke test (CI gate for the Job/Scheduler split).

Launches a real ``parmonc-pool`` daemon and drives **three concurrent
jobs** through one shared :class:`repro.runtime.scheduler.Scheduler`
session over actual TCP, then proves the multi-tenant promises:

1. **Isolation under chaos** — one job's worker is SIGKILLed mid-run;
   that job recovers via ``on_worker_death="reassign"`` while its two
   neighbours finish untouched.
2. **Per-job identity** — every job's estimate is bit-identical to its
   solo sequential reference (the victim's to the rank-ordered merge of
   the pieces the run actually kept).
3. **SLA accounting** — the scheduler's report covers all three jobs,
   records the recovery, and is written out for CI upload together with
   the victim job's telemetry.

Usage::

    $ PYTHONPATH=src python scripts/scheduler_smoke.py [--artifacts DIR]
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
REPO_SRC = str(SCRIPTS_DIR.parent / "src")
for entry in (REPO_SRC, str(SCRIPTS_DIR)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.obs.events import read_events  # noqa: E402
from repro.runtime.config import RunConfig  # noqa: E402
from repro.runtime.engine import create_backend  # noqa: E402
from repro.runtime.job import JobSpec, JobStatus  # noqa: E402
from repro.runtime.scheduler import Scheduler  # noqa: E402
from repro.runtime.sequential import run_sequential  # noqa: E402
from repro.runtime.worker import run_worker  # noqa: E402
from repro.stats.merging import merge_snapshots  # noqa: E402

#: Shared-mode routines travel by pickle (by reference), so the pool
#: imports *this file* as the ``scheduler_smoke`` module — keep
#: everything the workers run importable at module level, and submit
#: the module's attributes, never ``__main__``'s (see ``main()``).
_HANG_DIR_ENV = "PARMONC_SCHED_SMOKE_HANG_DIR"

_CALLS = {"n": 0}

LISTEN_TIMEOUT = 30.0
CHAOS_TIMEOUT = 60.0


def square(rng):
    return rng.random() ** 2


def cube(rng):
    return rng.random() ** 3


def hang_on_sixth(rng):
    """One worker process hangs forever on its 6th call (O_EXCL race).

    The winner records its pid in ``hang.pid`` for the harness to
    SIGKILL after having delivered exactly 5 realizations
    (``perpass=0`` ships one message per realization).
    """
    directory = os.environ.get(_HANG_DIR_ENV)
    if directory:
        _CALLS["n"] += 1
        if _CALLS["n"] == 6:
            try:
                fd = os.open(os.path.join(directory, "hang.pid"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                while True:
                    time.sleep(3600)
    return rng.random() ** 2


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def launch_pool(workers: int) -> tuple[subprocess.Popen, str]:
    """Start a parmonc-pool daemon; return (process, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [REPO_SRC, str(SCRIPTS_DIR)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.pool", "--port", "0",
         "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    banner: list[str] = []

    def read_banner():
        banner.append(child.stdout.readline())

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    reader.join(LISTEN_TIMEOUT)
    if not banner or "listening on" not in banner[0]:
        child.kill()
        raise RuntimeError(
            f"pool did not announce itself within {LISTEN_TIMEOUT:.0f}s: "
            f"{banner[0]!r}" if banner else "no output")
    address = banner[0].rsplit(" ", 1)[-1].strip()
    print(f"smoke: pool up at {address} (pid {child.pid})")
    return child, address


def check(condition: bool, what: str) -> None:
    if not condition:
        print(f"smoke: FAIL — {what}", file=sys.stderr)
        sys.exit(1)
    print(f"smoke: ok — {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="write the SLA report and the victim "
                             "job's telemetry JSONL files here")
    args = parser.parse_args()

    # Submit the *module's* routines so pickle serializes them by
    # importable reference, never as ``__main__`` attributes.
    import scheduler_smoke as mod

    base = Path(tempfile.mkdtemp(prefix="parmonc-sched-smoke-"))
    os.environ[_HANG_DIR_ENV] = str(base)
    pool: subprocess.Popen | None = None
    try:
        pool, address = launch_pool(workers=4)

        scheduler = Scheduler(create_backend("distributed",
                                             connect=address))
        steady0 = scheduler.submit(JobSpec(
            routine=mod.square,
            config=RunConfig(maxsv=200, perpass=0.0, peraver=0.0,
                             processors=1, seqnum=0,
                             workdir=base / "steady0"),
            name="steady0", priority=1.0, deadline=3600.0))
        steady1 = scheduler.submit(JobSpec(
            routine=mod.cube,
            config=RunConfig(maxsv=200, perpass=0.0, peraver=0.0,
                             processors=1, seqnum=1,
                             workdir=base / "steady1"),
            name="steady1", priority=2.0))
        victim = scheduler.submit(JobSpec(
            routine=mod.hang_on_sixth,
            config=RunConfig(maxsv=20, perpass=0.0, peraver=0.0,
                             processors=2, seqnum=2,
                             on_worker_death="reassign",
                             telemetry=True,
                             workdir=base / "victim"),
            name="victim", priority=1.0))

        pid_path = base / "hang.pid"
        chaos_errors: list[str] = []

        def chaos():
            deadline = time.monotonic() + CHAOS_TIMEOUT
            while not pid_path.exists() or not pid_path.read_text():
                if time.monotonic() > deadline:
                    chaos_errors.append("hang.pid never appeared")
                    return
                time.sleep(0.05)
            time.sleep(0.3)
            os.kill(int(pid_path.read_text()), signal.SIGKILL)
            print("smoke: SIGKILLed the victim job's hung worker")

        agitator = threading.Thread(target=chaos, daemon=True)
        agitator.start()
        scheduler.run()
        agitator.join(timeout=CHAOS_TIMEOUT)
        check(not chaos_errors, "chaos thread ran to completion"
              if not chaos_errors else f"chaos: {chaos_errors[0]}")
        check(all(job.status is JobStatus.DONE
                  for job in (steady0, steady1, victim)),
              "all three concurrent jobs finished")

        # Per-job identity: the steady jobs vs. their solo sequential
        # references, the victim vs. the rank-ordered merge of the
        # pieces the run kept (rank 0's 5 delivered, rank 1's full 10,
        # the replacement rank 2's 5).
        del os.environ[_HANG_DIR_ENV]
        for job, routine in ((steady0, mod.square), (steady1, mod.cube)):
            reference = run_sequential(
                routine, RunConfig(maxsv=200, perpass=0.0, peraver=0.0,
                                   processors=1, seqnum=job.index,
                                   workdir=base / f"ref-{job.id}"),
                use_files=False)
            check(job.result.estimates.mean[0, 0]
                  == reference.estimates.mean[0, 0]
                  and job.result.estimates.variance[0, 0]
                  == reference.estimates.variance[0, 0],
                  f"{job.id} estimate bit-identical to its solo "
                  f"sequential reference")
        check(victim.result.total_volume == 20,
              "victim job completed its full 20-realization sample")
        check(victim.result.recovered_ranks == (0,),
              "victim's dead rank was reassigned")
        config = RunConfig(maxsv=20, perpass=0.0, peraver=0.0,
                           processors=2, seqnum=2, workdir=base / "ref")
        pieces = [run_worker(mod.hang_on_sixth, config, rank, quota,
                             send=lambda message: None).snapshot()
                  for rank, quota in ((0, 5), (1, 10), (2, 5))]
        reference = merge_snapshots(pieces).estimates()
        check(victim.result.estimates.mean[0, 0] == reference.mean[0, 0]
              and victim.result.estimates.variance[0, 0]
              == reference.variance[0, 0],
              "victim estimate bit-identical to the rank-ordered "
              "reference merge")

        report = scheduler.sla_report()
        by_id = {record["job"]: record for record in report["jobs"]}
        check(set(by_id) == {"steady0", "steady1", "victim"},
              "SLA report covers all three jobs")
        check(by_id["victim"]["recovered"] == 1,
              "SLA report records the victim's recovery")
        check(report["deadline_misses"] == 0,
              "no deadline was missed")

        kinds = [event.kind for event in read_events(
            base / "victim" / "parmonc_data" / "telemetry"
            / "events.jsonl")]
        check("worker_died" in kinds and "worker_recovered" in kinds
              and "job_sla" in kinds,
              "victim telemetry recorded death, recovery and SLA")

        if args.artifacts is not None:
            args.artifacts.mkdir(parents=True, exist_ok=True)
            import json
            (args.artifacts / "sla_report.json").write_text(
                json.dumps(report, indent=2) + "\n")
            telemetry_dir = (base / "victim" / "parmonc_data"
                             / "telemetry")
            for artifact in sorted(telemetry_dir.glob("*.jsonl")):
                shutil.copy2(artifact, args.artifacts / artifact.name)
            print(f"smoke: SLA report + telemetry copied to "
                  f"{args.artifacts}")
        print("smoke: OK — three concurrent jobs, one shared pool, "
              "per-job recovery and identity hold")
        return 0
    finally:
        if pool is not None and pool.poll() is None:
            pool.terminate()
            try:
                pool.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pool.kill()


if __name__ == "__main__":
    sys.exit(main())
