"""The streaming scheduler *as* a G/G/c/K queue, at scale.

The million-submission load study: drive the live admission loop of
:class:`~repro.runtime.scheduler.Scheduler` with a synthetic arrival
stream on a *virtual* clock, and compare its measured admission
behaviour against the analytic/Monte-Carlo reference in
:mod:`repro.apps.queueing`.

The mapping is exact, not approximate:

* a job submission is an arrival; ``interarrival`` spaces them;
* the scheduler's global ``workers`` cap is the ``c`` servers;
* ``max_jobs`` is the capacity bound ``K`` — an
  :class:`~repro.exceptions.AdmissionError` is a blocked arrival;
* a job's service demand is drawn from ``service`` at the moment its
  single assignment is dispatched (start of service), exactly where
  :func:`~repro.apps.queueing.simulate_ggck` draws it;
* submit-to-dispatch delay on the virtual clock is the waiting time.

Because both sides draw from one shared generator in the same event
order, the study's rejection count matches ``simulate_ggck``'s blocked
count *exactly*, and the mean waits agree to floating-point error —
the test suite and the streaming benchmark assert both.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.apps.queueing import GGcKQueue
from repro.exceptions import AdmissionError
from repro.rng.lcg128 import Lcg128
from repro.runtime.config import RunConfig
from repro.runtime.engine import EngineBackend
from repro.runtime.job import JobSpec
from repro.runtime.messages import MomentMessage
from repro.runtime.scheduler import Scheduler
from repro.stats.accumulator import MomentSnapshot

__all__ = ["LoadStudyBackend", "LoadStudyResult", "run_load_study",
           "synthetic_job"]


def synthetic_job(rng):
    """Placeholder realization; the load backend never executes it."""
    return 0.0


class LoadStudyBackend(EngineBackend):
    """Virtual-clock backend: service demands are sampled, not run.

    ``spawn`` draws one service demand per assignment from the shared
    generator — the same draw the G/G/c/K reference makes at the start
    of service — records the job's virtual wait, and schedules a
    synthetic final message at ``now + demand`` on a min-heap.
    ``poll`` delivers the head completion once the driver has advanced
    the virtual clock to it.
    """

    name = "loadstudy"
    supports_shared_jobs = True

    def __init__(self, service, rng: Lcg128) -> None:
        super().__init__()
        self._service = service
        self._rng = rng
        #: The virtual clock, advanced only by the driver.
        self.now = 0.0
        #: Virtual arrival time per job id, set by the driver at submit.
        self.arrivals: dict[str, float] = {}
        #: Virtual submit-to-dispatch waits, one per admitted job.
        self.waits: list[float] = []
        self._seq = 0
        self.completions: list[tuple] = []  # (finish, seq, job, rank)

    def clock(self) -> float:
        return self.now

    def spawn(self, assignments) -> None:
        for assignment in assignments:
            demand = self._service(self._rng)
            arrival = self.arrivals.pop(assignment.job)
            self.waits.append(self.now - arrival)
            heapq.heappush(self.completions,
                           (self.now + demand, self._seq,
                            assignment.job, assignment.rank))
            self._seq += 1
        return None

    def poll(self, timeout: float) -> MomentMessage | None:
        if self.completions and self.completions[0][0] <= self.now:
            finish, _, job, rank = heapq.heappop(self.completions)
            snapshot = MomentSnapshot(sum1=np.zeros((1, 1)),
                                      sum2=np.zeros((1, 1)), volume=1)
            return MomentMessage(rank, snapshot, sent_at=finish,
                                 final=True, job=job)
        return None


@dataclass(frozen=True)
class LoadStudyResult:
    """Measured admission behaviour of one load-study run.

    Attributes:
        submitted: Total arrivals pushed at the admission loop.
        admitted: Jobs that were admitted and served.
        rejected: Arrivals refused with :class:`AdmissionError`.
        mean_wait: Mean virtual submit-to-dispatch wait of admitted
            jobs (the G/G/c/K ``W_q``).
    """

    submitted: int
    admitted: int
    rejected: int
    mean_wait: float


def run_load_study(queue: GGcKQueue, rng: Lcg128, *,
                   prune_every: int = 1) -> LoadStudyResult:
    """Replay a G/G/c/K arrival stream against the live admission loop.

    Event discipline mirrors :func:`simulate_ggck` step for step: draw
    the interarrival, absorb every completion up to the arrival (one
    ``step`` to finalize the finished job, one to hand the freed slot
    to the queue head at the freed instant), then submit at the arrival
    time.  ``prune_every`` bounds the live job table so a million
    submissions run in constant memory — and, since every service-loop
    pass scans the live table, in constant time per arrival (pruning
    each arrival is measurably *faster* than batching it up).
    """
    backend = LoadStudyBackend(queue.service, rng)
    scheduler = Scheduler(backend, workers=queue.servers,
                          max_jobs=queue.capacity)
    scheduler.streaming = True
    config = RunConfig(maxsv=1, processors=1, perpass=0.0, peraver=0.0)
    rejected = 0
    now = 0.0

    def flush(until: float) -> None:
        while backend.completions and backend.completions[0][0] <= until:
            backend.now = backend.completions[0][0]
            scheduler.step(poll_timeout=0.0)   # absorb + finalize
            scheduler.step(poll_timeout=0.0)   # freed slot refills

    for index in range(queue.customers):
        now += queue.interarrival(rng)
        flush(now)
        backend.now = now
        name = f"c{index}"
        backend.arrivals[name] = now
        try:
            scheduler.submit(JobSpec(routine=synthetic_job,
                                     config=config, name=name,
                                     use_files=False))
        except AdmissionError:
            rejected += 1
            del backend.arrivals[name]
            continue
        scheduler.step(poll_timeout=0.0)
        if index % prune_every == 0:
            scheduler.prune()
    flush(float("inf"))
    scheduler.shutdown()
    admitted = len(backend.waits)
    mean_wait = sum(backend.waits) / admitted if admitted else 0.0
    return LoadStudyResult(submitted=queue.customers, admitted=admitted,
                           rejected=rejected, mean_wait=mean_wait)
