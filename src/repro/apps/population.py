"""Population-biology workload: a Galton–Watson branching process.

The MONC predecessor library was "actively applied ... to solve various
problems in the population biology" (§1); this module supplies that
application area.  Each realization evolves a population whose
individuals independently leave a Poisson(``offspring_mean``) number of
descendants; the realization matrix records the population size at each
generation, with the exact expectation ``E Z_g = Z_0 * m**g`` as oracle
(and extinction probability as a second estimand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.distributions import normal, poisson
from repro.rng.lcg128 import Lcg128

__all__ = ["BranchingProcess", "simulate_lineage", "make_realization"]


@dataclass(frozen=True)
class BranchingProcess:
    """A Galton–Watson process with Poisson offspring.

    Attributes:
        offspring_mean: Mean offspring per individual ``m``; the process
            is subcritical (dies out) for ``m < 1``, critical at 1,
            supercritical for ``m > 1``.
        generations: Number of generations to evolve.
        initial_size: Founding population ``Z_0``.
        population_cap: Safety bound; growth beyond it is truncated
            (supercritical processes explode exponentially).
    """

    offspring_mean: float = 0.9
    generations: int = 10
    initial_size: int = 1
    population_cap: int = 1_000_000

    def __post_init__(self) -> None:
        if self.offspring_mean < 0.0:
            raise ConfigurationError(
                f"offspring_mean must be >= 0, got {self.offspring_mean}")
        if self.generations < 1:
            raise ConfigurationError(
                f"generations must be >= 1, got {self.generations}")
        if self.initial_size < 1:
            raise ConfigurationError(
                f"initial_size must be >= 1, got {self.initial_size}")
        if self.population_cap < self.initial_size:
            raise ConfigurationError(
                "population_cap must be at least the initial size")

    def exact_mean_sizes(self) -> np.ndarray:
        """``E Z_g = Z_0 * m**g`` for ``g = 1..generations``."""
        g = np.arange(1, self.generations + 1, dtype=np.float64)
        return self.initial_size * self.offspring_mean ** g


def simulate_lineage(process: BranchingProcess, rng: Lcg128) -> np.ndarray:
    """Evolve one lineage; return population sizes per generation.

    Aggregates the generation's offspring as a single Poisson draw with
    mean ``m * Z`` (the sum of ``Z`` independent Poisson(m) variables),
    which is exact and keeps large populations cheap.  Very large means
    switch to the normal approximation, whose error is negligible well
    before the switch point.
    """
    sizes = np.empty(process.generations, dtype=np.float64)
    population = process.initial_size
    for generation in range(process.generations):
        if population == 0:
            sizes[generation:] = 0.0
            break
        mean = process.offspring_mean * population
        if mean > 256.0:
            draw = normal(rng, mean, mean ** 0.5)
            population = max(0, int(round(draw)))
        else:
            population = poisson(rng, mean)
        population = min(population, process.population_cap)
        sizes[generation] = float(population)
    return sizes


def make_realization(process: BranchingProcess
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization for a branching process.

    The returned matrix has shape ``(generations, 2)``: column 0 is the
    population size per generation, column 1 the extinction indicator
    (1.0 once the lineage has died out), so the averaged matrix gives
    both mean growth curves and extinction probabilities.
    """
    def realization(rng: Lcg128) -> np.ndarray:
        sizes = simulate_lineage(process, rng)
        extinct = (sizes == 0.0).astype(np.float64)
        return np.column_stack([sizes, extinct])

    return realization
