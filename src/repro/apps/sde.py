"""Stochastic differential equations and the §4 performance-test problem.

The paper evaluates PARMONC on a 2-dimensional additive-noise SDE

    dy(t) = C dt + D dw(t),   y(0) = y_0,   t in [0, 100],

integrated with the generalized Euler method (formula (9)) and observed
at 1000 output times ``t_i = i * 0.1``; the realization matrix is
``zeta_ij = y_j(t_i)`` with exact expectation ``E y_j(t_i) = y_0j +
C_j t_i``.  The scanned paper's constants are partly illegible, so this
module fixes a documented choice (see :func:`paper_system`) — the
experiment's *shape* (linear exact mean, error ~ 3 sigma / sqrt(L))
does not depend on the constants.

Two integrators are provided:

* a fast path for additive-noise systems, which generates the per-step
  normal increments in vectorized blocks from the realization's own RNG
  substream, and
* a general Euler loop for drift/diffusion callables (used by the
  Ornstein–Uhlenbeck extension example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.distributions import normals_from_uniforms
from repro.rng.lcg128 import Lcg128
from repro.rng.vectorized import VectorLcg128

__all__ = [
    "AdditiveSDE",
    "paper_system",
    "EulerSpec",
    "simulate_additive_trajectory",
    "make_paper_realization",
    "GeneralSDE",
    "simulate_general_trajectory",
    "ornstein_uhlenbeck",
    "ScalarSDE",
    "geometric_brownian_motion",
    "simulate_scalar_euler",
    "simulate_scalar_milstein",
]

#: Guard against specs whose per-interval uniform demand would exhaust
#: memory (16M doubles per output interval is ~128 MB).
_MAX_INTERVAL_UNIFORMS = 16 * 1024 * 1024


@dataclass(frozen=True)
class AdditiveSDE:
    """An SDE with constant drift and diffusion: ``dy = C dt + D dw``.

    Attributes:
        initial: Initial state ``y(0)``, shape ``(d,)``.
        drift: Constant drift vector ``C``, shape ``(d,)``.
        diffusion: Constant diffusion matrix ``D``, shape ``(d, d)``.
    """

    initial: np.ndarray
    drift: np.ndarray
    diffusion: np.ndarray

    def __post_init__(self) -> None:
        initial = np.atleast_1d(np.asarray(self.initial, dtype=np.float64))
        drift = np.atleast_1d(np.asarray(self.drift, dtype=np.float64))
        diffusion = np.atleast_2d(np.asarray(self.diffusion,
                                             dtype=np.float64))
        if initial.ndim != 1 or drift.shape != initial.shape:
            raise ConfigurationError(
                f"initial {initial.shape} and drift {drift.shape} must be "
                f"equal-length vectors")
        if diffusion.shape != (initial.size, initial.size):
            raise ConfigurationError(
                f"diffusion must be {initial.size}x{initial.size}, "
                f"got {diffusion.shape}")
        object.__setattr__(self, "initial", initial)
        object.__setattr__(self, "drift", drift)
        object.__setattr__(self, "diffusion", diffusion)

    @property
    def dimension(self) -> int:
        """State dimension ``d``."""
        return self.initial.size

    def exact_mean(self, times: np.ndarray) -> np.ndarray:
        """``E y(t) = y_0 + C t`` at each requested time; shape (n, d)."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        return self.initial[None, :] + np.outer(times, self.drift)

    def exact_variance(self, times: np.ndarray) -> np.ndarray:
        """``Var y_j(t) = (D D^T)_jj t`` at each time; shape (n, d)."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        covariance_rate = np.diag(self.diffusion @ self.diffusion.T)
        return np.outer(times, covariance_rate)


def paper_system() -> AdditiveSDE:
    """The §4 test system (constants fixed where the scan is illegible).

    ``y(0) = (0, 0)``, ``C = (1.5, 0.25)``,
    ``D = diag(1.0, 0.02)`` — a fast-drifting noisy component paired
    with a slow low-noise one, matching the paper's description of a
    2-dimensional system observed at ``t_i = i * 0.1``.
    """
    return AdditiveSDE(initial=np.zeros(2),
                       drift=np.array([1.5, 0.25]),
                       diffusion=np.diag([1.0, 0.02]))


@dataclass(frozen=True)
class EulerSpec:
    """Discretization of the generalized Euler method (formula (9)).

    Attributes:
        mesh: Step size ``h``.  The paper uses ``1e-6``; the default
            here is coarser because pure-Python reproduction targets
            statistical shape, not FORTRAN step counts.
        t_max: End of the integration interval.
        n_output: Number of equally spaced output times
            ``t_i = i * t_max / n_output``, ``i = 1..n_output``.
    """

    mesh: float = 1e-3
    t_max: float = 100.0
    n_output: int = 1000

    def __post_init__(self) -> None:
        if self.mesh <= 0.0 or self.t_max <= 0.0:
            raise ConfigurationError(
                f"mesh and t_max must be > 0, got mesh={self.mesh}, "
                f"t_max={self.t_max}")
        if self.n_output < 1:
            raise ConfigurationError(
                f"n_output must be >= 1, got {self.n_output}")
        if self.steps_per_output < 1:
            raise ConfigurationError(
                f"mesh {self.mesh} is coarser than the output spacing "
                f"{self.output_spacing}")

    @property
    def output_spacing(self) -> float:
        """Distance between consecutive output times."""
        return self.t_max / self.n_output

    @property
    def steps_per_output(self) -> int:
        """Euler steps between consecutive output times."""
        return int(round(self.output_spacing / self.mesh))

    @property
    def output_times(self) -> np.ndarray:
        """The observation grid ``t_1 .. t_{n_output}``."""
        return (np.arange(1, self.n_output + 1) * self.output_spacing)

    @property
    def total_steps(self) -> int:
        """Euler steps over the whole interval."""
        return self.steps_per_output * self.n_output


def simulate_additive_trajectory(system: AdditiveSDE, spec: EulerSpec,
                                 rng: Lcg128) -> np.ndarray:
    """One Euler trajectory of an additive SDE, observed on the output grid.

    Vectorized: per-step standard normals come from the realization's
    RNG substream via block Box–Muller and each output interval is
    advanced with one cumulative sum (exact for additive noise).  The
    grouping of floating-point additions is fixed — one block per
    output interval — so a trajectory is a bit-reproducible function of
    ``(system, spec, stream)`` alone, with no tuning knobs involved.
    """
    dim = system.dimension
    per_output = spec.steps_per_output
    if 2 * per_output * dim > _MAX_INTERVAL_UNIFORMS:
        raise ConfigurationError(
            f"spec needs {2 * per_output * dim} uniforms per output "
            f"interval (> {_MAX_INTERVAL_UNIFORMS}); use a coarser mesh "
            f"or more output times")
    source = VectorLcg128(rng)
    effective_h = spec.output_spacing / per_output
    scale = np.sqrt(effective_h)
    output = np.empty((spec.n_output, dim), dtype=np.float64)
    state = system.initial.copy()
    for output_index in range(spec.n_output):
        uniforms = source.uniforms(2 * per_output * dim)
        normals = normals_from_uniforms(
            uniforms[0::2], uniforms[1::2]).reshape(per_output, dim)
        increments = (effective_h * system.drift
                      + scale * normals @ system.diffusion.T)
        state = state + increments.sum(axis=0)
        output[output_index] = state
    return output


def make_paper_realization(spec: EulerSpec | None = None,
                           system: AdditiveSDE | None = None
                           ) -> Callable[[Lcg128], np.ndarray]:
    """Build the §4 realization routine ``difftraj``.

    Returns a callable ``difftraj(rng) -> (n_output, d) matrix`` suitable
    for :func:`repro.parmonc` with ``nrow=spec.n_output``,
    ``ncol=system.dimension``.
    """
    resolved_spec = spec if spec is not None else EulerSpec()
    resolved_system = system if system is not None else paper_system()

    def difftraj(rng: Lcg128) -> np.ndarray:
        return simulate_additive_trajectory(resolved_system, resolved_spec,
                                            rng)

    return difftraj


@dataclass(frozen=True)
class GeneralSDE:
    """An SDE with state-dependent coefficients: ``dy = a(t,y) dt + b(t,y) dw``.

    Attributes:
        initial: Initial state, shape ``(d,)``.
        drift: Callable ``a(t, y) -> (d,)``.
        diffusion: Callable ``b(t, y) -> (d, d)``.
    """

    initial: np.ndarray
    drift: Callable[[float, np.ndarray], np.ndarray]
    diffusion: Callable[[float, np.ndarray], np.ndarray]

    def __post_init__(self) -> None:
        initial = np.atleast_1d(np.asarray(self.initial, dtype=np.float64))
        object.__setattr__(self, "initial", initial)

    @property
    def dimension(self) -> int:
        """State dimension ``d``."""
        return self.initial.size


def simulate_general_trajectory(system: GeneralSDE, spec: EulerSpec,
                                rng: Lcg128) -> np.ndarray:
    """Euler–Maruyama for state-dependent coefficients (scalar loop).

    Slower than the additive fast path; intended for low step counts.
    Returns the ``(n_output, d)`` observation matrix.
    """
    dim = system.dimension
    source = VectorLcg128(rng)
    effective_h = spec.output_spacing / spec.steps_per_output
    scale = np.sqrt(effective_h)
    state = system.initial.copy()
    output = np.empty((spec.n_output, dim), dtype=np.float64)
    t = 0.0
    for output_index in range(spec.n_output):
        uniforms = source.uniforms(2 * spec.steps_per_output * dim)
        normals = normals_from_uniforms(
            uniforms[0::2], uniforms[1::2]).reshape(spec.steps_per_output,
                                                    dim)
        for step in range(spec.steps_per_output):
            drift = np.asarray(system.drift(t, state), dtype=np.float64)
            diffusion = np.asarray(system.diffusion(t, state),
                                   dtype=np.float64)
            state = state + effective_h * drift \
                + scale * diffusion @ normals[step]
            t += effective_h
        output[output_index] = state
    return output


def ornstein_uhlenbeck(theta: float = 1.0, mu: float = 0.0,
                       sigma: float = 0.5,
                       initial: float = 1.0) -> GeneralSDE:
    """The OU process ``dy = theta (mu - y) dt + sigma dw``.

    Its exact mean ``E y(t) = mu + (y_0 - mu) e^{-theta t}`` makes it a
    good accuracy check for the general integrator.
    """
    if theta <= 0.0 or sigma < 0.0:
        raise ConfigurationError(
            f"need theta > 0 and sigma >= 0, got theta={theta}, "
            f"sigma={sigma}")
    return GeneralSDE(
        initial=np.array([initial]),
        drift=lambda t, y: theta * (mu - y),
        diffusion=lambda t, y: np.array([[sigma]]))


@dataclass(frozen=True)
class ScalarSDE:
    """A scalar SDE ``dy = a(y) dt + b(y) dw`` with known derivative.

    The extra piece of information — ``diffusion_derivative`` ``b'(y)``
    — is what the Milstein correction term needs; supplying it
    explicitly keeps the integrators free of numerical differentiation.

    Attributes:
        initial: Initial value ``y_0``.
        drift: ``a(y)``.
        diffusion: ``b(y)``.
        diffusion_derivative: ``b'(y)``.
        exact_terminal: Optional exact strong solution
            ``y(T; w)`` as a function ``(t, brownian_value) -> y`` —
            available for GBM, used to measure strong convergence.
    """

    initial: float
    drift: Callable[[float], float]
    diffusion: Callable[[float], float]
    diffusion_derivative: Callable[[float], float]
    exact_terminal: Callable[[float, float], float] | None = None


def geometric_brownian_motion(mu: float = 0.05, sigma: float = 0.2,
                              initial: float = 1.0) -> ScalarSDE:
    """GBM ``dy = mu y dt + sigma y dw`` with its exact strong solution.

    ``y(t) = y_0 exp((mu - sigma**2/2) t + sigma w(t))`` — the oracle
    for strong-convergence measurements of the integrators.
    """
    if initial <= 0.0:
        raise ConfigurationError(
            f"GBM initial value must be > 0, got {initial}")
    if sigma < 0.0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")

    def exact(t: float, brownian: float) -> float:
        return initial * np.exp((mu - 0.5 * sigma * sigma) * t
                                + sigma * brownian)

    return ScalarSDE(
        initial=initial,
        drift=lambda y: mu * y,
        diffusion=lambda y: sigma * y,
        diffusion_derivative=lambda y: sigma,
        exact_terminal=exact)


def _brownian_increments(rng: Lcg128, steps: int,
                         mesh: float) -> np.ndarray:
    source = VectorLcg128(rng)
    uniforms = source.uniforms(2 * steps)
    return np.sqrt(mesh) * normals_from_uniforms(uniforms[0::2],
                                                 uniforms[1::2])


def simulate_scalar_euler(system: ScalarSDE, t_max: float, steps: int,
                          rng: Lcg128) -> tuple[float, float]:
    """Euler–Maruyama to time ``t_max``; returns ``(y_T, w_T)``.

    The terminal Brownian value ``w_T`` is returned so callers can
    evaluate the exact strong solution on the *same* path — the strong
    error ``|y_T^h - y_T|`` is then directly measurable.
    """
    if steps < 1 or t_max <= 0.0:
        raise ConfigurationError(
            f"need steps >= 1 and t_max > 0, got {steps}, {t_max}")
    mesh = t_max / steps
    increments = _brownian_increments(rng, steps, mesh)
    y = system.initial
    for dw in increments:
        y = y + system.drift(y) * mesh + system.diffusion(y) * dw
    return float(y), float(increments.sum())


def simulate_scalar_milstein(system: ScalarSDE, t_max: float,
                             steps: int, rng: Lcg128
                             ) -> tuple[float, float]:
    """Milstein scheme to time ``t_max``; returns ``(y_T, w_T)``.

    Adds the correction ``0.5 b b' (dw**2 - h)`` to each Euler step,
    lifting the strong order from 0.5 to 1.0 for multiplicative noise.
    Consumes the same base random numbers as
    :func:`simulate_scalar_euler`, so the two schemes can be compared
    pathwise.
    """
    if steps < 1 or t_max <= 0.0:
        raise ConfigurationError(
            f"need steps >= 1 and t_max > 0, got {steps}, {t_max}")
    mesh = t_max / steps
    increments = _brownian_increments(rng, steps, mesh)
    y = system.initial
    for dw in increments:
        diffusion = system.diffusion(y)
        y = (y + system.drift(y) * mesh + diffusion * dw
             + 0.5 * diffusion * system.diffusion_derivative(y)
             * (dw * dw - mesh))
    return float(y), float(increments.sum())
