"""Smoluchowski coagulation — §2.1 names it among the target problems.

A realization is one Marcus–Lushnikov trajectory: ``n0`` monomers in a
volume equal to ``n0`` coalesce pairwise under the constant kernel
``K``; waiting times between coalescences are exponential with rate
``K * n(n-1) / (2 V)`` (Gillespie's direct method), and merged cluster
sizes add.  The realization matrix records, at each output time, the
normalized total cluster count followed by the concentrations of sizes
``1..max_size``.

For the constant kernel with monodisperse initial data the mean-field
Smoluchowski equations solve in closed form:

    N(t)   = 1 / (1 + K t / 2),
    c_k(t) = N(t)**2 * (1 - N(t))**(k-1),

which the stochastic realizations approach as ``n0`` grows (finite-size
bias is O(1/n0)); these oracles drive the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["CoagulationProblem", "simulate_coagulation",
           "make_realization"]


@dataclass(frozen=True)
class CoagulationProblem:
    """Constant-kernel coagulation of an initially monodisperse system.

    Attributes:
        n0: Initial number of monomers (simulation volume is ``n0``, so
            the initial monomer concentration is 1).
        kernel: The constant coagulation rate ``K``.
        output_times: Times at which the spectrum is recorded.
        max_size: Largest cluster size tracked individually.
    """

    n0: int = 500
    kernel: float = 1.0
    output_times: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    max_size: int = 8

    def __post_init__(self) -> None:
        if self.n0 < 2:
            raise ConfigurationError(f"n0 must be >= 2, got {self.n0}")
        if self.kernel <= 0.0:
            raise ConfigurationError(
                f"kernel must be > 0, got {self.kernel}")
        if not self.output_times or any(
                t <= 0 for t in self.output_times) or \
                list(self.output_times) != sorted(self.output_times):
            raise ConfigurationError(
                "output_times must be positive and increasing")
        if self.max_size < 1:
            raise ConfigurationError(
                f"max_size must be >= 1, got {self.max_size}")

    @property
    def shape(self) -> tuple[int, int]:
        """Realization matrix shape: (times, 1 + max_size)."""
        return (len(self.output_times), 1 + self.max_size)

    def exact_total(self, t: float) -> float:
        """Mean-field total cluster concentration ``N(t)``."""
        return 1.0 / (1.0 + self.kernel * t / 2.0)

    def exact_concentration(self, k: int, t: float) -> float:
        """Mean-field concentration ``c_k(t)`` of size-``k`` clusters."""
        if k < 1:
            raise ConfigurationError(f"cluster size must be >= 1, got {k}")
        total = self.exact_total(t)
        return total * total * (1.0 - total) ** (k - 1)

    def exact_matrix(self) -> np.ndarray:
        """The full oracle matrix matching :func:`simulate_coagulation`."""
        matrix = np.empty(self.shape)
        for row, t in enumerate(self.output_times):
            matrix[row, 0] = self.exact_total(t)
            for k in range(1, self.max_size + 1):
                matrix[row, k] = self.exact_concentration(k, t)
        return matrix


def simulate_coagulation(problem: CoagulationProblem,
                         rng: Lcg128) -> np.ndarray:
    """One Marcus–Lushnikov trajectory; returns the spectrum matrix.

    Gillespie direct method: with ``n`` clusters alive, the next
    coalescence happens after an Exp(K n(n-1) / (2 n0)) waiting time and
    merges a uniformly random unordered pair.  Consumes three base
    random numbers per event.
    """
    volume = float(problem.n0)
    sizes = [1] * problem.n0
    time = 0.0
    output = np.zeros(problem.shape)
    next_output = 0

    def record(row: int) -> None:
        counts = np.zeros(problem.max_size + 1)
        counts[0] = len(sizes)
        for size in sizes:
            if size <= problem.max_size:
                counts[size] += 1
        output[row] = counts / volume

    while next_output < len(problem.output_times):
        n = len(sizes)
        if n < 2:
            # Fully merged: the spectrum is frozen from here on.
            for row in range(next_output, len(problem.output_times)):
                record(row)
            break
        rate = problem.kernel * n * (n - 1) / (2.0 * volume)
        waiting = -math.log(rng.random()) / rate
        while (next_output < len(problem.output_times)
               and time + waiting > problem.output_times[next_output]):
            record(next_output)
            next_output += 1
        time += waiting
        # Choose an unordered pair (i < j) uniformly.
        i = int(rng.random() * n) % n
        j = int(rng.random() * (n - 1)) % (n - 1)
        if j >= i:
            j += 1
        merged = sizes[i] + sizes[j]
        first, second = (i, j) if i > j else (j, i)
        sizes.pop(first)
        sizes.pop(second)
        sizes.append(merged)
    return output


def make_realization(problem: CoagulationProblem
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization for the coagulation problem.

    Use with ``nrow=len(problem.output_times)``,
    ``ncol=1 + problem.max_size``; column 0 of the averaged matrix
    estimates ``N(t)`` and column ``k`` estimates ``c_k(t)``.
    """
    def realization(rng: Lcg128) -> np.ndarray:
        return simulate_coagulation(problem, rng)

    return realization
