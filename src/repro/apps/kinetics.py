"""Stochastic chemical kinetics — §2.1 lists "modeling the chemical
reactions" among the classic Monte Carlo applications.

Implements Gillespie's stochastic simulation algorithm (SSA, direct
method) for mass-action reaction networks.  A realization is one exact
trajectory of the chemical master equation, observed at fixed output
times; the realization matrix holds the copy number of every species at
every output time.

Two oracle networks ship with the module:

* :func:`isomerization` — ``A -> B`` with rate ``k``: ``E A(t) = A0
  exp(-k t)`` exactly (the master equation is linear).
* :func:`dimerization` — ``A + A -> C``: no elementary closed form, but
  mass conservation ``A + 2 C = A0`` holds pathwise and drives
  invariant tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["Reaction", "ReactionNetwork", "simulate_ssa",
           "make_realization", "isomerization", "dimerization",
           "predator_prey"]


@dataclass(frozen=True)
class Reaction:
    """One mass-action reaction channel.

    Attributes:
        reactants: Stoichiometry of consumed species (index -> count).
        products: Stoichiometry of produced species.
        rate: The stochastic rate constant ``c``.
        name: Label for diagnostics.
    """

    reactants: dict[int, int]
    products: dict[int, int]
    rate: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ConfigurationError(
                f"reaction rate must be > 0, got {self.rate}")
        for stoichiometry in (self.reactants, self.products):
            for species, count in stoichiometry.items():
                if species < 0 or count < 1:
                    raise ConfigurationError(
                        f"invalid stoichiometry entry {species}: {count}")
        if sum(self.reactants.values()) > 2:
            raise ConfigurationError(
                "mass-action propensities implemented up to second "
                "order (at most two reactant molecules)")

    def propensity(self, state: np.ndarray) -> float:
        """Mass-action propensity ``a(x)`` in the current state."""
        value = self.rate
        for species, count in self.reactants.items():
            copies = state[species]
            if count == 1:
                value *= copies
            else:  # count == 2: combinatorial pairs
                value *= copies * (copies - 1) / 2.0
        return float(value)

    def apply(self, state: np.ndarray) -> None:
        """Fire the reaction once, updating ``state`` in place."""
        for species, count in self.reactants.items():
            state[species] -= count
        for species, count in self.products.items():
            state[species] += count


@dataclass(frozen=True)
class ReactionNetwork:
    """A reaction system with initial copy numbers and an output grid.

    Attributes:
        species: Species names (defines the state vector order).
        initial: Initial copy numbers.
        reactions: The reaction channels.
        output_times: Increasing observation times.
    """

    species: tuple[str, ...]
    initial: tuple[int, ...]
    reactions: tuple[Reaction, ...]
    output_times: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.species) != len(self.initial):
            raise ConfigurationError(
                f"{len(self.species)} species but {len(self.initial)} "
                f"initial counts")
        if any(count < 0 for count in self.initial):
            raise ConfigurationError("initial counts must be >= 0")
        if not self.reactions:
            raise ConfigurationError("network needs at least one reaction")
        if not self.output_times or any(
                t <= 0 for t in self.output_times) or \
                list(self.output_times) != sorted(self.output_times):
            raise ConfigurationError(
                "output_times must be positive and increasing")
        n = len(self.species)
        for reaction in self.reactions:
            touched = set(reaction.reactants) | set(reaction.products)
            if any(index >= n for index in touched):
                raise ConfigurationError(
                    f"reaction {reaction.name!r} references a species "
                    f"index >= {n}")

    @property
    def shape(self) -> tuple[int, int]:
        """Realization matrix shape: (output times, species)."""
        return (len(self.output_times), len(self.species))


def simulate_ssa(network: ReactionNetwork, rng: Lcg128,
                 max_events: int = 1_000_000) -> np.ndarray:
    """One exact SSA trajectory observed at the network's output grid.

    Gillespie's direct method: waiting time Exp(a0), channel chosen
    with probability ``a_j / a0``.  Consumes two base random numbers
    per event.
    """
    state = np.array(network.initial, dtype=np.int64)
    time = 0.0
    output = np.zeros(network.shape)
    next_output = 0

    def record_until(limit_time: float) -> None:
        nonlocal next_output
        while (next_output < len(network.output_times)
               and network.output_times[next_output] < limit_time):
            output[next_output] = state
            next_output += 1

    for _ in range(max_events):
        propensities = [reaction.propensity(state)
                        for reaction in network.reactions]
        total = sum(propensities)
        if total <= 0.0:
            break  # system exhausted; state frozen
        waiting = -math.log(rng.random()) / total
        record_until(time + waiting)
        if next_output >= len(network.output_times):
            return output
        time += waiting
        target = rng.random() * total
        cumulative = 0.0
        for reaction, propensity in zip(network.reactions, propensities):
            cumulative += propensity
            if target < cumulative:
                reaction.apply(state)
                break
    # Exhausted (or hit the event cap): remaining outputs see the
    # frozen state.
    while next_output < len(network.output_times):
        output[next_output] = state
        next_output += 1
    return output


def make_realization(network: ReactionNetwork
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization for a reaction network.

    Use with ``nrow=len(network.output_times)``,
    ``ncol=len(network.species)``; the averaged matrix estimates the
    mean copy number of each species at each time.
    """
    def realization(rng: Lcg128) -> np.ndarray:
        return simulate_ssa(network, rng)

    return realization


def isomerization(a0: int = 200, rate: float = 1.0,
                  output_times: Sequence[float] = (0.5, 1.0, 2.0)
                  ) -> ReactionNetwork:
    """``A -> B``: the linear decay network with exact mean.

    ``E A(t) = a0 exp(-rate t)`` and ``E B(t) = a0 - E A(t)``.
    """
    return ReactionNetwork(
        species=("A", "B"),
        initial=(a0, 0),
        reactions=(Reaction({0: 1}, {1: 1}, rate, name="A->B"),),
        output_times=tuple(output_times))


def dimerization(a0: int = 100, rate: float = 0.01,
                 output_times: Sequence[float] = (0.5, 2.0, 8.0)
                 ) -> ReactionNetwork:
    """``A + A -> C``: second-order kinetics with pathwise conservation.

    The invariant ``A + 2 C = a0`` holds on every trajectory.
    """
    return ReactionNetwork(
        species=("A", "C"),
        initial=(a0, 0),
        reactions=(Reaction({0: 2}, {1: 1}, rate, name="A+A->C"),),
        output_times=tuple(output_times))


def predator_prey(prey: int = 50, predators: int = 20,
                  output_times: Sequence[float] = (1.0, 2.0, 4.0)
                  ) -> ReactionNetwork:
    """A stochastic Lotka–Volterra system (birth, predation, death).

    No closed form — included as a branchy, variable-cost realization
    for runtime stress tests (extinctions freeze trajectories early).
    """
    return ReactionNetwork(
        species=("prey", "predator"),
        initial=(prey, predators),
        reactions=(
            Reaction({0: 1}, {0: 2}, 1.0, name="prey birth"),
            Reaction({0: 1, 1: 1}, {1: 2}, 0.02, name="predation"),
            Reaction({1: 1}, {}, 1.0, name="predator death"),
        ),
        output_times=tuple(output_times))
