"""Queuing-theory workloads: M/M/1 and G/G/c/K queues (§2.1's field).

Two models:

* :class:`MM1Queue` — one busy day of a single-server queue with
  Poisson arrivals and exponential service; the mean waiting and
  sojourn times approach the steady-state formulas ``W_q = rho /
  (mu - lambda)`` and ``W = 1 / (mu - lambda)`` as the horizon grows.
* :class:`GGcKQueue` — ``c`` parallel servers, general interarrival
  and service samplers, and a capacity bound of ``K`` customers in the
  system (arrivals beyond it are *blocked*).  This is the shape of the
  library's own job :class:`~repro.runtime.scheduler.Scheduler`:
  arrivals are job submissions, the ``c`` servers are the shared
  worker slots, ``K`` is the ``max_jobs`` admission bound, waiting
  time is the submit-to-start SLA and the blocking fraction is the
  admission-rejection rate — so the scheduler's measured SLOs can be
  validated against their own Monte Carlo prediction (the test suite
  does exactly that).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.distributions import exponential
from repro.rng.lcg128 import Lcg128

__all__ = ["GGcKQueue", "MM1Queue", "simulate_day", "simulate_ggck",
           "make_realization", "make_ggck_realization"]


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue specification.

    Attributes:
        arrival_rate: Poisson arrival intensity ``lambda``.
        service_rate: Exponential service intensity ``mu``; stability
            requires ``mu > lambda``.
        customers: Number of customers per simulated day.
    """

    arrival_rate: float = 0.8
    service_rate: float = 1.0
    customers: int = 500

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or self.service_rate <= 0.0:
            raise ConfigurationError(
                "arrival and service rates must be > 0")
        if self.arrival_rate >= self.service_rate:
            raise ConfigurationError(
                f"unstable queue: arrival rate {self.arrival_rate} >= "
                f"service rate {self.service_rate}")
        if self.customers < 1:
            raise ConfigurationError(
                f"customers must be >= 1, got {self.customers}")

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    def steady_state_waiting(self) -> float:
        """``W_q = rho / (mu - lambda)`` — queueing delay only."""
        return self.utilization / (self.service_rate - self.arrival_rate)

    def steady_state_sojourn(self) -> float:
        """``W = 1 / (mu - lambda)`` — delay plus service."""
        return 1.0 / (self.service_rate - self.arrival_rate)


def simulate_day(queue: MM1Queue, rng: Lcg128) -> tuple[float, float]:
    """Lindley recursion over one day; return (mean wait, mean sojourn).

    Starts empty, so the finite-horizon means are biased low relative to
    steady state — the bias shrinks as ``customers`` grows, which the
    test suite checks quantitatively.
    """
    wait = 0.0
    total_wait = 0.0
    total_sojourn = 0.0
    for _ in range(queue.customers):
        interarrival = exponential(rng, queue.arrival_rate)
        service = exponential(rng, queue.service_rate)
        # Lindley: W_{n+1} = max(0, W_n + S_n - A_{n+1}).
        total_wait += wait
        total_sojourn += wait + service
        wait = max(0.0, wait + service - interarrival)
    return (total_wait / queue.customers,
            total_sojourn / queue.customers)


def make_realization(queue: MM1Queue
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization returning the 1x2 matrix (W_q, W)."""
    def realization(rng: Lcg128) -> np.ndarray:
        return np.array([simulate_day(queue, rng)])

    return realization


# ---------------------------------------------------------------------------
# G/G/c/K — the scheduler's own shape


@dataclass(frozen=True)
class GGcKQueue:
    """A G/G/c/K queue: ``c`` servers, capacity ``K``, general laws.

    Attributes:
        servers: Number of parallel servers ``c`` (the scheduler
            analogue: shared worker slots).
        capacity: Maximum customers *in the system* — in service plus
            waiting; an arrival finding ``K`` customers is blocked and
            lost (the scheduler analogue: the ``max_jobs`` admission
            bound).  Must be >= ``servers``.
        customers: Arrivals simulated per realization.
        interarrival: Sampler ``f(rng) -> seconds`` for the time
            between consecutive arrivals (the default models a rate-1
            Poisson stream).  ``lambda rng: 0.0`` models a batch that
            arrives all at once — exactly how a ``parmonc-sched`` queue
            file is submitted.
        service: Sampler ``f(rng) -> seconds`` for one customer's
            service demand (default: rate-1 exponential; for the
            scheduler analogy, a job's makespan on one worker).
    """

    servers: int = 1
    capacity: int = 1
    customers: int = 500
    interarrival: Callable[[Lcg128], float] = field(
        default=lambda rng: exponential(rng, 1.0))
    service: Callable[[Lcg128], float] = field(
        default=lambda rng: exponential(rng, 1.0))

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ConfigurationError(
                f"servers must be >= 1, got {self.servers}")
        if self.capacity < self.servers:
            raise ConfigurationError(
                f"capacity K must be >= servers c, got K="
                f"{self.capacity} < c={self.servers}")
        if self.customers < 1:
            raise ConfigurationError(
                f"customers must be >= 1, got {self.customers}")


def simulate_ggck(queue: GGcKQueue, rng: Lcg128
                  ) -> tuple[float, float, float]:
    """One day of a G/G/c/K queue.

    Returns:
        ``(mean_wait, blocked_fraction, mean_sojourn)`` — the mean
        waiting time of *admitted* customers, the fraction of arrivals
        blocked at capacity, and the admitted customers' mean sojourn
        (wait plus service).  Admitted customers left in the system
        when arrivals stop are drained to completion, so every admitted
        customer contributes to the means.
    """
    busy: list[float] = []       # departure times, a min-heap
    waiting: deque[float] = deque()   # arrival times of queued customers
    now = 0.0
    admitted = 0
    blocked = 0
    total_wait = 0.0
    total_sojourn = 0.0

    def start_service(arrival: float, start: float) -> None:
        nonlocal total_wait, total_sojourn, admitted
        demand = queue.service(rng)
        total_wait += start - arrival
        total_sojourn += (start - arrival) + demand
        admitted += 1
        heapq.heappush(busy, start + demand)

    for _ in range(queue.customers):
        now += queue.interarrival(rng)
        # Complete departures up to this arrival; freed servers pick
        # up the head of the queue at the moment they free.
        while busy and busy[0] <= now:
            freed = heapq.heappop(busy)
            if waiting:
                start_service(waiting.popleft(), freed)
        if len(busy) + len(waiting) >= queue.capacity:
            blocked += 1
            continue
        if len(busy) < queue.servers:
            start_service(now, now)
        else:
            waiting.append(now)
    while waiting:
        freed = heapq.heappop(busy)
        start_service(waiting.popleft(), freed)
    served = max(admitted, 1)
    return (total_wait / served, blocked / queue.customers,
            total_sojourn / served)


def make_ggck_realization(queue: GGcKQueue
                          ) -> Callable[[Lcg128], np.ndarray]:
    """A PARMONC realization: 1x3 matrix (W_q, P_block, W)."""
    def realization(rng: Lcg128) -> np.ndarray:
        return np.array([simulate_ggck(queue, rng)])

    return realization
