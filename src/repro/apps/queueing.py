"""Queuing-theory workload: an M/M/1 queue (§2.1 names the field).

A realization simulates one busy day of a single-server queue with
Poisson arrivals (rate ``arrival_rate``) and exponential service (rate
``service_rate``) and reports the mean waiting time and mean sojourn
time over the first ``customers`` customers.  Steady-state theory gives
``W_q = rho / (mu - lambda)`` and ``W = 1 / (mu - lambda)``, an
asymptotic oracle the estimators approach as the horizon grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.distributions import exponential
from repro.rng.lcg128 import Lcg128

__all__ = ["MM1Queue", "simulate_day", "make_realization"]


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue specification.

    Attributes:
        arrival_rate: Poisson arrival intensity ``lambda``.
        service_rate: Exponential service intensity ``mu``; stability
            requires ``mu > lambda``.
        customers: Number of customers per simulated day.
    """

    arrival_rate: float = 0.8
    service_rate: float = 1.0
    customers: int = 500

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or self.service_rate <= 0.0:
            raise ConfigurationError(
                "arrival and service rates must be > 0")
        if self.arrival_rate >= self.service_rate:
            raise ConfigurationError(
                f"unstable queue: arrival rate {self.arrival_rate} >= "
                f"service rate {self.service_rate}")
        if self.customers < 1:
            raise ConfigurationError(
                f"customers must be >= 1, got {self.customers}")

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    def steady_state_waiting(self) -> float:
        """``W_q = rho / (mu - lambda)`` — queueing delay only."""
        return self.utilization / (self.service_rate - self.arrival_rate)

    def steady_state_sojourn(self) -> float:
        """``W = 1 / (mu - lambda)`` — delay plus service."""
        return 1.0 / (self.service_rate - self.arrival_rate)


def simulate_day(queue: MM1Queue, rng: Lcg128) -> tuple[float, float]:
    """Lindley recursion over one day; return (mean wait, mean sojourn).

    Starts empty, so the finite-horizon means are biased low relative to
    steady state — the bias shrinks as ``customers`` grows, which the
    test suite checks quantitatively.
    """
    wait = 0.0
    total_wait = 0.0
    total_sojourn = 0.0
    for _ in range(queue.customers):
        interarrival = exponential(rng, queue.arrival_rate)
        service = exponential(rng, queue.service_rate)
        # Lindley: W_{n+1} = max(0, W_n + S_n - A_{n+1}).
        total_wait += wait
        total_sojourn += wait + service
        wait = max(0.0, wait + service - interarrival)
    return (total_wait / queue.customers,
            total_sojourn / queue.customers)


def make_realization(queue: MM1Queue
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization returning the 1x2 matrix (W_q, W)."""
    def realization(rng: Lcg128) -> np.ndarray:
        return np.array([simulate_day(queue, rng)])

    return realization
