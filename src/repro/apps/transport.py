"""A toy radiation-transfer workload (the field Monte Carlo grew up in).

Particles enter a 1-D slab of optical thickness ``depth`` with
exponential free paths; at each collision they are absorbed with
probability ``absorption`` or scattered isotropically (direction cosine
resampled uniformly on [-1, 1]).  The realization returns the triple
(transmitted, reflected, absorbed) as indicator values, so the sample
means estimate the three probabilities.

For pure absorption (``absorption = 1``) transmission has the closed
form ``exp(-depth)``, giving an exact oracle; with scattering the
estimator exercises a genuinely branchy, variable-cost realization —
the kind of workload the asynchronous PARMONC exchange is designed for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["SlabProblem", "simulate_particle", "make_realization"]


@dataclass(frozen=True)
class SlabProblem:
    """Transport through a homogeneous 1-D slab.

    Attributes:
        depth: Slab optical thickness (mean free paths).
        absorption: Absorption probability per collision, in [0, 1].
        max_collisions: Safety cap on collisions per history.
    """

    depth: float = 2.0
    absorption: float = 0.5
    max_collisions: int = 10_000

    def __post_init__(self) -> None:
        if self.depth <= 0.0:
            raise ConfigurationError(
                f"depth must be > 0, got {self.depth}")
        if not 0.0 <= self.absorption <= 1.0:
            raise ConfigurationError(
                f"absorption must be in [0, 1], got {self.absorption}")
        if self.max_collisions < 1:
            raise ConfigurationError(
                f"max_collisions must be >= 1, got {self.max_collisions}")

    def exact_transmission(self) -> float | None:
        """Closed-form transmission, available for pure absorption."""
        if self.absorption == 1.0:
            return math.exp(-self.depth)
        return None


def simulate_particle(problem: SlabProblem,
                      rng: Lcg128) -> tuple[float, float, float]:
    """Track one particle history; return (transmitted, reflected, absorbed).

    Exactly one of the three indicators is 1.0.  Histories exceeding the
    collision cap count as absorbed (they have forgotten their entry
    direction long since).
    """
    position = 0.0
    direction = 1.0  # direction cosine; enters travelling "right"
    for _ in range(problem.max_collisions):
        free_path = -math.log(rng.random())
        position += direction * free_path
        if position >= problem.depth:
            return (1.0, 0.0, 0.0)
        if position <= 0.0:
            return (0.0, 1.0, 0.0)
        if rng.random() < problem.absorption:
            return (0.0, 0.0, 1.0)
        # Isotropic scattering: fresh direction cosine on [-1, 1],
        # nudged off zero so the particle always makes progress.
        direction = 2.0 * rng.random() - 1.0
        if direction == 0.0:
            direction = 1e-12
    return (0.0, 0.0, 1.0)


def make_realization(problem: SlabProblem
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization returning the 1x3 indicator matrix.

    Use with ``nrow=1, ncol=3``; the averaged matrix is
    ``[P_transmit, P_reflect, P_absorb]``.
    """
    def realization(rng: Lcg128) -> np.ndarray:
        return np.array([simulate_particle(problem, rng)])

    return realization
