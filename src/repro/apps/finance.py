"""Financial-mathematics workload: option pricing under GBM (§2.1).

A realization draws one geometric-Brownian-motion terminal price and
returns the discounted payoff of a European call and put; the sample
means estimate the Black–Scholes prices, which this module also
computes in closed form as the oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as _scipy_stats

from repro.exceptions import ConfigurationError
from repro.rng.batch import BatchStreams
from repro.rng.distributions import normal
from repro.rng.lcg128 import Lcg128
from repro.runtime.worker import batch_routine

__all__ = ["EuropeanOption", "terminal_price", "make_realization",
           "make_batch_realization"]


@dataclass(frozen=True)
class EuropeanOption:
    """A European option under geometric Brownian motion.

    Attributes:
        spot: Current underlying price ``S_0``.
        strike: Strike ``K``.
        rate: Risk-free rate ``r``.
        volatility: Volatility ``sigma``.
        maturity: Time to expiry ``T`` in years.
    """

    spot: float = 100.0
    strike: float = 105.0
    rate: float = 0.03
    volatility: float = 0.2
    maturity: float = 1.0

    def __post_init__(self) -> None:
        if min(self.spot, self.strike, self.maturity) <= 0.0:
            raise ConfigurationError(
                "spot, strike and maturity must be > 0")
        if self.volatility <= 0.0:
            raise ConfigurationError(
                f"volatility must be > 0, got {self.volatility}")

    def black_scholes_call(self) -> float:
        """Closed-form call price — the Monte Carlo oracle."""
        d1 = (math.log(self.spot / self.strike)
              + (self.rate + 0.5 * self.volatility ** 2) * self.maturity) \
            / (self.volatility * math.sqrt(self.maturity))
        d2 = d1 - self.volatility * math.sqrt(self.maturity)
        discount = math.exp(-self.rate * self.maturity)
        return float(self.spot * _scipy_stats.norm.cdf(d1)
                     - self.strike * discount * _scipy_stats.norm.cdf(d2))

    def black_scholes_put(self) -> float:
        """Closed-form put price via put-call parity."""
        discount = math.exp(-self.rate * self.maturity)
        return (self.black_scholes_call()
                - self.spot + self.strike * discount)


def terminal_price(option: EuropeanOption, rng: Lcg128) -> float:
    """Draw one GBM terminal price ``S_T`` (exact lognormal sampling)."""
    z = normal(rng)
    drift = (option.rate - 0.5 * option.volatility ** 2) * option.maturity
    shock = option.volatility * math.sqrt(option.maturity) * z
    return option.spot * math.exp(drift + shock)


def make_realization(option: EuropeanOption
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization returning the 1x2 (call, put) payoffs.

    Both payoffs are computed from the *same* terminal price, so their
    estimates satisfy put-call parity to within Monte Carlo error.
    """
    discount = math.exp(-option.rate * option.maturity)

    def realization(rng: Lcg128) -> np.ndarray:
        price = terminal_price(option, rng)
        call = discount * max(price - option.strike, 0.0)
        put = discount * max(option.strike - price, 0.0)
        return np.array([[call, put]])

    return realization


def make_batch_realization(option: EuropeanOption,
                           batch_size: int = 256
                           ) -> Callable[[BatchStreams], np.ndarray]:
    """Build the batched (call, put) realization; a ``(B, 1, 2)`` block.

    Row ``i`` is bit-identical to :func:`make_realization` on the same
    substream.  The kernel vectorizes every operation whose numpy ufunc
    reproduces libm exactly (sqrt, cos, the GBM arithmetic); ``log`` and
    ``exp`` stay in scalar loops because numpy's SIMD variants differ
    from ``math.log``/``math.exp`` in the last bit on some platforms.
    """
    drift = (option.rate - 0.5 * option.volatility ** 2) * option.maturity
    scale = option.volatility * math.sqrt(option.maturity)
    discount = math.exp(-option.rate * option.maturity)
    strike = option.strike
    spot = option.spot

    @batch_routine(batch_size)
    def realization(streams: BatchStreams) -> np.ndarray:
        uniforms = streams.uniforms(2)
        log_u1 = np.array([math.log(u) for u in uniforms[:, 0].tolist()])
        radius = np.sqrt(-2.0 * log_u1)
        angle = 2.0 * math.pi * uniforms[:, 1]
        z = radius * np.cos(angle)
        shock = scale * z
        prices = np.array([spot * math.exp(drift + s)
                           for s in shock.tolist()])
        calls = discount * np.maximum(prices - strike, 0.0)
        puts = discount * np.maximum(strike - prices, 0.0)
        return np.stack((calls, puts), axis=1)[:, np.newaxis, :]

    return realization
