"""Statistical-physics workload: Metropolis sampling of the 2-D Ising model.

Section 2.1 cites "the Metropolis method, the Ising model" among the
classic Monte Carlo application areas.  A realization here is one
*independent replica*: a random initial lattice, ``equilibration``
Metropolis sweeps, then ``measurement`` sweeps over which the absolute
magnetization and energy per site are averaged.  Independent replicas
fit PARMONC's independent-realization model directly (unlike a single
long Markov chain).

Onsager's exact result puts the critical temperature at
``T_c = 2 / ln(1 + sqrt(2)) ≈ 2.269``; below it the mean |m| approaches
the spontaneous magnetization, far above it |m| decays toward 0 —
behaviour the test suite checks on small lattices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["IsingModel", "CRITICAL_TEMPERATURE", "simulate_replica",
           "make_realization"]

#: Onsager's critical temperature for the square-lattice Ising model.
CRITICAL_TEMPERATURE = 2.0 / math.log(1.0 + math.sqrt(2.0))


@dataclass(frozen=True)
class IsingModel:
    """A ferromagnetic Ising model on a periodic square lattice.

    Attributes:
        size: Lattice side length ``n`` (``n*n`` spins).
        temperature: Temperature in units of the coupling ``J/k_B``.
        equilibration: Metropolis sweeps discarded before measuring.
        measurement: Sweeps averaged into the observables.
    """

    size: int = 16
    temperature: float = 2.0
    equilibration: int = 200
    measurement: int = 100

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ConfigurationError(
                f"lattice size must be >= 2, got {self.size}")
        if self.temperature <= 0.0:
            raise ConfigurationError(
                f"temperature must be > 0, got {self.temperature}")
        if self.equilibration < 0 or self.measurement < 1:
            raise ConfigurationError(
                "need equilibration >= 0 and measurement >= 1 sweeps")

    def spontaneous_magnetization(self) -> float:
        """Onsager's exact |m| below T_c (0 above)."""
        if self.temperature >= CRITICAL_TEMPERATURE:
            return 0.0
        argument = 1.0 - math.sinh(2.0 / self.temperature) ** -4
        return argument ** 0.125


def _sweep(spins: np.ndarray, temperature: float, rng: Lcg128) -> None:
    """One Metropolis sweep: n*n random single-spin-flip attempts."""
    n = spins.shape[0]
    # Precomputed acceptance ratios for the five possible local fields.
    acceptance = {delta: math.exp(-delta / temperature)
                  for delta in (4.0, 8.0)}
    for _ in range(n * n):
        i = int(rng.random() * n) % n
        j = int(rng.random() * n) % n
        neighbours = (spins[(i + 1) % n, j] + spins[(i - 1) % n, j]
                      + spins[i, (j + 1) % n] + spins[i, (j - 1) % n])
        delta = 2.0 * spins[i, j] * neighbours
        if delta <= 0.0 or rng.random() < acceptance[delta]:
            spins[i, j] = -spins[i, j]


def _observables(spins: np.ndarray) -> tuple[float, float]:
    """Return (|magnetization|, energy) per site."""
    n = spins.shape[0]
    magnetization = abs(float(spins.sum())) / (n * n)
    energy = -float(np.sum(spins * (np.roll(spins, 1, axis=0)
                                    + np.roll(spins, 1, axis=1)))) / (n * n)
    return magnetization, energy


def simulate_replica(model: IsingModel, rng: Lcg128) -> tuple[float, float]:
    """One independent replica; return mean (|m|, E) per site.

    The initial lattice is drawn hot (random spins) from the replica's
    own RNG substream, so replicas are exactly independent.
    """
    n = model.size
    spins = np.where(
        np.array([rng.random() for _ in range(n * n)]).reshape(n, n) < 0.5,
        -1.0, 1.0)
    for _ in range(model.equilibration):
        _sweep(spins, model.temperature, rng)
    total_m = 0.0
    total_e = 0.0
    for _ in range(model.measurement):
        _sweep(spins, model.temperature, rng)
        magnetization, energy = _observables(spins)
        total_m += magnetization
        total_e += energy
    return total_m / model.measurement, total_e / model.measurement


def make_realization(model: IsingModel
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization returning the 1x2 matrix (|m|, E)."""
    def realization(rng: Lcg128) -> np.ndarray:
        return np.array([simulate_replica(model, rng)])

    return realization
