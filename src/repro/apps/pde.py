"""Monte Carlo for PDEs: walk-on-spheres for the Laplace equation.

Section 2.1 opens with the "theory of stochastic representations for
solutions to equations of mathematical physics" — the Feynman–Kac
family.  The simplest member: the solution of the Dirichlet problem

    Laplace u = 0 in D,    u = g on the boundary of D,

is ``u(x) = E[g(B_exit)]`` for Brownian motion started at ``x``.  The
walk-on-spheres (WoS) method samples the exit point without simulating
paths: from the current point, jump to a uniformly random point of the
largest sphere inside the domain; repeat until within ``epsilon`` of
the boundary; project and evaluate ``g``.  Each jump consumes one base
random number (2-D: a uniform angle), making realizations cheap and
stream-pure.

The bundled domain is the unit disk, where harmonic polynomials
``r^n cos(n theta)`` give exact solutions at every interior point —
the accuracy oracle used by the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["DirichletDisk", "walk_on_spheres", "make_realization",
           "harmonic_polynomial"]


def harmonic_polynomial(degree: int) -> Callable[[float, float], float]:
    """The harmonic function ``Re((x + iy)^n) = r^n cos(n theta)``.

    Returns a boundary-data callable ``g(x, y)``; the exact solution of
    the disk Dirichlet problem with this data is the same expression
    evaluated at the interior point.
    """
    if degree < 0:
        raise ConfigurationError(f"degree must be >= 0, got {degree}")

    def g(x: float, y: float) -> float:
        return float(np.real((x + 1j * y) ** degree))

    return g


@dataclass(frozen=True)
class DirichletDisk:
    """The Dirichlet problem on the unit disk.

    Attributes:
        boundary: Boundary data ``g(x, y)`` evaluated on the unit
            circle.
        points: Interior evaluation points, shape ``(k, 2)``, all
            strictly inside the disk.
        epsilon: WoS absorption layer width.
        max_steps: Safety cap on jumps per walk.
    """

    boundary: Callable[[float, float], float]
    points: tuple[tuple[float, float], ...]
    epsilon: float = 1e-4
    max_steps: int = 10_000

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("need at least one interior point")
        for x, y in self.points:
            if math.hypot(x, y) >= 1.0:
                raise ConfigurationError(
                    f"point ({x}, {y}) is not strictly inside the unit "
                    f"disk")
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.max_steps < 1:
            raise ConfigurationError(
                f"max_steps must be >= 1, got {self.max_steps}")

    @property
    def shape(self) -> tuple[int, int]:
        """Realization matrix shape: (points, 1)."""
        return (len(self.points), 1)

    def exact_for(self, solution: Callable[[float, float], float]
                  ) -> np.ndarray:
        """Evaluate a known solution at the interior points."""
        return np.array([[solution(x, y)] for x, y in self.points])


def walk_on_spheres(problem: DirichletDisk, x: float, y: float,
                    rng: Lcg128) -> float:
    """One WoS walk from ``(x, y)``; returns ``g`` at the exit point.

    In the disk, the largest inscribed sphere at radius ``r`` from the
    centre has radius ``1 - r``; the walk jumps to a uniform angle on
    it.  Within ``epsilon`` of the circle the point is projected onto
    the boundary.
    """
    for _ in range(problem.max_steps):
        radius = math.hypot(x, y)
        distance = 1.0 - radius
        if distance <= problem.epsilon:
            if radius == 0.0:
                return problem.boundary(1.0, 0.0)
            return problem.boundary(x / radius, y / radius)
        angle = 2.0 * math.pi * rng.random()
        x += distance * math.cos(angle)
        y += distance * math.sin(angle)
    # The cap is astronomically unlikely to bind (the walk exits in
    # O(log 1/epsilon) steps in expectation); project and evaluate.
    radius = math.hypot(x, y)
    return problem.boundary(x / radius, y / radius)


def make_realization(problem: DirichletDisk
                     ) -> Callable[[Lcg128], np.ndarray]:
    """Build a PARMONC realization: one walk per interior point.

    Use with ``nrow=len(problem.points), ncol=1``; the averaged matrix
    estimates ``u`` at every requested point simultaneously.
    """
    def realization(rng: Lcg128) -> np.ndarray:
        return np.array([[walk_on_spheres(problem, x, y, rng)]
                         for x, y in problem.points])

    return realization
