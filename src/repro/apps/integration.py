"""Monte Carlo integration workloads.

The bread-and-butter PARMONC use case: a realization is one evaluation
of the integrand at a uniform point of the domain, so the sample mean
estimates the integral.  Problems with known closed forms serve as
accuracy oracles across the test and benchmark suites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.batch import BatchStreams
from repro.rng.lcg128 import Lcg128
from repro.runtime.worker import batch_routine

__all__ = [
    "IntegrationProblem",
    "unit_square_quarter_circle",
    "product_of_powers",
    "oscillatory_genz",
    "exponential_peak",
    "make_realization",
    "make_batch_realization",
]


@dataclass(frozen=True)
class IntegrationProblem:
    """A definite integral over an axis-aligned box.

    Attributes:
        integrand: Callable ``f(x) -> float`` with ``x`` a point array of
            shape ``(dim,)``.
        lower: Box lower corner, shape ``(dim,)``.
        upper: Box upper corner, shape ``(dim,)``.
        exact: Known value of the integral (the test oracle); None when
            no closed form exists.
        name: Human-readable label.
        batch_integrand: Optional vectorized twin ``f(points) -> values``
            mapping a ``(B, dim)`` point block to ``B`` values,
            bit-identical to ``integrand`` applied row by row.  When
            None, the batched realization falls back to looping the
            scalar integrand (still saving the stream-placement cost).
    """

    integrand: Callable[[np.ndarray], float]
    lower: np.ndarray
    upper: np.ndarray
    exact: float | None = None
    name: str = "integral"
    batch_integrand: Callable[[np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        lower = np.atleast_1d(np.asarray(self.lower, dtype=np.float64))
        upper = np.atleast_1d(np.asarray(self.upper, dtype=np.float64))
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ConfigurationError(
                f"bounds must be equal-length vectors, got {lower.shape} "
                f"and {upper.shape}")
        if np.any(upper <= lower):
            raise ConfigurationError(
                "every upper bound must exceed its lower bound")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @property
    def dimension(self) -> int:
        """Dimension of the integration domain."""
        return self.lower.size

    @property
    def volume(self) -> float:
        """Volume of the box."""
        return float(np.prod(self.upper - self.lower))

    def sample_point(self, rng: Lcg128) -> np.ndarray:
        """Draw a uniform point of the box, one uniform per coordinate."""
        uniforms = np.array([rng.random() for _ in range(self.dimension)])
        return self.lower + (self.upper - self.lower) * uniforms

    def sample_points(self, streams: BatchStreams) -> np.ndarray:
        """Draw one uniform point per stream; a ``(B, dim)`` block.

        Row ``i`` is bit-identical to :meth:`sample_point` on a scalar
        generator at stream ``i``'s position — same draws, same
        arithmetic, just broadcast over the block.
        """
        uniforms = streams.uniforms(self.dimension)
        return self.lower + (self.upper - self.lower) * uniforms


def make_realization(problem: IntegrationProblem
                     ) -> Callable[[Lcg128], float]:
    """Build the PARMONC realization routine for an integration problem.

    The returned routine's expectation is exactly the integral value.
    """
    def realization(rng: Lcg128) -> float:
        point = problem.sample_point(rng)
        return problem.integrand(point) * problem.volume

    return realization


def make_batch_realization(problem: IntegrationProblem,
                           batch_size: int = 256
                           ) -> Callable[[BatchStreams], np.ndarray]:
    """Build the batched realization routine for an integration problem.

    The returned routine carries ``batch_size`` (see
    :func:`repro.runtime.worker.batch_routine`), so the worker runs it
    on whole blocks of realization substreams.  Values are bit-identical
    to :func:`make_realization`'s: problems with a ``batch_integrand``
    evaluate it on the ``(B, dim)`` point block, the rest loop the
    scalar integrand over the rows.
    """
    volume = problem.volume

    @batch_routine(batch_size)
    def realization(streams: BatchStreams) -> np.ndarray:
        points = problem.sample_points(streams)
        if problem.batch_integrand is not None:
            values = np.asarray(problem.batch_integrand(points),
                                dtype=np.float64)
        else:
            values = np.array([problem.integrand(point)
                               for point in points], dtype=np.float64)
        return values * volume

    return realization


def unit_square_quarter_circle() -> IntegrationProblem:
    """Indicator of the quarter disc in the unit square; exact pi/4.

    The classic "estimate pi" workload of every Monte Carlo quickstart.
    """
    return IntegrationProblem(
        integrand=lambda x: 1.0 if x[0] * x[0] + x[1] * x[1] <= 1.0 else 0.0,
        lower=np.zeros(2), upper=np.ones(2),
        exact=math.pi / 4.0,
        name="quarter circle indicator",
        batch_integrand=lambda p: (
            p[:, 0] * p[:, 0] + p[:, 1] * p[:, 1] <= 1.0
        ).astype(np.float64))


def product_of_powers(exponents: Sequence[int] = (1, 2, 3)
                      ) -> IntegrationProblem:
    """``integral over [0,1]^d of prod x_k^{p_k}``; exact ``prod 1/(p_k+1)``.

    A smooth separable integrand whose exact value is trivially
    computable for any dimension.
    """
    powers = tuple(int(p) for p in exponents)
    if any(p < 0 for p in powers):
        raise ConfigurationError(
            f"exponents must be non-negative, got {powers}")
    exact = 1.0
    for p in powers:
        exact /= (p + 1)
    return IntegrationProblem(
        integrand=lambda x: float(np.prod(x ** np.array(powers))),
        lower=np.zeros(len(powers)), upper=np.ones(len(powers)),
        exact=exact,
        name=f"product of powers {powers}",
        batch_integrand=lambda p: np.prod(p ** np.array(powers), axis=1))


def oscillatory_genz(frequencies: Sequence[float] = (1.0, 2.0),
                     offset: float = 0.3) -> IntegrationProblem:
    """Genz "oscillatory" family: ``cos(2 pi u + sum a_k x_k)`` on [0,1]^d.

    The closed form follows by iterated integration of the cosine; a
    standard high-dimensional quadrature stress test.
    """
    a = np.asarray(frequencies, dtype=np.float64)
    if a.ndim != 1 or a.size == 0 or np.any(a == 0.0):
        raise ConfigurationError(
            "frequencies must be a non-empty vector of nonzero values")
    # Exact: integrating cos(c + sum a_k x_k) over the cube multiplies by
    # (sin shifted differences); use the product formula via complex
    # exponentials: Re[e^{i c} prod (e^{i a_k} - 1)/(i a_k)].
    phase = 2.0 * math.pi * offset
    product = np.prod((np.exp(1j * a) - 1.0) / (1j * a))
    exact = float(np.real(np.exp(1j * phase) * product))
    return IntegrationProblem(
        integrand=lambda x: math.cos(phase + float(np.dot(a, x))),
        lower=np.zeros(a.size), upper=np.ones(a.size),
        exact=exact,
        name=f"Genz oscillatory dim={a.size}")


def exponential_peak(rate: float = 2.0) -> IntegrationProblem:
    """``integral_0^1 rate * exp(-rate x) dx``; exact ``1 - exp(-rate)``.

    A peaked 1-D integrand exercising variance larger than the smooth
    cases.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    return IntegrationProblem(
        integrand=lambda x: rate * math.exp(-rate * float(x[0])),
        lower=np.zeros(1), upper=np.ones(1),
        exact=1.0 - math.exp(-rate),
        name=f"exponential peak rate={rate}")
