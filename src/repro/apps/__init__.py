"""Bundled Monte Carlo applications.

One module per application area the paper names: SDE trajectories (the
§4 performance test), plain integration, radiation transfer, statistical
physics (Ising/Metropolis), population biology (branching processes),
queueing theory (M/M/1) and financial mathematics (option pricing).
Each module exposes problem dataclasses with analytic oracles and a
``make_realization`` factory producing a routine for :func:`repro.parmonc`.
"""

from __future__ import annotations

from repro.apps import (
    coagulation,
    kinetics,
    pde,
    finance,
    integration,
    ising,
    population,
    queueing,
    sde,
    transport,
)

__all__ = [
    "sde",
    "integration",
    "transport",
    "ising",
    "population",
    "queueing",
    "finance",
    "coagulation",
    "kinetics",
    "pde",
]
