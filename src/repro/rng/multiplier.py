"""Multipliers and leap parameters of the PARMONC parallel generator.

The base generator (paper formula (6)) is the multiplicative congruential
generator

    u_0 = 1,   u_{k+1} = u_k * A  (mod 2**r),   alpha_k = u_k * 2**-r

with ``r = 128`` and ``A = 5**101 (mod 2**128)`` (the Dyadkin–Hamilton
multiplier).  Its period is ``2**(r-2) = 2**126`` (formula (7)); PARMONC
recommends consuming only the first half, i.e. the first ``2**125``
numbers.

Independent streams are obtained by "leaps" (formula (8)): the stream
starting ``n`` steps ahead of state ``u`` has initial state
``u * A(n) (mod 2**128)`` where ``A(n) = A**n (mod 2**128)``.  PARMONC
uses a three-level hierarchy of leaps — experiments, processors,
realizations — whose default lengths are powers of two recovered here
from the paper's capacity arithmetic (section 2.4):

    n_e = 2**115  ->  2**125 / 2**115 = 2**10  experiments,
    n_p = 2**98   ->  2**115 / 2**98  = 2**17  processors/experiment,
    n_r = 2**43   ->  2**98  / 2**43  = 2**55  realizations/processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "MODULUS_BITS",
    "MODULUS",
    "STATE_MASK",
    "BASE_MULTIPLIER",
    "PERIOD",
    "RECOMMENDED_LIMIT",
    "DEFAULT_EXPERIMENT_EXPONENT",
    "DEFAULT_PROCESSOR_EXPONENT",
    "DEFAULT_REALIZATION_EXPONENT",
    "jump_multiplier",
    "jump_multiplier_pow2",
    "LeapSet",
    "DEFAULT_LEAPS",
]

#: Word size ``r`` of the congruential generator.
MODULUS_BITS = 128

#: The modulus ``2**r``.
MODULUS = 1 << MODULUS_BITS

#: Bit mask equivalent to reduction modulo :data:`MODULUS`.
STATE_MASK = MODULUS - 1

#: The Dyadkin–Hamilton multiplier ``A = 5**101 (mod 2**128)``.
BASE_MULTIPLIER = pow(5, 101, MODULUS)

#: Full period of the generator, ``2**(r-2)``.
PERIOD = 1 << (MODULUS_BITS - 2)

#: Only the first half of the period is recommended for use.
RECOMMENDED_LIMIT = PERIOD // 2

#: Default leap exponent for "experiments" subsequences (``n_e = 2**115``).
DEFAULT_EXPERIMENT_EXPONENT = 115

#: Default leap exponent for "processors" subsequences (``n_p = 2**98``).
DEFAULT_PROCESSOR_EXPONENT = 98

#: Default leap exponent for "realizations" subsequences (``n_r = 2**43``).
DEFAULT_REALIZATION_EXPONENT = 43


def jump_multiplier(leap_length: int, base: int = BASE_MULTIPLIER) -> int:
    """Return ``A(n) = base**n (mod 2**128)`` for a leap of ``n`` steps.

    Multiplying a generator state by ``A(n)`` advances the stream by
    exactly ``n`` draws, which is how PARMONC carves disjoint
    subsequences out of the general sequence.

    Args:
        leap_length: The leap ``n``; must be non-negative.
        base: The one-step multiplier, by default :data:`BASE_MULTIPLIER`.

    Raises:
        ConfigurationError: If ``leap_length`` is negative or ``base``
            is even (an even multiplier collapses the state to zero).
    """
    if leap_length < 0:
        raise ConfigurationError(
            f"leap length must be non-negative, got {leap_length}")
    if base % 2 == 0:
        raise ConfigurationError(
            f"multiplier must be odd for a 2**{MODULUS_BITS} modulus, "
            f"got an even value")
    return pow(base, leap_length, MODULUS)


def jump_multiplier_pow2(exponent: int, base: int = BASE_MULTIPLIER) -> int:
    """Return ``A(2**exponent)``, the jump multiplier for a power-of-two leap.

    This is the quantity the ``genparam`` utility computes (section 3.5):
    its command-line arguments are exponents of two.
    """
    if exponent < 0:
        raise ConfigurationError(
            f"leap exponent must be non-negative, got {exponent}")
    if exponent >= 4 * MODULUS_BITS:
        # pow() would handle it, but leaps beyond the period are a user
        # error: the subsequence would wrap the whole generator orbit.
        raise ConfigurationError(
            f"leap exponent {exponent} exceeds any sensible value for a "
            f"period-2**{MODULUS_BITS - 2} generator")
    return jump_multiplier(1 << exponent, base)


@dataclass(frozen=True)
class LeapSet:
    """The three leap exponents of the PARMONC subsequence hierarchy.

    The hierarchy requires strictly decreasing leap lengths
    ``n_e > n_p > n_r`` so that "processors" subsequences nest inside an
    "experiments" subsequence and "realizations" subsequences nest inside
    a "processors" subsequence.

    Attributes:
        experiment_exponent: ``log2(n_e)``.
        processor_exponent: ``log2(n_p)``.
        realization_exponent: ``log2(n_r)``.
    """

    experiment_exponent: int = DEFAULT_EXPERIMENT_EXPONENT
    processor_exponent: int = DEFAULT_PROCESSOR_EXPONENT
    realization_exponent: int = DEFAULT_REALIZATION_EXPONENT

    def __post_init__(self) -> None:
        exponents = (self.experiment_exponent, self.processor_exponent,
                     self.realization_exponent)
        for value in exponents:
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"leap exponents must be non-negative integers, "
                    f"got {exponents}")
        if not (self.experiment_exponent > self.processor_exponent
                > self.realization_exponent):
            raise ConfigurationError(
                "leap exponents must be strictly decreasing "
                f"(n_e > n_p > n_r), got {exponents}")
        if self.experiment_exponent >= MODULUS_BITS - 2:
            raise ConfigurationError(
                f"experiment leap 2**{self.experiment_exponent} is not "
                f"smaller than the generator period 2**{MODULUS_BITS - 2}")

    @property
    def experiment_leap(self) -> int:
        """Leap length ``n_e`` between consecutive experiments."""
        return 1 << self.experiment_exponent

    @property
    def processor_leap(self) -> int:
        """Leap length ``n_p`` between consecutive processors."""
        return 1 << self.processor_exponent

    @property
    def realization_leap(self) -> int:
        """Leap length ``n_r`` between consecutive realizations."""
        return 1 << self.realization_exponent

    @property
    def experiment_capacity(self) -> int:
        """Number of disjoint experiments in the recommended half-period."""
        return 1 << (MODULUS_BITS - 3 - self.experiment_exponent)

    @property
    def processor_capacity(self) -> int:
        """Number of disjoint processor streams per experiment."""
        return 1 << (self.experiment_exponent - self.processor_exponent)

    @property
    def realization_capacity(self) -> int:
        """Number of disjoint realization streams per processor."""
        return 1 << (self.processor_exponent - self.realization_exponent)

    def multipliers(self, base: int = BASE_MULTIPLIER) -> tuple[int, int, int]:
        """Return ``(A(n_e), A(n_p), A(n_r))`` for this leap set."""
        return (
            jump_multiplier_pow2(self.experiment_exponent, base),
            jump_multiplier_pow2(self.processor_exponent, base),
            jump_multiplier_pow2(self.realization_exponent, base),
        )


#: The PARMONC default hierarchy: ``n_e = 2**115``, ``n_p = 2**98``,
#: ``n_r = 2**43``.
DEFAULT_LEAPS = LeapSet()
