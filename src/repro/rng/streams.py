"""The PARMONC hierarchy of embedded subsequences.

Section 2.4 of the paper divides the general sequence ``{alpha_k}`` into
nested subsequences::

    general sequence        superset of  "experiments"  subsequences
    "experiments"  subseq.  superset of  "processors"   subsequences
    "processors"   subseq.  superset of  "realizations" subsequences

A stream is addressed by coordinates ``(experiment, processor,
realization)``; its head state is

    u = A(n_e)**experiment * A(n_p)**processor * A(n_r)**realization
        (mod 2**128)

starting from ``u_0 = 1``.  PARMONC assigns the experiment index from the
user's ``seqnum`` argument, the processor index from the MPI rank, and
the realization index from the per-processor realization counter; this
module is the single place where that arithmetic lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CapacityError, ConfigurationError
from repro.rng.batch import BatchStreams
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    DEFAULT_LEAPS,
    LeapSet,
    MODULUS,
    STATE_MASK,
)
from repro.rng.vectorized import (
    geometric_limbs,
    int_to_limbs,
    limbs_to_int,
    mul_mod_2_128,
)

__all__ = ["StreamCoordinates", "StreamTree", "ExperimentStream",
           "ProcessorStream"]


@dataclass(frozen=True, order=True)
class StreamCoordinates:
    """Address of a realization stream inside the subsequence hierarchy."""

    experiment: int
    processor: int
    realization: int

    def __post_init__(self) -> None:
        for name in ("experiment", "processor", "realization"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"{name} index must be a non-negative integer, "
                    f"got {value!r}")


class StreamTree:
    """Factory of independent generator streams for a leap hierarchy.

    Args:
        leaps: The leap exponents; defaults to the PARMONC defaults
            (``n_e = 2**115``, ``n_p = 2**98``, ``n_r = 2**43``).
        base_multiplier: One-step multiplier ``A`` of the underlying
            generator.
        strict: When true (the default), stream indices are checked
            against the hierarchy capacities and out-of-range indices
            raise :class:`~repro.exceptions.CapacityError`.  Disabling
            the check reproduces the raw modular arithmetic, in which
            oversized indices silently alias other streams.

    Example:
        >>> tree = StreamTree()
        >>> rng = tree.rng(experiment=2, processor=0, realization=0)
        >>> 0.0 < rng.random() < 1.0
        True
    """

    def __init__(self, leaps: LeapSet = DEFAULT_LEAPS,
                 base_multiplier: int = BASE_MULTIPLIER,
                 strict: bool = True) -> None:
        if base_multiplier % 2 == 0:
            raise ConfigurationError("base multiplier must be odd")
        self._leaps = leaps
        self._base = base_multiplier & STATE_MASK
        self._strict = strict
        jump_e, jump_p, jump_r = leaps.multipliers(self._base)
        self._jump_experiment = jump_e
        self._jump_processor = jump_p
        self._jump_realization = jump_r

    # ------------------------------------------------------------------

    @property
    def leaps(self) -> LeapSet:
        """The leap exponents of this hierarchy."""
        return self._leaps

    @property
    def base_multiplier(self) -> int:
        """The one-step multiplier of the underlying generator."""
        return self._base

    @property
    def jump_multipliers(self) -> tuple[int, int, int]:
        """``(A(n_e), A(n_p), A(n_r))`` — what ``genparam`` prints."""
        return (self._jump_experiment, self._jump_processor,
                self._jump_realization)

    def __repr__(self) -> str:
        return (f"StreamTree(leaps=2**({self._leaps.experiment_exponent}, "
                f"{self._leaps.processor_exponent}, "
                f"{self._leaps.realization_exponent}))")

    # ------------------------------------------------------------------

    def _check(self, name: str, index: int, capacity: int) -> None:
        if index < 0:
            raise ConfigurationError(
                f"{name} index must be >= 0, got {index}")
        if self._strict and index >= capacity:
            raise CapacityError(
                f"{name} index {index} exceeds hierarchy capacity "
                f"{capacity}; a larger index would alias another stream")

    def head_state(self, coords: StreamCoordinates) -> int:
        """Return the 128-bit head state for ``coords``."""
        self._check("experiment", coords.experiment,
                    self._leaps.experiment_capacity)
        self._check("processor", coords.processor,
                    self._leaps.processor_capacity)
        self._check("realization", coords.realization,
                    self._leaps.realization_capacity)
        state = pow(self._jump_experiment, coords.experiment, MODULUS)
        state = (state * pow(self._jump_processor, coords.processor,
                             MODULUS)) % MODULUS
        state = (state * pow(self._jump_realization, coords.realization,
                             MODULUS)) % MODULUS
        return state

    def rng(self, experiment: int = 0, processor: int = 0,
            realization: int = 0) -> Lcg128:
        """Return a fresh generator at the given hierarchy coordinates."""
        coords = StreamCoordinates(experiment, processor, realization)
        return Lcg128(self.head_state(coords), self._base)

    def experiment(self, index: int) -> "ExperimentStream":
        """Return a handle on the ``index``-th experiment subsequence."""
        self._check("experiment", index, self._leaps.experiment_capacity)
        return ExperimentStream(self, index)


class ExperimentStream:
    """One "experiments" subsequence; spawns processor streams.

    Obtained from :meth:`StreamTree.experiment`; corresponds to one value
    of the PARMONC ``seqnum`` argument.
    """

    def __init__(self, tree: StreamTree, index: int) -> None:
        self._tree = tree
        self._index = index

    @property
    def index(self) -> int:
        """The experiment (``seqnum``) index."""
        return self._index

    @property
    def tree(self) -> StreamTree:
        """The owning hierarchy."""
        return self._tree

    def processor(self, index: int) -> "ProcessorStream":
        """Return a handle on the ``index``-th processor subsequence."""
        self._tree._check("processor", index,
                          self._tree.leaps.processor_capacity)
        return ProcessorStream(self._tree, self._index, index)

    def __repr__(self) -> str:
        return f"ExperimentStream(index={self._index})"


class ProcessorStream:
    """One "processors" subsequence; spawns realization generators.

    Corresponds to one MPI rank in the original library.  The
    :meth:`realization` method is what a worker calls before simulating
    each realization, guaranteeing that every realization consumes base
    random numbers from its own disjoint subsequence.
    """

    def __init__(self, tree: StreamTree, experiment: int,
                 processor: int) -> None:
        self._tree = tree
        self._experiment = experiment
        self._processor = processor
        jump_e, jump_p, jump_r = tree.jump_multipliers
        # The experiment/processor part of every head state is constant
        # for this stream; computing it once turns per-realization
        # placement from three modular exponentiations into (at most)
        # one multiplication.
        self._prefix = (pow(jump_e, experiment, MODULUS)
                        * pow(jump_p, processor, MODULUS)) % MODULUS
        self._jump_realization = jump_r
        self._cached_index: int | None = None
        self._cached_head = 0
        # Last head block produced by realization_heads, for the batched
        # worker loop: the next consecutive block follows from one
        # vectorized multiply by A(n_r)**len(block).
        self._block_heads: np.ndarray | None = None
        self._block_start = 0
        self._block_jump: np.ndarray | None = None

    @property
    def experiment(self) -> int:
        """The experiment index of this processor stream."""
        return self._experiment

    @property
    def processor(self) -> int:
        """The processor (rank) index."""
        return self._processor

    @property
    def realization_capacity(self) -> int:
        """How many disjoint realization streams this processor offers."""
        return self._tree.leaps.realization_capacity

    def _check_realization(self, index: int) -> None:
        if not isinstance(index, int) or index < 0:
            raise ConfigurationError(
                f"realization index must be a non-negative integer, "
                f"got {index!r}")
        self._tree._check("realization", index,
                          self._tree.leaps.realization_capacity)

    def _head(self, index: int) -> int:
        """Head state ``prefix * A(n_r)**index``, advanced incrementally.

        Sequential access — the worker loop's pattern — costs one
        modular multiplication per call; only a jump to an arbitrary
        index falls back to a modular exponentiation.
        """
        if index == self._cached_index:
            return self._cached_head
        if self._cached_index is not None and index == self._cached_index + 1:
            head = (self._cached_head * self._jump_realization) & STATE_MASK
        else:
            head = (self._prefix * pow(self._jump_realization, index,
                                       MODULUS)) & STATE_MASK
        self._cached_index = index
        self._cached_head = head
        return head

    def realization(self, index: int) -> Lcg128:
        """Return the generator for the ``index``-th realization."""
        self._check_realization(index)
        return Lcg128(self._head(index), self._tree.base_multiplier)

    def realization_heads(self, start: int, count: int) -> np.ndarray:
        """Head states of realizations ``start .. start+count-1``, as limbs.

        Returns a ``(count, 4)`` uint64 array of little-endian 32-bit
        limbs (the layout :func:`repro.rng.vectorized.mul_mod_2_128`
        operates on); row ``i`` equals
        ``head_state((experiment, processor, start + i))``.  Produced by
        ``O(log count)`` vectorized multiplies, and leaves the
        incremental cursor at the block's last index so consecutive
        blocks keep the one-multiply fast path.
        """
        self._check_realization(start)
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count > 0:
            self._check_realization(start + count - 1)
        previous = self._block_heads
        if (previous is not None and count > 0
                and start == self._block_start + previous.shape[0]
                and count <= previous.shape[0]):
            # The worker loop's pattern: block k+1 follows block k, at
            # most as wide.  One vectorized multiply by the cached
            # A(n_r)**len(block) limbs replaces the doubling scheme.
            if self._block_jump is None:
                self._block_jump = int_to_limbs(
                    pow(self._jump_realization, previous.shape[0],
                        MODULUS))
            heads = mul_mod_2_128(previous[:count], self._block_jump)
        else:
            heads = geometric_limbs(self._head(start),
                                    self._jump_realization, count)
        if count > 0:
            if (self._block_heads is None
                    or count != self._block_heads.shape[0]):
                self._block_jump = None
            self._block_heads = heads
            self._block_start = start
            self._cached_index = start + count - 1
            self._cached_head = limbs_to_int(heads[-1])
        return heads

    def realization_block(self, start: int, count: int) -> BatchStreams:
        """Return a :class:`~repro.rng.batch.BatchStreams` for a block.

        The block covers realizations ``start .. start+count-1``; this
        is what the batched worker loop hands to a batch realization
        routine.
        """
        return BatchStreams(self.realization_heads(start, count),
                            self._tree.base_multiplier)

    def realizations(self, start: int = 0):
        """Yield ``(index, generator)`` pairs for successive realizations."""
        index = start
        while True:
            yield index, self.realization(index)
            index += 1

    def __repr__(self) -> str:
        return (f"ProcessorStream(experiment={self._experiment}, "
                f"processor={self._processor})")
