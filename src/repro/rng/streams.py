"""The PARMONC hierarchy of embedded subsequences.

Section 2.4 of the paper divides the general sequence ``{alpha_k}`` into
nested subsequences::

    general sequence        superset of  "experiments"  subsequences
    "experiments"  subseq.  superset of  "processors"   subsequences
    "processors"   subseq.  superset of  "realizations" subsequences

A stream is addressed by coordinates ``(experiment, processor,
realization)``; its head state is

    u = A(n_e)**experiment * A(n_p)**processor * A(n_r)**realization
        (mod 2**128)

starting from ``u_0 = 1``.  PARMONC assigns the experiment index from the
user's ``seqnum`` argument, the processor index from the MPI rank, and
the realization index from the per-processor realization counter; this
module is the single place where that arithmetic lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CapacityError, ConfigurationError
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    DEFAULT_LEAPS,
    LeapSet,
    MODULUS,
    STATE_MASK,
)

__all__ = ["StreamCoordinates", "StreamTree", "ExperimentStream",
           "ProcessorStream"]


@dataclass(frozen=True, order=True)
class StreamCoordinates:
    """Address of a realization stream inside the subsequence hierarchy."""

    experiment: int
    processor: int
    realization: int

    def __post_init__(self) -> None:
        for name in ("experiment", "processor", "realization"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"{name} index must be a non-negative integer, "
                    f"got {value!r}")


class StreamTree:
    """Factory of independent generator streams for a leap hierarchy.

    Args:
        leaps: The leap exponents; defaults to the PARMONC defaults
            (``n_e = 2**115``, ``n_p = 2**98``, ``n_r = 2**43``).
        base_multiplier: One-step multiplier ``A`` of the underlying
            generator.
        strict: When true (the default), stream indices are checked
            against the hierarchy capacities and out-of-range indices
            raise :class:`~repro.exceptions.CapacityError`.  Disabling
            the check reproduces the raw modular arithmetic, in which
            oversized indices silently alias other streams.

    Example:
        >>> tree = StreamTree()
        >>> rng = tree.rng(experiment=2, processor=0, realization=0)
        >>> 0.0 < rng.random() < 1.0
        True
    """

    def __init__(self, leaps: LeapSet = DEFAULT_LEAPS,
                 base_multiplier: int = BASE_MULTIPLIER,
                 strict: bool = True) -> None:
        if base_multiplier % 2 == 0:
            raise ConfigurationError("base multiplier must be odd")
        self._leaps = leaps
        self._base = base_multiplier & STATE_MASK
        self._strict = strict
        jump_e, jump_p, jump_r = leaps.multipliers(self._base)
        self._jump_experiment = jump_e
        self._jump_processor = jump_p
        self._jump_realization = jump_r

    # ------------------------------------------------------------------

    @property
    def leaps(self) -> LeapSet:
        """The leap exponents of this hierarchy."""
        return self._leaps

    @property
    def base_multiplier(self) -> int:
        """The one-step multiplier of the underlying generator."""
        return self._base

    @property
    def jump_multipliers(self) -> tuple[int, int, int]:
        """``(A(n_e), A(n_p), A(n_r))`` — what ``genparam`` prints."""
        return (self._jump_experiment, self._jump_processor,
                self._jump_realization)

    def __repr__(self) -> str:
        return (f"StreamTree(leaps=2**({self._leaps.experiment_exponent}, "
                f"{self._leaps.processor_exponent}, "
                f"{self._leaps.realization_exponent}))")

    # ------------------------------------------------------------------

    def _check(self, name: str, index: int, capacity: int) -> None:
        if index < 0:
            raise ConfigurationError(
                f"{name} index must be >= 0, got {index}")
        if self._strict and index >= capacity:
            raise CapacityError(
                f"{name} index {index} exceeds hierarchy capacity "
                f"{capacity}; a larger index would alias another stream")

    def head_state(self, coords: StreamCoordinates) -> int:
        """Return the 128-bit head state for ``coords``."""
        self._check("experiment", coords.experiment,
                    self._leaps.experiment_capacity)
        self._check("processor", coords.processor,
                    self._leaps.processor_capacity)
        self._check("realization", coords.realization,
                    self._leaps.realization_capacity)
        state = pow(self._jump_experiment, coords.experiment, MODULUS)
        state = (state * pow(self._jump_processor, coords.processor,
                             MODULUS)) % MODULUS
        state = (state * pow(self._jump_realization, coords.realization,
                             MODULUS)) % MODULUS
        return state

    def rng(self, experiment: int = 0, processor: int = 0,
            realization: int = 0) -> Lcg128:
        """Return a fresh generator at the given hierarchy coordinates."""
        coords = StreamCoordinates(experiment, processor, realization)
        return Lcg128(self.head_state(coords), self._base)

    def experiment(self, index: int) -> "ExperimentStream":
        """Return a handle on the ``index``-th experiment subsequence."""
        self._check("experiment", index, self._leaps.experiment_capacity)
        return ExperimentStream(self, index)


class ExperimentStream:
    """One "experiments" subsequence; spawns processor streams.

    Obtained from :meth:`StreamTree.experiment`; corresponds to one value
    of the PARMONC ``seqnum`` argument.
    """

    def __init__(self, tree: StreamTree, index: int) -> None:
        self._tree = tree
        self._index = index

    @property
    def index(self) -> int:
        """The experiment (``seqnum``) index."""
        return self._index

    @property
    def tree(self) -> StreamTree:
        """The owning hierarchy."""
        return self._tree

    def processor(self, index: int) -> "ProcessorStream":
        """Return a handle on the ``index``-th processor subsequence."""
        self._tree._check("processor", index,
                          self._tree.leaps.processor_capacity)
        return ProcessorStream(self._tree, self._index, index)

    def __repr__(self) -> str:
        return f"ExperimentStream(index={self._index})"


class ProcessorStream:
    """One "processors" subsequence; spawns realization generators.

    Corresponds to one MPI rank in the original library.  The
    :meth:`realization` method is what a worker calls before simulating
    each realization, guaranteeing that every realization consumes base
    random numbers from its own disjoint subsequence.
    """

    def __init__(self, tree: StreamTree, experiment: int,
                 processor: int) -> None:
        self._tree = tree
        self._experiment = experiment
        self._processor = processor

    @property
    def experiment(self) -> int:
        """The experiment index of this processor stream."""
        return self._experiment

    @property
    def processor(self) -> int:
        """The processor (rank) index."""
        return self._processor

    @property
    def realization_capacity(self) -> int:
        """How many disjoint realization streams this processor offers."""
        return self._tree.leaps.realization_capacity

    def realization(self, index: int) -> Lcg128:
        """Return the generator for the ``index``-th realization."""
        coords = StreamCoordinates(self._experiment, self._processor, index)
        return Lcg128(self._tree.head_state(coords),
                      self._tree.base_multiplier)

    def realizations(self, start: int = 0):
        """Yield ``(index, generator)`` pairs for successive realizations."""
        index = start
        while True:
            yield index, self.realization(index)
            index += 1

    def __repr__(self) -> str:
        return (f"ProcessorStream(experiment={self._experiment}, "
                f"processor={self._processor})")
