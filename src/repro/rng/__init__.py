"""The PARMONC parallel random number generator.

Two interfaces are offered:

* An object interface — :class:`Lcg128`, :class:`VectorLcg128` and the
  :class:`StreamTree` hierarchy — which is what the runtime uses.
* The paper-faithful procedural interface: :func:`initialize_rnd128`
  selects a subsequence (normally done for you by ``parmonc``) and
  :func:`rnd128` returns the next base random number, exactly like the
  argument-less FORTRAN/C function of section 3.3.

The procedural interface keeps one generator per *caller context*; inside
a PARMONC run each worker process initializes it with its own processor
and realization coordinates, so user realization code can simply call
``rnd128()``.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.rng.batch import BatchStreams
from repro.rng.lcg128 import Lcg128, state_to_unit
from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    DEFAULT_LEAPS,
    MODULUS,
    MODULUS_BITS,
    PERIOD,
    RECOMMENDED_LIMIT,
    LeapSet,
    jump_multiplier,
    jump_multiplier_pow2,
)
from repro.rng.streams import (
    ExperimentStream,
    ProcessorStream,
    StreamCoordinates,
    StreamTree,
)
from repro.rng.vectorized import VectorLcg128, generate_block, geometric_limbs

__all__ = [
    "Lcg128",
    "VectorLcg128",
    "BatchStreams",
    "geometric_limbs",
    "StreamTree",
    "StreamCoordinates",
    "ExperimentStream",
    "ProcessorStream",
    "LeapSet",
    "DEFAULT_LEAPS",
    "BASE_MULTIPLIER",
    "MODULUS",
    "MODULUS_BITS",
    "PERIOD",
    "RECOMMENDED_LIMIT",
    "jump_multiplier",
    "jump_multiplier_pow2",
    "generate_block",
    "state_to_unit",
    "rnd128",
    "initialize_rnd128",
    "install_rnd128",
    "current_rnd128",
]

# The process-wide generator behind the procedural rnd128() API.  Each
# worker process of a parallel run re-initializes it with its own stream
# coordinates, so there is no cross-process sharing to worry about.
_GLOBAL_RNG: Lcg128 = Lcg128()


def initialize_rnd128(experiment: int = 0, processor: int = 0,
                      realization: int = 0,
                      leaps: LeapSet = DEFAULT_LEAPS,
                      tree: StreamTree | None = None) -> Lcg128:
    """Point the global :func:`rnd128` at a hierarchy subsequence.

    Inside a ``parmonc`` run this is called for the user automatically
    before every realization; call it yourself only when using
    :func:`rnd128` standalone.

    Returns:
        The newly installed generator (also reachable via
        :func:`current_rnd128`).
    """
    global _GLOBAL_RNG
    if tree is None:
        tree = StreamTree(leaps)
    _GLOBAL_RNG = tree.rng(experiment, processor, realization)
    return _GLOBAL_RNG


def install_rnd128(generator: Lcg128) -> None:
    """Install an existing generator behind the procedural API."""
    global _GLOBAL_RNG
    if not isinstance(generator, Lcg128):
        raise ConfigurationError(
            f"expected an Lcg128 instance, got {type(generator).__name__}")
    _GLOBAL_RNG = generator


def rnd128() -> float:
    """Return the next base random number from the active subsequence.

    The Python counterpart of the paper's ``a = rnd128();`` — uniform on
    (0, 1), no arguments, stream selection handled externally.
    """
    return _GLOBAL_RNG.random()


def current_rnd128() -> Lcg128:
    """Return the generator currently backing :func:`rnd128`."""
    return _GLOBAL_RNG
