"""Runs tests: randomness of the *order* of draws, not their values."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["runs_above_below_test", "runs_up_down_test"]


def runs_above_below_test(values, threshold: float = 0.5,
                          alpha: float = 0.01) -> TestResult:
    """Wald–Wolfowitz runs test about a threshold (default: the median 0.5).

    Counts maximal blocks of consecutive draws on the same side of the
    threshold and compares with the normal approximation of the run-count
    distribution.  Detects positive or negative serial correlation.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1 or sample.size < 20:
        raise ConfigurationError(
            "runs test needs a 1-D sample of at least 20 values")
    above = sample >= threshold
    n_above = int(np.count_nonzero(above))
    n_below = sample.size - n_above
    if n_above == 0 or n_below == 0:
        # Degenerate sample: every value on one side. Certain rejection.
        return TestResult(
            name="runs above/below", statistic=float("inf"), p_value=0.0,
            alpha=alpha, sample_size=sample.size,
            details={"runs": 1, "n_above": n_above, "n_below": n_below})
    runs = 1 + int(np.count_nonzero(above[1:] != above[:-1]))
    mean = 1.0 + 2.0 * n_above * n_below / sample.size
    variance = (2.0 * n_above * n_below
                * (2.0 * n_above * n_below - sample.size)
                / (sample.size ** 2 * (sample.size - 1.0)))
    z = (runs - mean) / math.sqrt(variance)
    p_value = float(2.0 * stats.norm.sf(abs(z)))
    return TestResult(
        name="runs above/below", statistic=float(z), p_value=p_value,
        alpha=alpha, sample_size=sample.size,
        details={"runs": runs, "expected_runs": mean,
                 "n_above": n_above, "n_below": n_below})


def runs_up_down_test(values, alpha: float = 0.01) -> TestResult:
    """Runs-up-and-down test on the sign pattern of successive differences.

    For i.i.d. continuous draws the number of monotone runs is
    asymptotically normal with mean ``(2n - 1)/3`` and variance
    ``(16n - 29)/90``.  Sensitive to short-range monotone structure.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1 or sample.size < 20:
        raise ConfigurationError(
            "runs up/down test needs a 1-D sample of at least 20 values")
    diffs = np.sign(np.diff(sample))
    # Ties (zero differences) are vanishingly rare for genuine uniforms;
    # fold them into "up" so the statistic remains defined.
    diffs[diffs == 0] = 1
    runs = 1 + int(np.count_nonzero(diffs[1:] != diffs[:-1]))
    n = sample.size
    mean = (2.0 * n - 1.0) / 3.0
    variance = (16.0 * n - 29.0) / 90.0
    z = (runs - mean) / math.sqrt(variance)
    p_value = float(2.0 * stats.norm.sf(abs(z)))
    return TestResult(
        name="runs up/down", statistic=float(z), p_value=p_value,
        alpha=alpha, sample_size=n,
        details={"runs": runs, "expected_runs": mean})
