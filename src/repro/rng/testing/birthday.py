"""Birthday-spacings and collision tests (Knuth/Marsaglia family).

Both tests look at how draws fall into a large discrete space — they
catch lattice defects and short periods that marginal tests miss, which
is why Marsaglia made birthday spacings a DIEHARD staple.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["birthday_spacings_test", "collision_test",
           "maximum_of_t_test"]


def birthday_spacings_test(values, n_days: int = 2 ** 24,
                           alpha: float = 0.01) -> TestResult:
    """Marsaglia's birthday-spacings test.

    ``n`` draws are mapped to "birthdays" in ``[0, n_days)``; the number
    of *duplicated spacings* between sorted birthdays is asymptotically
    Poisson with mean ``lambda = n**3 / (4 * n_days)``.  The sample size
    is chosen by the caller so that lambda is moderate (the test uses
    the whole sample as one batch and applies a two-sided Poisson
    p-value).
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1 or sample.size < 100:
        raise ConfigurationError(
            "birthday test needs a 1-D sample of at least 100 draws")
    if n_days < sample.size:
        raise ConfigurationError(
            f"n_days={n_days} must be at least the sample size")
    mean = sample.size ** 3 / (4.0 * n_days)
    if not 0.5 <= mean <= 1000.0:
        raise ConfigurationError(
            f"expected duplicate-spacing count {mean:.2f} is outside "
            f"[0.5, 1000]; adjust the sample size or n_days")
    birthdays = np.sort(
        np.minimum((sample * n_days).astype(np.int64), n_days - 1))
    spacings = np.sort(np.diff(birthdays))
    duplicates = int(np.count_nonzero(spacings[1:] == spacings[:-1]))
    lower = float(stats.poisson.cdf(duplicates, mean))
    upper = float(stats.poisson.sf(duplicates - 1, mean))
    p_value = min(1.0, 2.0 * min(lower, upper))
    return TestResult(
        name=f"birthday spacings (m=2^{int(math.log2(n_days))})",
        statistic=float(duplicates), p_value=p_value, alpha=alpha,
        sample_size=sample.size,
        details={"expected_duplicates": mean,
                 "observed_duplicates": duplicates})


def collision_test(values, n_urns: int = 2 ** 20,
                   alpha: float = 0.01) -> TestResult:
    """Knuth's collision test: balls into a sparse urn space.

    Throwing ``n`` balls into ``m >> n`` urns produces approximately
    ``n - m (1 - (1 - 1/m)**n)`` collisions in expectation; the count is
    asymptotically normal.  Detects coarse granularity (too few distinct
    values) and clustering.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1 or sample.size < 1000:
        raise ConfigurationError(
            "collision test needs a 1-D sample of at least 1000 draws")
    if n_urns < 4 * sample.size:
        raise ConfigurationError(
            f"need n_urns >= 4 * sample size for the sparse regime, got "
            f"{n_urns} urns for {sample.size} draws")
    urns = np.minimum((sample * n_urns).astype(np.int64), n_urns - 1)
    collisions = sample.size - np.unique(urns).size
    # Mean and variance of the collision count in the sparse regime.
    occupancy = 1.0 - (1.0 - 1.0 / n_urns) ** sample.size
    mean = sample.size - n_urns * occupancy
    variance = max(mean * (1.0 - sample.size / (2.0 * n_urns)), 1e-12)
    z = (collisions - mean) / math.sqrt(variance)
    p_value = float(2.0 * stats.norm.sf(abs(z)))
    return TestResult(
        name=f"collision test (m=2^{int(math.log2(n_urns))})",
        statistic=float(z), p_value=p_value, alpha=alpha,
        sample_size=sample.size,
        details={"collisions": int(collisions),
                 "expected_collisions": mean})


def maximum_of_t_test(values, t: int = 8, bins: int = 32,
                      alpha: float = 0.01) -> TestResult:
    """Knuth's maximum-of-t test.

    The maximum of ``t`` independent uniforms has CDF ``x**t``, so
    ``max(...)**t`` is again uniform; a chi-square on its binned values
    probes the upper tail of the joint distribution.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if t < 2:
        raise ConfigurationError(f"t must be >= 2, got {t}")
    n_groups = sample.size // t
    if n_groups < bins * 5:
        raise ConfigurationError(
            f"sample too small: {n_groups} groups for {bins} bins")
    maxima = sample[:n_groups * t].reshape(n_groups, t).max(axis=1)
    transformed = maxima ** t
    counts = np.bincount(
        np.minimum((transformed * bins).astype(np.int64), bins - 1),
        minlength=bins)
    expected = n_groups / bins
    statistic = float(np.sum((counts - expected) ** 2) / expected)
    p_value = float(stats.chi2.sf(statistic, df=bins - 1))
    return TestResult(
        name=f"maximum-of-t (t={t})",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=n_groups * t,
        details={"groups": n_groups, "dof": bins - 1})
