"""Statistical test battery for base random number generators.

The paper states that the PARMONC generator "was verified on parallel
processors using rigorous statistical testing" but prints no table; this
package reconstructs that verification.  Every test is a pure function
from a sample of uniforms (and parameters) to a :class:`TestResult`
carrying the statistic, the p-value and a pass/fail verdict, so tests
compose into the :func:`run_battery` report used by the RNG-quality
benchmark.
"""

from __future__ import annotations

from repro.rng.testing.result import TestResult, SignificanceError
from repro.rng.testing.birthday import (
    birthday_spacings_test,
    collision_test,
    maximum_of_t_test,
)
from repro.rng.testing.frequency import chi_square_uniformity, ks_uniformity
from repro.rng.testing.serial import serial_pairs_test
from repro.rng.testing.runs import runs_above_below_test, runs_up_down_test
from repro.rng.testing.gap import gap_test
from repro.rng.testing.autocorrelation import autocorrelation_test
from repro.rng.testing.permutation import permutation_test
from repro.rng.testing.interstream import (
    interstream_correlation_test,
    interstream_collision_check,
)
from repro.rng.testing.twolevel import (
    two_level_substream_test,
    two_level_test,
)
from repro.rng.testing.battery import BatteryReport, run_battery, STANDARD_TESTS

__all__ = [
    "TestResult",
    "SignificanceError",
    "chi_square_uniformity",
    "ks_uniformity",
    "birthday_spacings_test",
    "collision_test",
    "maximum_of_t_test",
    "serial_pairs_test",
    "runs_above_below_test",
    "runs_up_down_test",
    "gap_test",
    "autocorrelation_test",
    "permutation_test",
    "interstream_correlation_test",
    "interstream_collision_check",
    "two_level_test",
    "two_level_substream_test",
    "BatteryReport",
    "run_battery",
    "STANDARD_TESTS",
]
