"""Frequency (equidistribution) tests: chi-square and Kolmogorov–Smirnov."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["chi_square_uniformity", "ks_uniformity"]


def _as_uniform_sample(values) -> np.ndarray:
    sample = np.asarray(values, dtype=np.float64)
    if sample.ndim != 1 or sample.size == 0:
        raise ConfigurationError(
            f"expected a non-empty 1-D sample, got shape {sample.shape}")
    if np.any(sample < 0.0) or np.any(sample > 1.0):
        raise ConfigurationError("sample values must lie in [0, 1]")
    return sample


def chi_square_uniformity(values, bins: int = 64,
                          alpha: float = 0.01) -> TestResult:
    """Chi-square test of equidistribution over ``bins`` equal cells.

    Rejects when bin occupancies deviate from the uniform expectation
    ``n / bins`` more than chance allows.  The classic first check of
    Mikhailov–Voytishek-style RNG verification.
    """
    sample = _as_uniform_sample(values)
    check_significance(alpha)
    if bins < 2:
        raise ConfigurationError(f"need at least 2 bins, got {bins}")
    expected = sample.size / bins
    if expected < 5.0:
        raise ConfigurationError(
            f"sample too small: expected count per bin is {expected:.2f} "
            f"(< 5); use fewer bins or a larger sample")
    counts = np.bincount(
        np.minimum((sample * bins).astype(np.int64), bins - 1),
        minlength=bins)
    statistic = float(np.sum((counts - expected) ** 2) / expected)
    p_value = float(stats.chi2.sf(statistic, df=bins - 1))
    return TestResult(
        name=f"chi-square uniformity ({bins} bins)",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=sample.size,
        details={"bins": bins, "dof": bins - 1,
                 "min_count": int(counts.min()),
                 "max_count": int(counts.max())})


def ks_uniformity(values, alpha: float = 0.01) -> TestResult:
    """One-sample Kolmogorov–Smirnov test against the uniform CDF."""
    sample = _as_uniform_sample(values)
    check_significance(alpha)
    ordered = np.sort(sample)
    n = ordered.size
    grid = np.arange(1, n + 1) / n
    d_plus = float(np.max(grid - ordered))
    d_minus = float(np.max(ordered - (np.arange(n) / n)))
    statistic = max(d_plus, d_minus)
    p_value = float(stats.kstwobign.sf(statistic * np.sqrt(n)))
    return TestResult(
        name="Kolmogorov-Smirnov uniformity",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=n,
        details={"d_plus": d_plus, "d_minus": d_minus})
