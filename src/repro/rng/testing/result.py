"""Common result type for statistical tests."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["TestResult", "SignificanceError", "check_significance"]


class SignificanceError(ConfigurationError):
    """A significance level outside the open interval (0, 1) was given."""


def check_significance(alpha: float) -> float:
    """Validate a significance level and return it."""
    if not 0.0 < alpha < 1.0:
        raise SignificanceError(
            f"significance level must be in (0, 1), got {alpha}")
    return alpha


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test on a sample of uniforms.

    Attributes:
        name: Human-readable test name, e.g. ``"serial pairs (8x8)"``.
        statistic: The test statistic value.
        p_value: Two-sided (or upper-tail, as appropriate) p-value.
        alpha: Significance level used for the verdict.
        sample_size: Number of uniforms consumed by the test.
        details: Free-form extras (bin counts, degrees of freedom, ...).
    """

    name: str
    statistic: float
    p_value: float
    alpha: float
    sample_size: int
    details: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when the sample is *not* rejected at level ``alpha``."""
        return self.p_value >= self.alpha

    def __str__(self) -> str:
        verdict = "pass" if self.passed else "FAIL"
        return (f"{self.name:<34s} stat={self.statistic:>12.4f}  "
                f"p={self.p_value:8.5f}  n={self.sample_size:>9d}  "
                f"[{verdict}]")
