"""Autocorrelation test at one or several lags."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["autocorrelation_test"]


def autocorrelation_test(values, lag: int = 1,
                         alpha: float = 0.01) -> TestResult:
    """Test that the lag-``lag`` sample autocorrelation is zero.

    For i.i.d. draws the sample autocorrelation ``r_lag`` is
    asymptotically ``N(0, 1/n)``, so ``z = r_lag * sqrt(n)`` is compared
    against the standard normal.  Catches the long-range correlations
    produced by overlapping or wrapped substreams.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1:
        raise ConfigurationError(
            f"need a 1-D sample, got shape {sample.shape}")
    if lag < 1:
        raise ConfigurationError(f"lag must be >= 1, got {lag}")
    if sample.size <= lag + 20:
        raise ConfigurationError(
            f"sample of size {sample.size} is too small for lag {lag}")
    centered = sample - sample.mean()
    denominator = float(np.dot(centered, centered))
    if denominator == 0.0:
        # Constant sample: maximal dependence, certain rejection.
        return TestResult(
            name=f"autocorrelation lag {lag}", statistic=float("inf"),
            p_value=0.0, alpha=alpha, sample_size=sample.size,
            details={"lag": lag, "r": 1.0})
    r = float(np.dot(centered[:-lag], centered[lag:]) / denominator)
    n_terms = sample.size - lag
    z = r * math.sqrt(n_terms)
    p_value = float(2.0 * stats.norm.sf(abs(z)))
    return TestResult(
        name=f"autocorrelation lag {lag}",
        statistic=float(z), p_value=p_value, alpha=alpha,
        sample_size=sample.size,
        details={"lag": lag, "r": r})
