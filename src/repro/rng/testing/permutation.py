"""Permutation test: orderings of non-overlapping tuples."""

from __future__ import annotations

import math
from itertools import permutations

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["permutation_test"]


def permutation_test(values, tuple_size: int = 3,
                     alpha: float = 0.01) -> TestResult:
    """Chi-square test that all ``t!`` orderings of t-tuples are equally likely.

    The sample is cut into non-overlapping tuples of ``tuple_size``
    consecutive draws; each tuple is classified by the permutation that
    sorts it, and the ``t!`` classes are compared against equal expected
    counts.  A classic Knuth test; sensitive to sequential dependence
    that marginal tests cannot see.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1:
        raise ConfigurationError(
            f"need a 1-D sample, got shape {sample.shape}")
    if not 2 <= tuple_size <= 6:
        raise ConfigurationError(
            f"tuple_size must be in [2, 6] (t! classes must stay "
            f"manageable), got {tuple_size}")
    n_tuples = sample.size // tuple_size
    classes = math.factorial(tuple_size)
    expected = n_tuples / classes
    if expected < 5.0:
        raise ConfigurationError(
            f"sample too small: expected count per ordering is "
            f"{expected:.2f} (< 5)")
    tuples = sample[:n_tuples * tuple_size].reshape(n_tuples, tuple_size)
    # Classify each tuple by its argsort pattern; ranks are unique with
    # probability one for continuous draws.
    order = np.argsort(tuples, axis=1, kind="stable")
    class_index = {perm: i for i, perm in
                   enumerate(permutations(range(tuple_size)))}
    radix = np.array([tuple_size ** k
                      for k in range(tuple_size)], dtype=np.int64)
    codes = order @ radix
    code_to_class = {}
    for perm, idx in class_index.items():
        code = sum(p * tuple_size ** k for k, p in enumerate(perm))
        code_to_class[code] = idx
    lookup = np.full(tuple_size ** tuple_size, -1, dtype=np.int64)
    for code, idx in code_to_class.items():
        lookup[code] = idx
    labels = lookup[codes]
    counts = np.bincount(labels, minlength=classes)
    statistic = float(np.sum((counts - expected) ** 2) / expected)
    p_value = float(stats.chi2.sf(statistic, df=classes - 1))
    return TestResult(
        name=f"permutation test (t={tuple_size})",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=n_tuples * tuple_size,
        details={"tuples": n_tuples, "classes": classes,
                 "dof": classes - 1})
