"""Two-level (second-order) testing across parallel substreams.

The decisive test for a *parallel* generator (L'Ecuyer's methodology):
run a first-level test independently on many substreams, then test the
resulting p-values for uniformity.  Defects too small to reject any
single stream show up as skewed p-value distributions; correlations
*between* streams show up even when every stream is individually
healthy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.streams import StreamTree
from repro.rng.testing.frequency import chi_square_uniformity
from repro.rng.testing.result import TestResult, check_significance
from repro.rng.vectorized import VectorLcg128

__all__ = ["two_level_test", "two_level_substream_test"]


def two_level_test(samples, first_level: Callable[[np.ndarray], TestResult],
                   alpha: float = 0.01) -> TestResult:
    """Run a first-level test per sample; KS-test the p-values.

    Args:
        samples: Iterable of 1-D uniform samples (one per substream).
        first_level: Callable mapping a sample to a
            :class:`TestResult` (e.g. a battery test with fixed
            parameters).
        alpha: Significance level for the second-level KS test.

    Returns:
        A :class:`TestResult` whose statistic is the KS distance of the
        first-level p-values from uniformity.
    """
    check_significance(alpha)
    p_values = []
    total_draws = 0
    for sample in samples:
        result = first_level(np.asarray(sample, dtype=np.float64))
        p_values.append(result.p_value)
        total_draws += result.sample_size
    if len(p_values) < 10:
        raise ConfigurationError(
            f"two-level testing needs at least 10 substreams, got "
            f"{len(p_values)}")
    ordered = np.sort(np.asarray(p_values))
    n = ordered.size
    d_plus = float(np.max(np.arange(1, n + 1) / n - ordered))
    d_minus = float(np.max(ordered - np.arange(n) / n))
    statistic = max(d_plus, d_minus)
    p_value = float(stats.kstwobign.sf(statistic * np.sqrt(n)))
    return TestResult(
        name=f"two-level KS over {n} substreams",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=total_draws,
        details={"substreams": n,
                 "min_p": float(ordered[0]),
                 "max_p": float(ordered[-1])})


def two_level_substream_test(tree: StreamTree | None = None,
                             experiment: int = 0,
                             n_substreams: int = 64,
                             draws_per_stream: int = 20_000,
                             alpha: float = 0.01) -> TestResult:
    """Two-level chi-square test over PARMONC processor substreams.

    Draws ``draws_per_stream`` numbers from each of ``n_substreams``
    processor substreams of one experiment and applies
    :func:`two_level_test` with a 64-bin chi-square as the first level
    — the parallel-quality certificate the paper's §2.2 requirements
    call for.
    """
    if n_substreams < 10:
        raise ConfigurationError(
            f"need at least 10 substreams, got {n_substreams}")
    if draws_per_stream < 1000:
        raise ConfigurationError(
            f"need at least 1000 draws per stream, got "
            f"{draws_per_stream}")
    resolved = tree if tree is not None else StreamTree()

    def substream_samples():
        for processor in range(n_substreams):
            generator = VectorLcg128(
                resolved.rng(experiment, processor, 0))
            yield generator.uniforms(draws_per_stream)

    result = two_level_test(
        substream_samples(),
        lambda sample: chi_square_uniformity(sample, bins=64,
                                             alpha=alpha),
        alpha=alpha)
    return TestResult(
        name=f"two-level chi-square, {n_substreams} processor substreams",
        statistic=result.statistic, p_value=result.p_value, alpha=alpha,
        sample_size=result.sample_size, details=result.details)
