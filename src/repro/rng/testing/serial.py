"""Serial (pair) test of independence between consecutive draws."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["serial_pairs_test"]


def serial_pairs_test(values, grid: int = 8, alpha: float = 0.01) -> TestResult:
    """Chi-square test on non-overlapping pairs in a ``grid x grid`` lattice.

    Consecutive draws ``(alpha_{2k}, alpha_{2k+1})`` are binned into a 2-D
    lattice; independence plus uniformity implies equal expected counts in
    all ``grid**2`` cells.  Detects the lattice correlations that plague
    short-period LCGs.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1 or sample.size < 2:
        raise ConfigurationError(
            f"need a 1-D sample with at least 2 values, "
            f"got shape {sample.shape}")
    if grid < 2:
        raise ConfigurationError(f"grid must be >= 2, got {grid}")
    n_pairs = sample.size // 2
    cells = grid * grid
    expected = n_pairs / cells
    if expected < 5.0:
        raise ConfigurationError(
            f"sample too small: expected count per cell is {expected:.2f} "
            f"(< 5); use a coarser grid or a larger sample")
    x = np.minimum((sample[0:2 * n_pairs:2] * grid).astype(np.int64), grid - 1)
    y = np.minimum((sample[1:2 * n_pairs:2] * grid).astype(np.int64), grid - 1)
    counts = np.bincount(x * grid + y, minlength=cells)
    statistic = float(np.sum((counts - expected) ** 2) / expected)
    p_value = float(stats.chi2.sf(statistic, df=cells - 1))
    return TestResult(
        name=f"serial pairs ({grid}x{grid})",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=2 * n_pairs,
        details={"grid": grid, "dof": cells - 1, "pairs": n_pairs})
