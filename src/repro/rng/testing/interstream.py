"""Independence checks between leaped substreams.

These are the tests specific to a *parallel* generator: formula (4)
converges to the expectation only when the per-processor subsequences
are mutually independent.  We check the cross-correlation of paired
streams and, separately, that the leap arithmetic keeps substreams
disjoint over the lengths we actually consume.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["interstream_correlation_test", "interstream_collision_check"]


def interstream_correlation_test(stream_a, stream_b,
                                 alpha: float = 0.01) -> TestResult:
    """Test that two substream samples are uncorrelated.

    Under independence the sample cross-correlation of ``n`` paired
    draws is asymptotically ``N(0, 1/n)``.

    Args:
        stream_a: Uniform sample from one substream.
        stream_b: Uniform sample of the same length from another.
        alpha: Significance level.
    """
    a = np.asarray(stream_a, dtype=np.float64)
    b = np.asarray(stream_b, dtype=np.float64)
    check_significance(alpha)
    if a.ndim != 1 or b.ndim != 1 or a.shape != b.shape:
        raise ConfigurationError(
            f"need two 1-D samples of equal length, got shapes "
            f"{a.shape} and {b.shape}")
    if a.size < 30:
        raise ConfigurationError(
            "cross-correlation test needs at least 30 paired draws")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denominator = math.sqrt(float(np.dot(a_centered, a_centered))
                            * float(np.dot(b_centered, b_centered)))
    if denominator == 0.0:
        return TestResult(
            name="inter-stream correlation", statistic=float("inf"),
            p_value=0.0, alpha=alpha, sample_size=a.size,
            details={"r": 1.0})
    r = float(np.dot(a_centered, b_centered) / denominator)
    z = r * math.sqrt(a.size)
    p_value = float(2.0 * stats.norm.sf(abs(z)))
    return TestResult(
        name="inter-stream correlation",
        statistic=float(z), p_value=p_value, alpha=alpha,
        sample_size=a.size, details={"r": r})


def interstream_collision_check(tree, experiment: int, processors: int,
                                draws_per_processor: int) -> TestResult:
    """Verify that processor substreams cannot overlap for a usage pattern.

    This is an arithmetic certificate, not a statistical test: processor
    ``p`` owns positions ``[p * n_p, (p+1) * n_p)`` of the experiment
    subsequence, so ``draws_per_processor <= n_p`` guarantees
    disjointness.  The result reports the utilization fraction; the check
    fails (p-value 0) only if a processor would leak into its neighbour's
    subsequence.

    Args:
        tree: A :class:`repro.rng.streams.StreamTree`.
        experiment: The experiment index under scrutiny.
        processors: Number of processor substreams in use.
        draws_per_processor: Base random numbers each processor consumes.
    """
    if processors < 1 or draws_per_processor < 0:
        raise ConfigurationError(
            "processors must be >= 1 and draws_per_processor >= 0")
    leaps = tree.leaps
    if processors > leaps.processor_capacity:
        raise ConfigurationError(
            f"{processors} processors exceed the hierarchy capacity "
            f"{leaps.processor_capacity}")
    capacity = leaps.processor_leap
    utilization = draws_per_processor / capacity
    disjoint = draws_per_processor <= capacity
    # Sanity-check the leap arithmetic itself on the first two streams:
    # jumping stream p by n_p must land exactly on stream p+1's head.
    head_0 = tree.rng(experiment, 0, 0)
    head_1 = tree.rng(experiment, 1, 0)
    arithmetic_ok = head_0.jumped(capacity).state == head_1.state
    passed = disjoint and arithmetic_ok
    return TestResult(
        name="inter-stream collision check",
        statistic=utilization,
        p_value=1.0 if passed else 0.0,
        alpha=0.5,
        sample_size=processors * draws_per_processor,
        details={"processor_leap": capacity,
                 "utilization": utilization,
                 "arithmetic_ok": arithmetic_ok,
                 "disjoint": disjoint})
