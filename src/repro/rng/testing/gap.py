"""Gap test: waiting times between visits to a sub-interval."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError
from repro.rng.testing.result import TestResult, check_significance

__all__ = ["gap_test"]


def gap_test(values, low: float = 0.0, high: float = 0.5,
             max_gap: int | None = None, alpha: float = 0.01) -> TestResult:
    """Knuth's gap test for the marker interval ``[low, high)``.

    The lengths of gaps between successive draws falling in the marker
    interval are geometrically distributed with parameter
    ``p = high - low``; observed gap-length counts are compared with a
    chi-square statistic (gaps of length ``>= max_gap`` pooled).  When
    ``max_gap`` is omitted, the largest value keeping every pooled class
    at an expected count of at least five is chosen automatically.
    """
    sample = np.asarray(values, dtype=np.float64)
    check_significance(alpha)
    if sample.ndim != 1 or sample.size == 0:
        raise ConfigurationError("gap test needs a non-empty 1-D sample")
    if not 0.0 <= low < high <= 1.0:
        raise ConfigurationError(
            f"need 0 <= low < high <= 1, got [{low}, {high})")
    if max_gap is not None and max_gap < 1:
        raise ConfigurationError(f"max_gap must be >= 1, got {max_gap}")
    p = high - low
    in_marker = (sample >= low) & (sample < high)
    positions = np.flatnonzero(in_marker)
    if positions.size < 2:
        raise ConfigurationError(
            "sample produced fewer than two marker hits; enlarge the "
            "sample or the marker interval")
    gaps = np.diff(positions) - 1
    n_gaps = gaps.size
    if max_gap is None:
        # Largest pooling point whose tail class still expects >= 5 hits.
        max_gap = 1
        while (n_gaps * (1.0 - p) ** (max_gap + 1) >= 5.0
               and max_gap < 64):
            max_gap += 1
    # Gap length g has probability p * (1-p)**g; pool the tail >= max_gap.
    probabilities = p * (1.0 - p) ** np.arange(max_gap)
    tail = (1.0 - p) ** max_gap
    expected = np.append(probabilities, tail) * n_gaps
    if expected.min() < 5.0:
        raise ConfigurationError(
            f"expected count in some gap class is {expected.min():.2f} "
            f"(< 5); reduce max_gap or enlarge the sample")
    counts = np.bincount(np.minimum(gaps, max_gap), minlength=max_gap + 1)
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    p_value = float(stats.chi2.sf(statistic, df=max_gap))
    return TestResult(
        name=f"gap test on [{low}, {high})",
        statistic=statistic, p_value=p_value, alpha=alpha,
        sample_size=sample.size,
        details={"gaps": int(n_gaps), "max_gap": max_gap, "dof": max_gap})
