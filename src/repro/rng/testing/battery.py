"""Run the whole battery against a generator and render a report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.testing.autocorrelation import autocorrelation_test
from repro.rng.testing.birthday import (
    birthday_spacings_test,
    collision_test,
    maximum_of_t_test,
)
from repro.rng.testing.frequency import chi_square_uniformity, ks_uniformity
from repro.rng.testing.gap import gap_test
from repro.rng.testing.permutation import permutation_test
from repro.rng.testing.result import TestResult
from repro.rng.testing.runs import runs_above_below_test, runs_up_down_test
from repro.rng.testing.serial import serial_pairs_test

__all__ = ["STANDARD_TESTS", "BatteryReport", "run_battery"]

#: The default battery: name -> callable(sample, alpha) -> TestResult.
STANDARD_TESTS: dict[str, Callable[[np.ndarray, float], TestResult]] = {
    "chi_square": lambda s, a: chi_square_uniformity(s, bins=64, alpha=a),
    "ks": lambda s, a: ks_uniformity(s, alpha=a),
    "serial_pairs": lambda s, a: serial_pairs_test(s, grid=8, alpha=a),
    "runs_above_below": lambda s, a: runs_above_below_test(s, alpha=a),
    "runs_up_down": lambda s, a: runs_up_down_test(s, alpha=a),
    "gap": lambda s, a: gap_test(s, alpha=a),
    "autocorrelation_1": lambda s, a: autocorrelation_test(s, lag=1, alpha=a),
    "autocorrelation_7": lambda s, a: autocorrelation_test(s, lag=7, alpha=a),
    "permutation": lambda s, a: permutation_test(s, tuple_size=3, alpha=a),
    # Space sizes scale with the sample so the expected counts stay in
    # the regime each test's asymptotics assume.
    "birthday": lambda s, a: birthday_spacings_test(
        s, n_days=max(s.size, s.size ** 3 // 256), alpha=a),
    "collision": lambda s, a: collision_test(
        s, n_urns=1 << max(8, (16 * s.size - 1).bit_length()), alpha=a),
    "maximum_of_t": lambda s, a: maximum_of_t_test(s, t=8, alpha=a),
}


@dataclass(frozen=True)
class BatteryReport:
    """Aggregate outcome of a battery run."""

    generator_name: str
    results: tuple[TestResult, ...]

    @property
    def n_passed(self) -> int:
        """Number of tests not rejected."""
        return sum(1 for r in self.results if r.passed)

    @property
    def n_failed(self) -> int:
        """Number of tests rejected."""
        return len(self.results) - self.n_passed

    @property
    def all_passed(self) -> bool:
        """True when no test rejected the sample."""
        return self.n_failed == 0

    def render(self) -> str:
        """Return a human-readable multi-line report table."""
        lines = [f"battery report for {self.generator_name}",
                 "-" * 78]
        lines.extend(str(result) for result in self.results)
        lines.append("-" * 78)
        lines.append(f"{self.n_passed}/{len(self.results)} tests passed")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def run_battery(sample, generator_name: str = "sample",
                alpha: float = 0.01,
                tests: Sequence[str] | None = None) -> BatteryReport:
    """Run the standard battery on a sample of uniforms.

    Args:
        sample: 1-D array-like of uniforms on (0, 1).  For a fair battery
            use at least ~10**5 draws.
        generator_name: Label for the report.
        alpha: Per-test significance level.  With nine tests at
            ``alpha = 0.01`` a perfect generator still fails one test in
            roughly 9% of batteries; judge the battery as a whole.
        tests: Optional subset of :data:`STANDARD_TESTS` keys to run.

    Returns:
        A :class:`BatteryReport`; the sample itself is consumed once and
        shared by every test.
    """
    values = np.asarray(sample, dtype=np.float64)
    if values.ndim != 1:
        raise ConfigurationError(
            f"battery needs a 1-D sample, got shape {values.shape}")
    selected = tests if tests is not None else list(STANDARD_TESTS)
    unknown = [name for name in selected if name not in STANDARD_TESTS]
    if unknown:
        raise ConfigurationError(
            f"unknown test names {unknown}; available: "
            f"{sorted(STANDARD_TESTS)}")
    results = tuple(STANDARD_TESTS[name](values, alpha) for name in selected)
    return BatteryReport(generator_name=generator_name, results=results)
