"""Vectorized, bit-identical block generation for the 128-bit generator.

The original PARMONC ``rnd128`` is "fast" because it is 64-bit integer
FORTRAN.  A Python loop over exact integers cannot match that, so this
module provides the performance substrate of the reproduction: 128-bit
modular arithmetic on numpy arrays, with each 128-bit state stored as
four little-endian 32-bit limbs inside ``uint64`` lanes (so limb products
never overflow).

Blocks are produced with an in-block leapfrog: ``lanes`` parallel streams
start at ``u*A**1 .. u*A**lanes`` and all advance by ``A**lanes`` per
vectorized step, which yields the *exact* sequence of the scalar
generator in row-major order.  Bit-identity with
:class:`repro.rng.lcg128.Lcg128` is property-tested in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128, state_to_unit
from repro.rng.multiplier import BASE_MULTIPLIER, MODULUS, STATE_MASK

__all__ = [
    "int_to_limbs",
    "limbs_to_int",
    "mul_mod_2_128",
    "limbs_to_unit",
    "geometric_limbs",
    "generate_block",
    "VectorLcg128",
]

_LIMB_BITS = 32
_LIMB_MASK = np.uint64(0xFFFFFFFF)
_N_LIMBS = 4


def int_to_limbs(value: int) -> np.ndarray:
    """Split a 128-bit integer into four little-endian 32-bit limbs."""
    value &= STATE_MASK
    return np.array(
        [(value >> (_LIMB_BITS * i)) & 0xFFFFFFFF for i in range(_N_LIMBS)],
        dtype=np.uint64)


def limbs_to_int(limbs: np.ndarray) -> int:
    """Reassemble a 128-bit integer from its four 32-bit limbs."""
    return sum(int(limbs[..., i]) << (_LIMB_BITS * i)
               for i in range(_N_LIMBS))


def mul_mod_2_128(states: np.ndarray, multiplier: np.ndarray) -> np.ndarray:
    """Multiply limb-decomposed states by a constant, modulo ``2**128``.

    Args:
        states: ``(n, 4)`` uint64 array of little-endian 32-bit limbs.
        multiplier: ``(4,)`` uint64 limb decomposition of the constant.

    Returns:
        ``(n, 4)`` uint64 array of the low 128 bits of the products.

    The schoolbook columns sum at most nine 32-bit quantities plus a tiny
    carry, so every intermediate fits comfortably in ``uint64``.
    """
    n = states.shape[0]
    columns = np.zeros((n, _N_LIMBS), dtype=np.uint64)
    for i in range(_N_LIMBS):
        lane = states[:, i]
        for j in range(_N_LIMBS - i):
            product = lane * multiplier[j]
            columns[:, i + j] += product & _LIMB_MASK
            if i + j + 1 < _N_LIMBS:
                columns[:, i + j + 1] += product >> np.uint64(_LIMB_BITS)
    out = np.empty_like(columns)
    carry = np.zeros(n, dtype=np.uint64)
    for k in range(_N_LIMBS):
        total = columns[:, k] + carry
        out[:, k] = total & _LIMB_MASK
        carry = total >> np.uint64(_LIMB_BITS)
    return out


def limbs_to_unit(states: np.ndarray) -> np.ndarray:
    """Convert limb-decomposed states to doubles on (0, 1).

    Matches :func:`repro.rng.lcg128.state_to_unit` exactly: the top 53
    state bits become the mantissa and all-zero mantissas are clamped to
    ``2**-53``.
    """
    top = (states[:, 3] << np.uint64(21)) | (states[:, 2] >> np.uint64(11))
    values = top.astype(np.float64) * 2.0 ** -53
    np.maximum(values, 2.0 ** -53, out=values)
    return values


def geometric_limbs(first: int, ratio: int, count: int) -> np.ndarray:
    """Limb-decomposed geometric progression ``first * ratio**i`` mod 2**128.

    Row ``i`` of the returned ``(count, 4)`` uint64 array holds the limbs
    of ``first * ratio**i`` for ``i = 0 .. count-1``.  Built by repeated
    doubling — ``O(log count)`` calls to :func:`mul_mod_2_128` — so
    producing a block of stream head states costs far less than ``count``
    big-integer multiplications.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    out = np.empty((count, _N_LIMBS), dtype=np.uint64)
    if count == 0:
        return out
    out[0] = int_to_limbs(first)
    filled = 1
    power = ratio & STATE_MASK  # ratio**filled throughout the loop
    while filled < count:
        step = min(filled, count - filled)
        out[filled:filled + step] = mul_mod_2_128(
            out[:step], int_to_limbs(power))
        filled += step
        power = (power * power) & STATE_MASK
    return out


def generate_block(state: int, size: int,
                   multiplier: int = BASE_MULTIPLIER,
                   lanes: int = 1024) -> tuple[np.ndarray, int]:
    """Generate ``size`` base random numbers starting after ``state``.

    Equivalent to ``Lcg128(state, multiplier).block(size)`` but vectorized.

    Args:
        state: Head state ``u``; the first output corresponds to ``u*A``.
        size: Number of draws.
        multiplier: One-step multiplier ``A``.
        lanes: Leapfrog width; larger values amortize the Python-level
            loop better for large blocks.

    Returns:
        ``(values, new_state)`` where ``new_state = u * A**size`` is the
        state a scalar generator would hold after the same draws.
    """
    if size < 0:
        raise ConfigurationError(f"block size must be >= 0, got {size}")
    if lanes <= 0:
        raise ConfigurationError(f"lanes must be >= 1, got {lanes}")
    state &= STATE_MASK
    if size == 0:
        return np.empty(0, dtype=np.float64), state
    lanes = min(lanes, size)
    steps = -(-size // lanes)
    # Lane i starts at u * A**(i+1): the first `lanes` outputs.
    lane_heads = geometric_limbs((state * multiplier) & STATE_MASK,
                                 multiplier, lanes)
    stride = int_to_limbs(pow(multiplier, lanes, MODULUS))
    values = np.empty(steps * lanes, dtype=np.float64)
    current = lane_heads
    values[:lanes] = limbs_to_unit(current)
    for step in range(1, steps):
        current = mul_mod_2_128(current, stride)
        values[step * lanes:(step + 1) * lanes] = limbs_to_unit(current)
    new_state = (state * pow(multiplier, size, MODULUS)) & STATE_MASK
    return values[:size], new_state


class VectorLcg128:
    """Stateful vectorized generator, bit-identical to :class:`Lcg128`.

    Produces the same stream of base random numbers as a scalar
    :class:`~repro.rng.lcg128.Lcg128` started from the same state, but in
    numpy blocks.  Useful for vector-friendly realization routines (e.g.
    SDE trajectories needing thousands of normals per step).

    Args:
        source: Either a 128-bit head state or a scalar generator whose
            current position the vector generator continues from.
        multiplier: One-step multiplier; ignored when ``source`` is an
            :class:`Lcg128` (its multiplier is used).
        lanes: Leapfrog width for block generation.
    """

    def __init__(self, source: int | Lcg128 = 1,
                 multiplier: int = BASE_MULTIPLIER, lanes: int = 1024) -> None:
        if isinstance(source, Lcg128):
            self._state = source.state
            self._multiplier = source.multiplier
        else:
            self._state = int(source) & STATE_MASK
            self._multiplier = multiplier & STATE_MASK
        if self._state % 2 == 0 or self._multiplier % 2 == 0:
            raise ConfigurationError("state and multiplier must be odd")
        if lanes <= 0:
            raise ConfigurationError(f"lanes must be >= 1, got {lanes}")
        self._lanes = lanes
        self._count = 0

    @property
    def state(self) -> int:
        """Current 128-bit state (position in the general sequence)."""
        return self._state

    @property
    def multiplier(self) -> int:
        """The one-step multiplier ``A``."""
        return self._multiplier

    @property
    def count(self) -> int:
        """Number of draws taken from this instance."""
        return self._count

    def uniforms(self, size: int) -> np.ndarray:
        """Return the next ``size`` base random numbers as float64."""
        values, self._state = generate_block(
            self._state, size, self._multiplier, self._lanes)
        self._count += size
        return values

    def random(self) -> float:
        """Scalar draw, for API compatibility with :class:`Lcg128`."""
        self._state = (self._state * self._multiplier) & STATE_MASK
        self._count += 1
        return state_to_unit(self._state)

    def to_scalar(self) -> Lcg128:
        """Return a scalar generator continuing from the current position."""
        return Lcg128(self._state, self._multiplier)

    def __repr__(self) -> str:
        return (f"VectorLcg128(state={self._state:#034x}, "
                f"lanes={self._lanes}, count={self._count})")
