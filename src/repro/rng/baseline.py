"""Baseline generators the paper positions ``rnd128`` against.

Section 2.2 motivates the 128-bit generator by the inadequacy of a
"well known RNG with special parameters r = 40 and A = 5**17" whose
period ``2**38 ≈ 2.75e11`` can be exhausted by a *single* realization.
This module implements that generator, a 64-bit sibling, the classic
MINSTD generator, and von Neumann's middle-square method (a historical
generator the statistical battery should reject), so the quality and
period-exhaustion benchmarks have concrete comparators.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "SmallLcg",
    "legacy40",
    "lcg64",
    "MinStd",
    "MiddleSquare",
]


class SmallLcg:
    """Multiplicative congruential generator modulo ``2**r`` for small r.

    Same recurrence family as the 128-bit core (paper formula (6)) but
    parameterized, so period-exhaustion experiments can use generators
    whose orbit actually fits in a benchmark run.

    Args:
        modulus_bits: Word size ``r``; period is ``2**(r-2)``.
        multiplier: Odd multiplier ``A``.
        state: Odd initial state ``u_0``.
    """

    __slots__ = ("_state", "_multiplier", "_mask", "_bits", "_count")

    def __init__(self, modulus_bits: int, multiplier: int,
                 state: int = 1) -> None:
        if modulus_bits < 3:
            raise ConfigurationError(
                f"modulus must have at least 3 bits, got {modulus_bits}")
        if multiplier % 2 == 0 or state % 2 == 0:
            raise ConfigurationError("multiplier and state must be odd")
        self._bits = modulus_bits
        self._mask = (1 << modulus_bits) - 1
        self._multiplier = multiplier & self._mask
        self._state = state & self._mask
        self._count = 0

    @property
    def period(self) -> int:
        """Orbit length ``2**(r-2)`` of the generator."""
        return 1 << (self._bits - 2)

    @property
    def state(self) -> int:
        """Current state ``u_k``."""
        return self._state

    @property
    def multiplier(self) -> int:
        """The multiplier ``A``."""
        return self._multiplier

    @property
    def modulus_bits(self) -> int:
        """Word size ``r``."""
        return self._bits

    @property
    def count(self) -> int:
        """Number of draws taken so far."""
        return self._count

    @property
    def wrapped(self) -> bool:
        """Whether the stream has consumed at least one full period."""
        return self._count >= self.period

    def next_raw(self) -> int:
        """Advance once and return the new state."""
        self._state = (self._state * self._multiplier) & self._mask
        self._count += 1
        return self._state

    def random(self) -> float:
        """Return the next value of ``u_k * 2**-r`` as a double in (0, 1)."""
        raw = self.next_raw()
        value = raw * 2.0 ** -self._bits
        if value == 0.0:
            return 2.0 ** -self._bits
        return value

    def block(self, size: int) -> np.ndarray:
        """Return the next ``size`` draws as a float64 array."""
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.random()
        return out

    def jumped(self, steps: int) -> "SmallLcg":
        """Return a clone advanced ``steps`` draws ahead."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        head = (self._state
                * pow(self._multiplier, steps, self._mask + 1)) & self._mask
        return SmallLcg(self._bits, self._multiplier, head)

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.random()

    def __repr__(self) -> str:
        return (f"SmallLcg(bits={self._bits}, "
                f"multiplier={self._multiplier}, count={self._count})")


def legacy40(state: int = 1) -> SmallLcg:
    """The paper's insufficient baseline: ``r = 40``, ``A = 5**17``.

    Period ``2**38 ≈ 2.75e11`` — small enough that a single heavy
    realization can consume it entirely (section 2.2).
    """
    return SmallLcg(40, pow(5, 17, 1 << 40), state)


def lcg64(state: int = 1) -> SmallLcg:
    """A 64-bit member of the same family: ``r = 64``, ``A = 5**19``.

    Period ``2**62``; adequate for serial work, still far short of the
    128-bit generator used by PARMONC.
    """
    return SmallLcg(64, pow(5, 19, 1 << 64), state)


class MinStd:
    """Park–Miller MINSTD: ``x_{k+1} = 16807 x_k mod (2**31 - 1)``.

    A prime-modulus baseline with period ``2**31 - 2``; included so the
    quality battery compares the power-of-two family against the other
    classic LCG family.
    """

    _MODULUS = (1 << 31) - 1
    _MULTIPLIER = 16807

    __slots__ = ("_state", "_count")

    def __init__(self, state: int = 1) -> None:
        state %= self._MODULUS
        if state == 0:
            raise ConfigurationError("MINSTD state must be nonzero mod 2**31-1")
        self._state = state
        self._count = 0

    @property
    def period(self) -> int:
        """Orbit length ``2**31 - 2``."""
        return self._MODULUS - 1

    @property
    def state(self) -> int:
        """Current state."""
        return self._state

    @property
    def count(self) -> int:
        """Number of draws taken so far."""
        return self._count

    def next_raw(self) -> int:
        """Advance once and return the new state."""
        self._state = (self._state * self._MULTIPLIER) % self._MODULUS
        self._count += 1
        return self._state

    def random(self) -> float:
        """Return the next value in (0, 1)."""
        return self.next_raw() / self._MODULUS

    def block(self, size: int) -> np.ndarray:
        """Return the next ``size`` draws as a float64 array."""
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.random()
        return out

    def __repr__(self) -> str:
        return f"MinStd(state={self._state}, count={self._count})"


class MiddleSquare:
    """Von Neumann's middle-square method — a deliberately bad generator.

    Kept as a negative control: a statistical battery that fails to
    reject middle-square (which collapses into short cycles and zero
    absorption) would be too weak to certify anything.
    """

    __slots__ = ("_state", "_digits", "_count")

    def __init__(self, state: int = 675248, digits: int = 6) -> None:
        if digits < 2 or digits % 2 != 0:
            raise ConfigurationError(
                f"digits must be an even integer >= 2, got {digits}")
        if not 0 <= state < 10 ** digits:
            raise ConfigurationError(
                f"state must have at most {digits} digits, got {state}")
        self._state = state
        self._digits = digits
        self._count = 0

    @property
    def state(self) -> int:
        """Current state."""
        return self._state

    @property
    def count(self) -> int:
        """Number of draws taken so far."""
        return self._count

    def next_raw(self) -> int:
        """Advance once and return the new state."""
        squared = self._state * self._state
        # Take the middle `digits` digits of the 2*digits-digit square.
        shift = 10 ** (self._digits // 2)
        self._state = (squared // shift) % (10 ** self._digits)
        self._count += 1
        return self._state

    def random(self) -> float:
        """Return the next value in [0, 1) — zeros included, by design."""
        return self.next_raw() / 10 ** self._digits

    def block(self, size: int) -> np.ndarray:
        """Return the next ``size`` draws as a float64 array."""
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.random()
        return out

    def __repr__(self) -> str:
        return f"MiddleSquare(state={self._state}, digits={self._digits})"
