"""The 128-bit multiplicative congruential generator behind ``rnd128``.

This module implements the scalar reference generator.  Exact Python
integers stand in for the 64-bit integer arithmetic of the original
FORTRAN implementation; the produced double-precision outputs are the
same.  A numpy-vectorized, bit-identical block generator lives in
:mod:`repro.rng.vectorized`.
"""

from __future__ import annotations

import warnings
from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError, PeriodWarning
from repro.rng.multiplier import (
    BASE_MULTIPLIER,
    MODULUS_BITS,
    RECOMMENDED_LIMIT,
    STATE_MASK,
    jump_multiplier,
)

__all__ = ["Lcg128", "TOP_SHIFT", "state_to_unit",
           "VECTOR_BLOCK_THRESHOLD"]

#: Block sizes at or above this delegate to the vectorized generator;
#: below it, the limb set-up cost exceeds the scalar loop's.
VECTOR_BLOCK_THRESHOLD = 256

#: Number of low bits discarded when converting a 128-bit state to a
#: 53-bit double mantissa: ``128 - 53``.
TOP_SHIFT = MODULUS_BITS - 53

#: Scale factor ``2**-53`` applied to the top 53 state bits.
_UNIT_SCALE = 2.0 ** -53

#: Smallest value ever returned; substituted when the top 53 bits are zero
#: so that outputs stay inside the open interval (0, 1).
_MIN_UNIT = 2.0 ** -53


def state_to_unit(state: int) -> float:
    """Map a 128-bit generator state to a double in the open interval (0, 1).

    The paper defines ``alpha_k = u_k * 2**-128``; a double keeps only the
    top 53 bits of that ratio, so we use them directly.  States whose top
    53 bits are all zero (probability ``2**-53`` per draw) are clamped to
    ``2**-53`` to honour the open-interval contract of base random numbers.
    """
    value = (state >> TOP_SHIFT) * _UNIT_SCALE
    if value == 0.0:
        return _MIN_UNIT
    return value


class Lcg128:
    """Multiplicative congruential generator modulo ``2**128``.

    Implements paper formula (6): ``u_{k+1} = u_k * A (mod 2**128)`` with
    ``A = 5**101 (mod 2**128)`` by default and ``u_0 = 1``.  The period is
    ``2**126`` and only the first half is recommended; :meth:`random`
    emits a single :class:`~repro.exceptions.PeriodWarning` if a stream
    ever crosses that boundary.

    The generator is deliberately tiny and explicit: state, multiplier
    and a draw counter.  Stream placement (experiments / processors /
    realizations) is the job of :mod:`repro.rng.streams`, which builds
    instances of this class positioned at the right point of the general
    sequence.

    Args:
        state: Initial state ``u_0``; must be odd (even states fall out
            of the maximal-period orbit).  Defaults to 1, the paper's
            ``u_0``.
        multiplier: The one-step multiplier ``A``; must be odd.

    Example:
        >>> gen = Lcg128()
        >>> 0.0 < gen.random() < 1.0
        True
    """

    __slots__ = ("_state", "_multiplier", "_count", "_period_warned")

    def __init__(self, state: int = 1,
                 multiplier: int = BASE_MULTIPLIER) -> None:
        if not isinstance(state, int) or not isinstance(multiplier, int):
            raise ConfigurationError("state and multiplier must be integers")
        state &= STATE_MASK
        if state % 2 == 0:
            raise ConfigurationError(
                f"initial state must be odd to stay on the maximal-period "
                f"orbit, got {state}")
        if multiplier % 2 == 0:
            raise ConfigurationError(
                f"multiplier must be odd, got an even value")
        self._state = state
        self._multiplier = multiplier & STATE_MASK
        self._count = 0
        self._period_warned = False

    # ------------------------------------------------------------------
    # Introspection

    @property
    def state(self) -> int:
        """Current 128-bit state ``u_k`` (the *next* output's source)."""
        return self._state

    @property
    def multiplier(self) -> int:
        """The one-step multiplier ``A``."""
        return self._multiplier

    @property
    def count(self) -> int:
        """Number of draws taken from this generator instance."""
        return self._count

    def __repr__(self) -> str:
        return (f"Lcg128(state={self._state:#034x}, "
                f"count={self._count})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lcg128):
            return NotImplemented
        return (self._state == other._state
                and self._multiplier == other._multiplier)

    def __hash__(self) -> int:
        return hash((self._state, self._multiplier))

    # ------------------------------------------------------------------
    # Drawing

    def next_raw(self) -> int:
        """Advance once and return the new 128-bit state ``u_{k+1}``."""
        self._state = (self._state * self._multiplier) & STATE_MASK
        self._count += 1
        if self._count == RECOMMENDED_LIMIT and not self._period_warned:
            self._period_warned = True
            warnings.warn(
                "generator consumed the recommended first half of its "
                "period (2**125 draws); statistical quality beyond this "
                "point is not guaranteed", PeriodWarning, stacklevel=2)
        return self._state

    def random(self) -> float:
        """Return the next base random number, uniform on (0, 1).

        This is the Python counterpart of the paper's ``rnd128()``.
        """
        return state_to_unit(self.next_raw())

    def block(self, size: int) -> np.ndarray:
        """Return the next ``size`` base random numbers as a float64 array.

        Semantically identical to calling :meth:`random` ``size`` times.
        Blocks of :data:`VECTOR_BLOCK_THRESHOLD` or more delegate to the
        bit-identical vectorized generator in
        :mod:`repro.rng.vectorized`; smaller blocks keep the scalar loop,
        whose per-draw cost is lower than the limb set-up.
        """
        if size < 0:
            raise ConfigurationError(f"block size must be >= 0, got {size}")
        if size >= VECTOR_BLOCK_THRESHOLD:
            # Imported lazily: repro.rng.vectorized imports this module.
            from repro.rng.vectorized import generate_block
            values, self._state = generate_block(self._state, size,
                                                 self._multiplier)
            before = self._count
            self._count += size
            if before < RECOMMENDED_LIMIT <= self._count \
                    and not self._period_warned:
                self._period_warned = True
                warnings.warn(
                    "generator consumed the recommended first half of its "
                    "period (2**125 draws); statistical quality beyond "
                    "this point is not guaranteed", PeriodWarning,
                    stacklevel=2)
            return values
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.random()
        return out

    def __iter__(self) -> Iterator[float]:
        """Iterate over base random numbers indefinitely."""
        while True:
            yield self.random()

    # ------------------------------------------------------------------
    # Stream placement

    def jump(self, steps: int) -> None:
        """Advance the stream by ``steps`` draws in O(log steps) time.

        Uses the leap identity ``u_{k+n} = u_k * A**n (mod 2**128)``
        (paper formula (8)).  The draw counter advances by ``steps``.
        """
        if steps < 0:
            raise ConfigurationError(
                f"cannot jump backwards, got steps={steps}")
        self._state = (self._state
                       * jump_multiplier(steps, self._multiplier)) & STATE_MASK
        self._count += steps

    def jumped(self, steps: int) -> "Lcg128":
        """Return a new generator ``steps`` draws ahead of this one.

        The receiver is not modified; the clone starts with a zero draw
        counter, which makes it suitable as the head of a subsequence.
        """
        clone = Lcg128(
            (self._state * jump_multiplier(steps, self._multiplier))
            & STATE_MASK,
            self._multiplier)
        return clone

    def spawn(self, index: int, leap_multiplier: int) -> "Lcg128":
        """Return the head of the ``index``-th subsequence under this stream.

        ``leap_multiplier`` must be ``A(n)`` for the desired leap length
        ``n``; the new stream starts ``index * n`` draws ahead, i.e. at
        state ``u * A(n)**index``.
        """
        if index < 0:
            raise ConfigurationError(
                f"subsequence index must be >= 0, got {index}")
        head = (self._state * pow(leap_multiplier, index,
                                  STATE_MASK + 1)) & STATE_MASK
        return Lcg128(head, self._multiplier)

    # ------------------------------------------------------------------
    # Persistence

    def getstate(self) -> tuple[int, int, int]:
        """Return ``(state, multiplier, count)`` for checkpointing."""
        return (self._state, self._multiplier, self._count)

    def setstate(self, saved: tuple[int, int, int]) -> None:
        """Restore a checkpoint produced by :meth:`getstate`."""
        state, multiplier, count = saved
        if state % 2 == 0 or multiplier % 2 == 0:
            raise ConfigurationError(
                "checkpoint contains an even state or multiplier")
        if count < 0:
            raise ConfigurationError(
                f"checkpoint draw count must be >= 0, got {count}")
        self._state = state & STATE_MASK
        self._multiplier = multiplier & STATE_MASK
        self._count = count
        self._period_warned = count >= RECOMMENDED_LIMIT
