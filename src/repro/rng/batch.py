"""A block of realization substreams advancing in lock-step.

The batched realization engine runs ``B`` realizations per inner-loop
iteration; each realization still consumes base random numbers from its
own disjoint substream of the hierarchy.  :class:`BatchStreams` is the
object a batch realization routine receives instead of a scalar
generator: it holds the ``B`` stream states as ``(B, 4)`` little-endian
32-bit limbs and advances all of them together, so drawing the ``j``-th
uniform of every stream is one vectorized 128-bit multiply.

Bit-identity contract: column ``j`` of :meth:`BatchStreams.uniforms` is
exactly what the ``j``-th call to :meth:`repro.rng.lcg128.Lcg128.random`
returns on a scalar generator positioned at the same head state.  The
property is what lets a batched run reproduce a scalar run's estimates
to the last bit.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import BASE_MULTIPLIER, STATE_MASK
from repro.rng.vectorized import (
    int_to_limbs,
    limbs_to_int,
    limbs_to_unit,
    mul_mod_2_128,
)

__all__ = ["BatchStreams"]


class BatchStreams:
    """``B`` generator streams drawn from together, one per realization.

    Args:
        heads: ``(B, 4)`` uint64 array of limb-decomposed head states,
            one row per stream (as produced by
            :meth:`repro.rng.streams.ProcessorStream.realization_heads`).
        multiplier: The one-step multiplier ``A`` shared by all streams.

    Example:
        >>> from repro.rng.streams import StreamTree
        >>> streams = StreamTree().experiment(0).processor(0) \\
        ...                       .realization_block(0, 4)
        >>> streams.uniforms(2).shape
        (4, 2)
    """

    def __init__(self, heads: np.ndarray,
                 multiplier: int = BASE_MULTIPLIER) -> None:
        heads = np.asarray(heads, dtype=np.uint64)
        if heads.ndim != 2 or heads.shape[1] != 4:
            raise ConfigurationError(
                f"heads must be a (B, 4) limb array, got shape "
                f"{heads.shape}")
        if multiplier % 2 == 0:
            raise ConfigurationError("multiplier must be odd")
        self._states = np.ascontiguousarray(heads).copy()
        self._multiplier = multiplier & STATE_MASK
        self._mult_limbs = int_to_limbs(self._multiplier)
        self._count = 0

    @property
    def size(self) -> int:
        """Number of streams ``B`` in the block."""
        return self._states.shape[0]

    def __len__(self) -> int:
        return self._states.shape[0]

    @property
    def multiplier(self) -> int:
        """The shared one-step multiplier ``A``."""
        return self._multiplier

    @property
    def count(self) -> int:
        """Draws taken from each stream so far."""
        return self._count

    def uniforms(self, count: int) -> np.ndarray:
        """Return the next ``count`` draws of every stream.

        Column ``j`` of the ``(B, count)`` result holds each stream's
        ``j``-th upcoming base random number — bit-identical to ``count``
        successive :meth:`~repro.rng.lcg128.Lcg128.random` calls on a
        scalar generator at the same position.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        out = np.empty((self.size, count), dtype=np.float64)
        states = self._states
        for j in range(count):
            states = mul_mod_2_128(states, self._mult_limbs)
            out[:, j] = limbs_to_unit(states)
        self._states = states
        self._count += count
        return out

    def states(self) -> list[int]:
        """Current 128-bit state of every stream, as Python integers."""
        return [limbs_to_int(self._states[i]) for i in range(self.size)]

    def generators(self) -> list[Lcg128]:
        """Scalar generators continuing each stream from its position.

        The generic scalar-to-batch adapter iterates over these, so any
        one-argument realization routine can ride the batched loop
        without a vectorized kernel.
        """
        return [Lcg128(state, self._multiplier) for state in self.states()]

    def __repr__(self) -> str:
        return f"BatchStreams(size={self.size}, count={self._count})"
