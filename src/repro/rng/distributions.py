"""Transformations of base random numbers into common distributions.

Monte Carlo estimators are functions of base uniforms (paper formula
(2)): ``zeta = zeta(alpha_1, ..., alpha_k)``.  This module collects the
standard transformations used by the bundled applications, in two
flavours: scalar functions drawing from any generator exposing
``random()`` (such as :class:`~repro.rng.lcg128.Lcg128`), and vectorized
functions transforming pre-drawn uniform arrays.

All transformations are deterministic functions of the consumed
uniforms, so a realization simulated from a given stream is exactly
reproducible — the property PARMONC's realization subsequences rely on.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "UniformSource",
    "uniform",
    "normal_pair",
    "normal",
    "exponential",
    "bernoulli",
    "poisson",
    "discrete",
    "normals_from_uniforms",
    "exponentials_from_uniforms",
]


class UniformSource(Protocol):
    """Anything that yields base random numbers via ``random()``."""

    def random(self) -> float:
        """Return the next uniform value on (0, 1)."""
        ...


def uniform(rng: UniformSource, low: float = 0.0, high: float = 1.0) -> float:
    """Return a uniform draw on ``[low, high)``."""
    if not high > low:
        raise ConfigurationError(f"need high > low, got [{low}, {high})")
    return low + (high - low) * rng.random()


def normal_pair(rng: UniformSource) -> tuple[float, float]:
    """Return two independent standard normals via Box–Muller.

    Consumes exactly two base random numbers, which keeps the uniform
    budget of a realization predictable (unlike rejection methods).
    """
    u1 = rng.random()
    u2 = rng.random()
    radius = math.sqrt(-2.0 * math.log(u1))
    angle = 2.0 * math.pi * u2
    return radius * math.cos(angle), radius * math.sin(angle)


def normal(rng: UniformSource, mean: float = 0.0, stddev: float = 1.0) -> float:
    """Return one normal draw; consumes two base random numbers.

    The second Box–Muller variate is intentionally discarded rather than
    cached: caching would make the uniform consumption of a realization
    depend on call history, breaking replayability of substreams.
    """
    if stddev < 0.0:
        raise ConfigurationError(f"stddev must be >= 0, got {stddev}")
    value, _ = normal_pair(rng)
    return mean + stddev * value


def exponential(rng: UniformSource, rate: float = 1.0) -> float:
    """Return an exponential draw with the given rate via inversion."""
    if rate <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    return -math.log(rng.random()) / rate


def bernoulli(rng: UniformSource, probability: float) -> bool:
    """Return True with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(
            f"probability must be in [0, 1], got {probability}")
    return rng.random() < probability


def poisson(rng: UniformSource, mean: float) -> int:
    """Return a Poisson draw via Knuth's product method.

    Suitable for the moderate means used by the bundled applications;
    consumes a random number of uniforms (on average ``mean + 1``).
    """
    if mean < 0.0:
        raise ConfigurationError(f"mean must be >= 0, got {mean}")
    if mean == 0.0:
        return 0
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def discrete(rng: UniformSource, weights: Sequence[float]) -> int:
    """Return an index drawn with probability proportional to ``weights``."""
    if not weights:
        raise ConfigurationError("weights must be non-empty")
    total = float(sum(weights))
    if total <= 0.0 or any(w < 0.0 for w in weights):
        raise ConfigurationError(
            "weights must be non-negative with a positive sum")
    target = rng.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if target < cumulative:
            return index
    return len(weights) - 1  # guard against rounding at the top end


def normals_from_uniforms(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """Vectorized Box–Muller: map two uniform arrays to one normal array.

    Matches the scalar :func:`normal` convention (cosine branch only), so
    a vectorized realization consumes uniforms identically to its scalar
    twin.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.asarray(u2, dtype=np.float64)
    if u1.shape != u2.shape:
        raise ConfigurationError(
            f"uniform arrays must have equal shapes, "
            f"got {u1.shape} and {u2.shape}")
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def exponentials_from_uniforms(u: np.ndarray, rate: float = 1.0) -> np.ndarray:
    """Vectorized inversion sampling of the exponential distribution."""
    if rate <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    return -np.log(np.asarray(u, dtype=np.float64)) / rate
