"""Estimators, mergeable statistics and formula-(5) merging."""

from __future__ import annotations

from repro.stats.accumulator import (
    MOMENT_WORDS_PER_ENTRY,
    MomentAccumulator,
    MomentSnapshot,
)
from repro.stats.compare import (
    ComparisonResult,
    compare_means,
    compare_variances,
    efficiency_gain,
)
from repro.stats.covariance import CovarianceAccumulator
from repro.stats.estimators import (
    CONFIDENCE_FACTOR,
    CONFIDENCE_LEVEL,
    Estimates,
    computational_cost,
    confidence_factor,
    estimates_from_moments,
    required_sample_volume,
)
from repro.stats.merging import (
    combine_estimates,
    merge_snapshots,
    merge_statistic_maps,
    merge_statistics,
)
from repro.stats.statistic import (
    DEFAULT_STATISTICS,
    Counter,
    Covariance,
    Extrema,
    Histogram,
    Moments,
    Statistic,
    StatisticSet,
    create_statistic,
    normalize_statistics,
    payload_map,
    register_statistic,
    statistic_class,
    statistic_from_payload,
    statistic_kinds,
    statistics_from_payload_map,
)

__all__ = [
    "MomentAccumulator",
    "MomentSnapshot",
    "MOMENT_WORDS_PER_ENTRY",
    "Estimates",
    "estimates_from_moments",
    "merge_snapshots",
    "merge_statistics",
    "merge_statistic_maps",
    "combine_estimates",
    "computational_cost",
    "confidence_factor",
    "required_sample_volume",
    "CONFIDENCE_FACTOR",
    "CONFIDENCE_LEVEL",
    "ComparisonResult",
    "compare_means",
    "compare_variances",
    "efficiency_gain",
    "CovarianceAccumulator",
    "DEFAULT_STATISTICS",
    "Statistic",
    "StatisticSet",
    "Moments",
    "Covariance",
    "Histogram",
    "Extrema",
    "Counter",
    "register_statistic",
    "statistic_class",
    "statistic_kinds",
    "statistic_from_payload",
    "statistics_from_payload_map",
    "payload_map",
    "create_statistic",
    "normalize_statistics",
]
