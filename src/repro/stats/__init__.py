"""Estimators, moment accumulation and formula-(5) merging."""

from __future__ import annotations

from repro.stats.accumulator import MomentAccumulator, MomentSnapshot
from repro.stats.compare import (
    ComparisonResult,
    compare_means,
    compare_variances,
    efficiency_gain,
)
from repro.stats.covariance import CovarianceAccumulator
from repro.stats.estimators import (
    CONFIDENCE_FACTOR,
    CONFIDENCE_LEVEL,
    Estimates,
    computational_cost,
    confidence_factor,
    estimates_from_moments,
    required_sample_volume,
)
from repro.stats.merging import combine_estimates, merge_snapshots

__all__ = [
    "MomentAccumulator",
    "MomentSnapshot",
    "Estimates",
    "estimates_from_moments",
    "merge_snapshots",
    "combine_estimates",
    "computational_cost",
    "confidence_factor",
    "required_sample_volume",
    "CONFIDENCE_FACTOR",
    "CONFIDENCE_LEVEL",
    "ComparisonResult",
    "compare_means",
    "compare_variances",
    "efficiency_gain",
    "CovarianceAccumulator",
]
