"""Formula (5): merging per-processor sample summaries.

The collector receives snapshots ``(sum1_m, sum2_m, l_m)`` from the
``M`` processors (sample volumes may differ — slower processors simply
contribute less) and forms

    mean_ij = (1/L) * sum_m sum1_m[ij],   L = sum_m l_m,

and likewise for the second moments.  Because snapshots carry *sums*,
merging is exact and associative: merging two sessions of a resumed
simulation is the same arithmetic as merging two processors.

This module is the single source of truth for those pairwise folds —
the collector, ``manaver`` recovery and session resumption all merge
through it, for plain moment snapshots (:func:`merge_snapshots`) and
for the generalized :class:`~repro.stats.statistic.Statistic` payloads
(:func:`merge_statistics`, :func:`merge_statistic_maps`) alike.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import MomentSnapshot
from repro.stats.estimators import Estimates, estimates_from_moments

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stats.statistic import Statistic

__all__ = ["merge_snapshots", "merge_statistics", "merge_statistic_maps",
           "combine_estimates"]


def merge_snapshots(snapshots: Iterable[MomentSnapshot]) -> MomentSnapshot:
    """Merge snapshots from processors and/or sessions into one.

    Args:
        snapshots: Any number of snapshots with identical shapes.

    Returns:
        A snapshot whose moments are the elementwise sums and whose
        volume is the total sample volume ``L``.

    Raises:
        ConfigurationError: If no snapshot is supplied or shapes differ.
    """
    merged_sum1: np.ndarray | None = None
    merged_sum2: np.ndarray | None = None
    volume = 0
    compute_time = 0.0
    count = 0
    for snapshot in snapshots:
        count += 1
        if merged_sum1 is None:
            merged_sum1 = snapshot.sum1.astype(np.float64).copy()
            merged_sum2 = snapshot.sum2.astype(np.float64).copy()
        else:
            if snapshot.shape != merged_sum1.shape:
                raise ConfigurationError(
                    f"cannot merge snapshots of shapes "
                    f"{merged_sum1.shape} and {snapshot.shape}")
            merged_sum1 += snapshot.sum1
            merged_sum2 += snapshot.sum2
        volume += snapshot.volume
        compute_time += snapshot.compute_time
    if count == 0 or merged_sum1 is None:
        raise ConfigurationError("merge_snapshots needs at least one snapshot")
    return MomentSnapshot(sum1=merged_sum1, sum2=merged_sum2,
                          volume=volume, compute_time=compute_time)


def merge_statistics(statistics: Iterable["Statistic"]) -> "Statistic":
    """Merge statistics of one kind into a fresh cumulative total.

    The inputs are never mutated: the first statistic is snapshotted
    and the rest are folded into the copy, strictly in iteration
    order — the generalized formula-(5) fold, so rank-ordered inputs
    give bit-identical totals on every backend.

    Raises:
        ConfigurationError: If no statistic is supplied, or kinds or
            shapes differ.
    """
    merged = None
    for statistic in statistics:
        if merged is None:
            merged = statistic.snapshot()
        else:
            merged.merge(statistic)
    if merged is None:
        raise ConfigurationError(
            "merge_statistics needs at least one statistic")
    return merged


def merge_statistic_maps(
        maps: Sequence[Mapping[str, "Statistic"]]
        ) -> dict[str, "Statistic"]:
    """Merge ``{kind: statistic}`` maps from processors or sessions.

    Kinds form the union of all maps — a statistic only some sources
    carry (a resumed run that dropped a kind, a partially-delivered
    subtotal) still survives with whatever sample it covers.  Within a
    kind the merge order is the order of ``maps``, so callers pass
    rank- or session-ordered sequences for reproducible totals.
    """
    merged: dict[str, "Statistic"] = {}
    for statistics in maps:
        for kind, statistic in statistics.items():
            if kind in merged:
                merged[kind].merge(statistic)
            else:
                merged[kind] = statistic.snapshot()
    return merged


def combine_estimates(snapshots: Sequence[MomentSnapshot]) -> Estimates:
    """Merge snapshots and convert straight to result matrices.

    Convenience wrapper equal to
    ``merge_snapshots(snapshots).estimates()`` with a clearer error when
    the merged volume is zero.
    """
    merged = merge_snapshots(snapshots)
    if merged.volume == 0:
        raise ConfigurationError(
            "merged snapshots contain zero realizations; nothing to "
            "estimate")
    return estimates_from_moments(merged.sum1, merged.sum2, merged.volume,
                                  merged.compute_time)
