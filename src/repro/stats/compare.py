"""Comparing estimators: is method A really better than method B?

Variance-reduction claims and cross-configuration comparisons need
more than eyeballing two numbers.  These helpers work directly on the
summary statistics PARMONC already computes (means, variances, sample
volumes per matrix entry), so two finished runs can be compared without
re-simulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _scipy_stats

from repro.exceptions import ConfigurationError
from repro.stats.estimators import Estimates

__all__ = ["ComparisonResult", "compare_means", "compare_variances",
           "efficiency_gain"]


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-estimator comparison.

    Attributes:
        statistic: The test statistic (Welch t, or the F ratio).
        p_value: Two-sided p-value.
        alpha: Significance level used for :attr:`significant`.
        detail: Human-readable one-liner.
    """

    statistic: float
    p_value: float
    alpha: float
    detail: str

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < self.alpha

    def __str__(self) -> str:
        verdict = ("significant" if self.significant
                   else "not significant")
        return (f"{self.detail}  (stat={self.statistic:.4f}, "
                f"p={self.p_value:.4g}, {verdict} at "
                f"alpha={self.alpha})")


def _entry(estimates: Estimates, row: int, col: int
           ) -> tuple[float, float, int]:
    shape = estimates.shape
    if not (0 <= row < shape[0] and 0 <= col < shape[1]):
        raise ConfigurationError(
            f"entry ({row}, {col}) outside matrix shape {shape}")
    return (float(estimates.mean[row, col]),
            float(estimates.variance[row, col]), estimates.volume)


def compare_means(a: Estimates, b: Estimates, row: int = 0, col: int = 0,
                  alpha: float = 0.01) -> ComparisonResult:
    """Welch's test for equality of two estimated expectations.

    Both estimators must target the *same* quantity (e.g. a plain and a
    variance-reduced run of one problem); a significant result flags a
    bug — a bias introduced by one of the methods.
    """
    mean_a, var_a, n_a = _entry(a, row, col)
    mean_b, var_b, n_b = _entry(b, row, col)
    if n_a < 2 or n_b < 2:
        raise ConfigurationError(
            "comparison needs at least 2 realizations per estimator")
    se_sq = var_a / n_a + var_b / n_b
    if se_sq == 0.0:
        same = mean_a == mean_b
        return ComparisonResult(
            statistic=0.0 if same else math.inf,
            p_value=1.0 if same else 0.0, alpha=alpha,
            detail=f"means {mean_a:.6g} vs {mean_b:.6g} "
                   f"(both deterministic)")
    statistic = (mean_a - mean_b) / math.sqrt(se_sq)
    # Welch–Satterthwaite degrees of freedom.
    numerator = se_sq ** 2
    denominator = ((var_a / n_a) ** 2 / max(n_a - 1, 1)
                   + (var_b / n_b) ** 2 / max(n_b - 1, 1))
    df = numerator / denominator if denominator > 0 else n_a + n_b - 2
    p_value = float(2.0 * _scipy_stats.t.sf(abs(statistic), df))
    return ComparisonResult(
        statistic=float(statistic), p_value=p_value, alpha=alpha,
        detail=f"means {mean_a:.6g} vs {mean_b:.6g}, "
               f"diff {mean_a - mean_b:.3g}")


def compare_variances(a: Estimates, b: Estimates, row: int = 0,
                      col: int = 0, alpha: float = 0.01
                      ) -> ComparisonResult:
    """F-test: is estimator ``a``'s per-realization variance smaller?

    One-sided alternative ``Var_a < Var_b`` — the claim a variance
    reduction method makes.  Assumes approximate normality of the
    realizations; for heavy-tailed workloads treat the p-value as
    indicative.
    """
    _, var_a, n_a = _entry(a, row, col)
    _, var_b, n_b = _entry(b, row, col)
    if var_b == 0.0:
        raise ConfigurationError(
            "comparator variance is zero; nothing can beat it")
    ratio = var_a / var_b
    p_value = float(_scipy_stats.f.cdf(ratio, n_a - 1, n_b - 1))
    return ComparisonResult(
        statistic=float(ratio), p_value=p_value, alpha=alpha,
        detail=f"variance ratio a/b = {ratio:.4g}")


def efficiency_gain(a: Estimates, b: Estimates, row: int = 0,
                    col: int = 0, cost_a: float = 1.0,
                    cost_b: float = 1.0) -> float:
    """Relative efficiency of ``a`` over ``b`` in the paper's cost model.

    ``gain = (Var_b * cost_b) / (Var_a * cost_a)`` — how many times
    cheaper estimator ``a`` reaches a given error (C = tau * Var, §2.2).
    A gain of 60 means one processor running ``a`` matches sixty
    running ``b``.
    """
    if cost_a <= 0.0 or cost_b <= 0.0:
        raise ConfigurationError("costs must be positive")
    _, var_a, _ = _entry(a, row, col)
    _, var_b, _ = _entry(b, row, col)
    if var_a == 0.0:
        return math.inf
    return (var_b * cost_b) / (var_a * cost_a)
