"""Mergeable statistics: the generalized worker-to-collector payload.

PARMONC's exchange historically shipped exactly one summary — the
cumulative moment pair ``(sum1, sum2, l_m)``.  This module generalizes
that into a :class:`Statistic` protocol: a mergeable, serializable
cumulative summary of a sample of realization matrices.  Anything that
satisfies the protocol can ride the existing exchange end-to-end —
worker accumulation, message payloads, collector merging, save-points,
``manaver`` recovery and ``parmonc-report`` rendering — because every
layer of the runtime talks to the protocol, not to moments.

A statistic must be

* **cumulative** — ``update(values, count)`` folds realizations in;
  snapshots carry totals, never averages, so collector-side merging
  loses no precision (the formula-(5) argument, generalized);
* **exactly mergeable** — ``merge(other)`` of two disjoint samples
  equals accumulating their union, so per-processor subtotals, resumed
  sessions and ``manaver`` recovery are all the same arithmetic;
* **serializable** — ``to_payload()`` / ``from_payload()`` round-trip
  through plain JSON types for save-points and subtotal files; and
* **costed** — ``nbytes`` models the statistic's wire size, feeding
  the simulated cluster's exchange cost model.

Four implementations ship besides the default :class:`Moments`:
:class:`Covariance` (full cross-moments of the flattened entries),
:class:`Histogram` (fixed-bin counts with underflow/overflow),
:class:`Extrema` (per-entry min/max) and :class:`Counter` (per-entry
sign counts).  User statistics register with
:func:`register_statistic` and are selected per run via
``parmonc(..., statistics=[...])``.

Batched accumulation (``update`` with ``count > 1``) is bit-identical
to repeated single updates for every shipped statistic: integer and
min/max folds are associative exactly, and the floating-point folds
(:class:`Moments`, :class:`Covariance`) use the same strictly
sequential chunked reduction as
:meth:`~repro.stats.accumulator.MomentAccumulator.add_batch`.  All
backends therefore produce identical statistics for the same seed,
whatever block widths their schedulers happen to pick.
"""

from __future__ import annotations

from typing import ClassVar, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import (
    MOMENT_WORDS_PER_ENTRY,
    MomentAccumulator,
    MomentSnapshot,
)
from repro.stats.covariance import CovarianceAccumulator

__all__ = [
    "DEFAULT_STATISTICS",
    "Counter",
    "Covariance",
    "Extrema",
    "Histogram",
    "Moments",
    "Statistic",
    "StatisticSet",
    "create_statistic",
    "normalize_statistics",
    "payload_map",
    "register_statistic",
    "statistic_class",
    "statistic_from_payload",
    "statistic_kinds",
    "statistics_from_payload_map",
]

#: The statistics every run tracks unless told otherwise.
DEFAULT_STATISTICS: tuple[str, ...] = ("moments",)


class Statistic:
    """A mergeable, serializable cumulative summary of realizations.

    Subclasses set the class attribute :attr:`kind` (the registry key
    and payload tag), implement :meth:`_update` and :meth:`_merge`,
    and contribute their state to :meth:`to_payload` /
    :meth:`_restore`.  The base class owns the shared bookkeeping:
    shape validation, volume counting, payload envelope and the
    normalization of scalar/batch inputs.

    Construction is always ``cls(nrow, ncol)`` — the realization
    matrix shape — so the registry can instantiate any statistic for
    any run; parameterized variants (custom histogram ranges, ...)
    subclass and register under their own kind.
    """

    #: Registry key and payload ``"kind"`` tag; subclasses override.
    kind: ClassVar[str] = "abstract"

    def __init__(self, nrow: int, ncol: int) -> None:
        if nrow < 1 or ncol < 1:
            raise ConfigurationError(
                f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
        self._shape = (nrow, ncol)
        self._volume = 0

    # -- protocol ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self._shape

    @property
    def volume(self) -> int:
        """Realizations accumulated so far."""
        return self._volume

    @property
    def nbytes(self) -> int:
        """Modelled wire size of this statistic's cumulative state.

        Feeds the simulated cluster's exchange cost model; the default
        charges eight bytes per state word reported by :meth:`_words`.
        """
        return 8 * self._words()

    def update(self, values, count: int = 1) -> None:
        """Accumulate ``count`` realizations.

        Args:
            values: One ``nrow x ncol`` matrix when ``count`` is 1 (a
                scalar is accepted for 1x1 problems), else a
                ``(count, nrow, ncol)`` stack (a length-``count``
                vector for 1x1 problems).  Non-finite entries reject
                the whole update, leaving the statistic unchanged.
            count: Number of realizations in ``values``.
        """
        matrices = self._normalize(values, count)
        if matrices.shape[0]:
            self._update(matrices)
        self._volume += matrices.shape[0]

    def merge(self, other: "Statistic") -> None:
        """Fold another statistic of the same kind and shape into this.

        Exact: merging disjoint samples equals accumulating their
        union, in the order the parts are merged.
        """
        if other.kind != self.kind:
            raise ConfigurationError(
                f"cannot merge statistic kind {other.kind!r} into "
                f"{self.kind!r}")
        if other.shape != self._shape:
            raise ConfigurationError(
                f"cannot merge {self.kind} statistics of shapes "
                f"{self._shape} and {other.shape}")
        self._merge(other)
        self._volume += other.volume

    def snapshot(self) -> "Statistic":
        """An independent copy of the current cumulative state."""
        clone = type(self)(*self._shape)
        clone.merge(self)
        return clone

    def to_payload(self) -> dict:
        """Serialize to plain JSON types (save-points, subtotals)."""
        payload = {
            "kind": self.kind,
            "shape": list(self._shape),
            "volume": int(self.volume),
        }
        payload.update(self._payload())
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Statistic":
        """Rebuild a statistic serialized by :meth:`to_payload`."""
        try:
            if payload.get("kind") != cls.kind:
                raise ValueError(
                    f"payload kind {payload.get('kind')!r} is not "
                    f"{cls.kind!r}")
            nrow, ncol = (int(v) for v in payload["shape"])
            statistic = cls(nrow, ncol)
            statistic._restore(payload)
            statistic._volume = int(payload["volume"])
            if statistic._volume < 0:
                raise ValueError("volume must be >= 0")
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed {cls.kind} statistic payload: {exc}") from exc
        return statistic

    def describe(self) -> str:
        """One-line human summary (``parmonc-report`` fallback)."""
        return f"{self.kind}: volume={self.volume}"

    # -- subclass hooks ----------------------------------------------------

    def _update(self, matrices: np.ndarray) -> None:
        """Fold a non-empty ``(B, nrow, ncol)`` stack into the state."""
        raise NotImplementedError

    def _merge(self, other: "Statistic") -> None:
        """Fold ``other``'s state in (volumes handled by the base)."""
        raise NotImplementedError

    def _payload(self) -> dict:
        """Subclass state for :meth:`to_payload`."""
        raise NotImplementedError

    def _restore(self, payload: dict) -> None:
        """Load subclass state written by :meth:`_payload`."""
        raise NotImplementedError

    def _words(self) -> int:
        """State size in 8-byte words for the :attr:`nbytes` model."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    @property
    def _size(self) -> int:
        return self._shape[0] * self._shape[1]

    def _normalize(self, values, count: int) -> np.ndarray:
        """Coerce ``values`` into a finite ``(count, nrow, ncol)`` stack."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        matrices = np.asarray(values, dtype=np.float64)
        if count == 1:
            if matrices.shape == () and self._shape == (1, 1):
                matrices = matrices.reshape(1, 1)
            if matrices.shape != self._shape:
                raise ConfigurationError(
                    f"realization shape {matrices.shape} does not match "
                    f"the declared {self._shape}")
            matrices = matrices[np.newaxis]
        else:
            if matrices.ndim == 1 and self._shape == (1, 1):
                matrices = matrices.reshape(-1, 1, 1)
            if matrices.ndim != 3 or matrices.shape[1:] != self._shape \
                    or matrices.shape[0] != count:
                raise ConfigurationError(
                    f"batch shape {matrices.shape} does not match the "
                    f"declared ({count}, {self._shape[0]}, "
                    f"{self._shape[1]})")
        if matrices.size and not np.isfinite(matrices).all():
            raise ConfigurationError(
                "realizations contain non-finite values")
        return matrices

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(shape={self._shape}, "
                f"volume={self._volume})")


# ---------------------------------------------------------------------------
# Registry

_REGISTRY: dict[str, type[Statistic]] = {}


def register_statistic(cls: type[Statistic]) -> type[Statistic]:
    """Register a :class:`Statistic` subclass under its ``kind``.

    Usable as a decorator.  Registered kinds are what
    ``parmonc(statistics=[...])`` and ``--statistics`` accept, and what
    save-point payloads deserialize through.  Re-registering the same
    class is a no-op; claiming another class's kind is an error.

    Example:
        >>> @register_statistic                         # doctest: +SKIP
        ... class TailCount(Statistic):
        ...     kind = "tail-count"
    """
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind or kind == "abstract":
        raise ConfigurationError(
            f"statistic class {cls.__name__} must define a non-empty "
            f"'kind' attribute")
    existing = _REGISTRY.get(kind)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"statistic kind {kind!r} is already registered by "
            f"{existing.__name__}")
    _REGISTRY[kind] = cls
    return cls


def statistic_kinds() -> tuple[str, ...]:
    """Every registered statistic kind, in registration order."""
    return tuple(_REGISTRY)


def statistic_class(kind: str) -> type[Statistic]:
    """The registered class for ``kind``."""
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown statistic kind {kind!r}; registered kinds: "
            f"{statistic_kinds()}")
    return cls


def create_statistic(kind: str, nrow: int, ncol: int) -> Statistic:
    """Instantiate a registered statistic for an ``nrow x ncol`` run."""
    return statistic_class(kind)(nrow, ncol)


def normalize_statistics(spec) -> tuple[str, ...]:
    """Canonicalize a user statistics selection.

    Accepts None (the default), a comma-separated string, or a
    sequence of kind names.  The result always lists ``"moments"``
    first — the moment pair drives estimates, completion accounting
    and resumption, so every run carries it — followed by the extra
    kinds in first-mention order, deduplicated.

    Raises:
        ConfigurationError: On unknown or non-string kinds.
    """
    if spec is None:
        return DEFAULT_STATISTICS
    if isinstance(spec, str):
        parts: Sequence = [part.strip() for part in spec.split(",")
                           if part.strip()]
    else:
        parts = list(spec)
    extras: list[str] = []
    for part in parts:
        if not isinstance(part, str):
            raise ConfigurationError(
                f"statistic kinds must be strings, got {part!r}")
        statistic_class(part)
        if part != Moments.kind and part not in extras:
            extras.append(part)
    return (Moments.kind, *extras)


def statistic_from_payload(payload: dict) -> Statistic:
    """Deserialize one statistic payload via the registry."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"statistic payload must be an object, got "
            f"{type(payload).__name__}")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ConfigurationError("statistic payload carries no kind tag")
    return statistic_class(kind).from_payload(payload)


def statistics_from_payload_map(
        payloads: Mapping[str, dict]
        ) -> tuple[dict[str, Statistic], tuple[str, ...]]:
    """Deserialize a ``{kind: payload}`` map from a save-point.

    Returns ``(statistics, unknown)``: the statistics whose kinds are
    registered, plus the kinds that are not — written by a newer
    version or by a custom statistic that is not imported here.  The
    caller decides how loudly to surface the unknowns; they are never
    silently invented or destroyed (the artifact keeps them).
    """
    statistics: dict[str, Statistic] = {}
    unknown: list[str] = []
    for kind, payload in payloads.items():
        if kind not in _REGISTRY:
            unknown.append(kind)
            continue
        statistics[kind] = statistic_from_payload(payload)
    return statistics, tuple(unknown)


def payload_map(statistics: Mapping[str, Statistic]) -> dict[str, dict]:
    """Serialize a ``{kind: statistic}`` map for persistence."""
    return {kind: statistic.to_payload()
            for kind, statistic in statistics.items()}


# ---------------------------------------------------------------------------
# Implementations


@register_statistic
class Moments(Statistic):
    """The default statistic: cumulative first and second moments.

    A thin protocol adapter over
    :class:`~repro.stats.accumulator.MomentAccumulator` — same
    arithmetic, same batched fast path, bit-identical to the
    historical pipeline.  The wire/persistence format is exactly the
    :class:`~repro.stats.accumulator.MomentSnapshot` dictionary plus
    the protocol envelope.
    """

    kind = "moments"

    def __init__(self, nrow: int, ncol: int) -> None:
        super().__init__(nrow, ncol)
        self._accumulator = MomentAccumulator(nrow, ncol)

    @property
    def accumulator(self) -> MomentAccumulator:
        """The wrapped accumulator (the worker hot loop's view)."""
        return self._accumulator

    @property
    def volume(self) -> int:
        return self._accumulator.volume

    def update(self, values, count: int = 1,
               compute_time: float = 0.0) -> None:
        if count == 1:
            self._accumulator.add(values, compute_time=compute_time)
        else:
            self._accumulator.add_batch(values, compute_time=compute_time)

    def merge(self, other: "Statistic") -> None:
        if other.kind != self.kind:
            raise ConfigurationError(
                f"cannot merge statistic kind {other.kind!r} into "
                f"{self.kind!r}")
        self._accumulator.merge_snapshot(other.moment_snapshot())

    def moment_snapshot(self) -> MomentSnapshot:
        """The plain :class:`MomentSnapshot` view of the state."""
        return self._accumulator.snapshot()

    @classmethod
    def from_snapshot(cls, snapshot: MomentSnapshot) -> "Moments":
        """Adapt an existing snapshot into the protocol."""
        moments = cls(*snapshot.shape)
        moments._accumulator.merge_snapshot(snapshot)
        return moments

    def snapshot(self) -> "Moments":
        return Moments.from_snapshot(self.moment_snapshot())

    def to_payload(self) -> dict:
        payload = {"kind": self.kind, "shape": list(self._shape)}
        payload.update(self._accumulator.snapshot().to_dict())
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Moments":
        if payload.get("kind") != cls.kind:
            raise ConfigurationError(
                f"payload kind {payload.get('kind')!r} is not "
                f"{cls.kind!r}")
        return cls.from_snapshot(MomentSnapshot.from_dict(payload))

    def describe(self) -> str:
        return (f"moments: volume={self.volume} "
                f"(mean/variance source, shape "
                f"{self._shape[0]}x{self._shape[1]})")

    def _words(self) -> int:
        return MOMENT_WORDS_PER_ENTRY * self._size


@register_statistic
class Covariance(Statistic):
    """Full cross-moments of the flattened realization entries.

    Promotes :class:`~repro.stats.covariance.CovarianceAccumulator`
    into the exchange: the state is ``(sum, outer, volume)`` — plain
    sums, so merging is exact — and batched updates use the same
    strictly sequential fold as the moment fast path, so batch widths
    never change a single bit.
    """

    kind = "covariance"

    def __init__(self, nrow: int, ncol: int) -> None:
        super().__init__(nrow, ncol)
        self._accumulator = CovarianceAccumulator(nrow, ncol)

    @property
    def accumulator(self) -> CovarianceAccumulator:
        """The wrapped accumulator (correlation/contrast queries)."""
        return self._accumulator

    def _update(self, matrices: np.ndarray) -> None:
        count = matrices.shape[0]
        size = matrices.shape[1] * matrices.shape[2]
        self._accumulator._fold(matrices.reshape(count, size), count)

    def _merge(self, other: "Covariance") -> None:
        self._accumulator.merge(other._accumulator)

    def _payload(self) -> dict:
        return {
            "sum": self._accumulator.sum_vector.tolist(),
            "outer": self._accumulator.outer_matrix.tolist(),
        }

    def _restore(self, payload: dict) -> None:
        self._accumulator = CovarianceAccumulator.from_state(
            self._shape[0], self._shape[1],
            np.asarray(payload["sum"], dtype=np.float64),
            np.asarray(payload["outer"], dtype=np.float64),
            int(payload["volume"]))

    def snapshot(self) -> "Covariance":
        # Trusted clone of already-validated state; leaves the staging
        # buffer behind so snapshots stay as small as their payloads.
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        source = self._accumulator
        total, outer = source._effective()
        frozen = CovarianceAccumulator.__new__(CovarianceAccumulator)
        frozen._shape = source._shape
        frozen._sum = total.copy()
        frozen._outer = outer.copy()
        frozen._volume = source._volume
        frozen._block = source._block
        frozen._fill = 0
        frozen._buffer = None
        frozen._scratch = None
        clone._accumulator = frozen
        return clone

    def _words(self) -> int:
        return self._size + self._size * self._size + 1

    @property
    def volume(self) -> int:
        return self._accumulator.volume

    def update(self, values, count: int = 1) -> None:
        matrices = self._normalize(values, count)
        if matrices.shape[0]:
            self._accumulator.add_batch(matrices)

    def merge(self, other: "Statistic") -> None:
        if other.kind != self.kind:
            raise ConfigurationError(
                f"cannot merge statistic kind {other.kind!r} into "
                f"{self.kind!r}")
        self._merge(other)

    def describe(self) -> str:
        return (f"covariance: volume={self.volume}, "
                f"{self._size}x{self._size} cross-moment matrix")


@register_statistic
class Histogram(Statistic):
    """Fixed-bin per-entry histograms, exactly mergeable.

    Every matrix entry gets its own counts over ``bins`` equal-width
    bins spanning ``[lo, hi)``, plus underflow and overflow counters —
    no realization is ever dropped, only coarsened.  Integer counts
    make merging exact and order-free.  The default range is
    deliberately wide; subclass and re-register under a new kind for a
    problem-specific range (see ``docs/api.md``).
    """

    kind = "histogram"

    #: Default binning; subclasses override for custom ranges.
    DEFAULT_BINS = 64
    DEFAULT_LO = -8.0
    DEFAULT_HI = 8.0

    def __init__(self, nrow: int, ncol: int, bins: int | None = None,
                 lo: float | None = None, hi: float | None = None) -> None:
        super().__init__(nrow, ncol)
        self._bins = int(bins if bins is not None else self.DEFAULT_BINS)
        self._lo = float(lo if lo is not None else self.DEFAULT_LO)
        self._hi = float(hi if hi is not None else self.DEFAULT_HI)
        if self._bins < 1:
            raise ConfigurationError(
                f"histogram needs >= 1 bin, got {self._bins}")
        if not (np.isfinite(self._lo) and np.isfinite(self._hi)) \
                or self._lo >= self._hi:
            raise ConfigurationError(
                f"histogram range must be finite with lo < hi, got "
                f"[{self._lo}, {self._hi})")
        # Column 0 is underflow, column bins+1 overflow.
        self._counts = np.zeros((self._size, self._bins + 2),
                                dtype=np.int64)
        self._inv_width = self._bins / (self._hi - self._lo)
        # The scaled value ``v * inv_width - shift`` equals
        # ``(v - lo) * inv_width + 1`` up to rounding: clamped to
        # [0, bins + 1] it is non-negative, so integer truncation is
        # floor, 0 is the underflow column and bins + 1 the overflow.
        self._shift = self._lo * self._inv_width - 1.0
        # Flat-code offset per entry: entry k owns code range
        # [k*(bins+2), (k+1)*(bins+2)).
        self._code_base = (np.arange(self._size, dtype=np.int64)
                           * (self._bins + 2))
        # Reused batch scratch; never part of snapshots or payloads.
        self._scaled: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._tiled_base: np.ndarray | None = None

    @property
    def bins(self) -> int:
        """Number of in-range bins."""
        return self._bins

    @property
    def bin_edges(self) -> np.ndarray:
        """The ``bins + 1`` bin edges over ``[lo, hi]``."""
        return np.linspace(self._lo, self._hi, self._bins + 1)

    @property
    def entry_counts(self) -> np.ndarray:
        """In-range counts per entry, shape ``(nrow * ncol, bins)``."""
        return self._counts[:, 1:-1].copy()

    @property
    def bin_counts(self) -> np.ndarray:
        """In-range counts aggregated over all entries, length ``bins``."""
        return self._counts[:, 1:-1].sum(axis=0)

    @property
    def underflow(self) -> int:
        """Values below ``lo``, summed over entries."""
        return int(self._counts[:, 0].sum())

    @property
    def overflow(self) -> int:
        """Values at or above ``hi``, summed over entries."""
        return int(self._counts[:, -1].sum())

    def _update(self, matrices: np.ndarray) -> None:
        count = matrices.shape[0]
        flat = matrices.reshape(count, self._size)
        need = count * self._size
        if self._scaled is None or self._scaled.size < need:
            self._scaled = np.empty(need, dtype=np.float64)
            self._codes = np.empty(need, dtype=np.int64)
            # Pre-tiled per-entry offsets: a contiguous add is several
            # times faster than broadcasting the (size,) base row.
            self._tiled_base = np.tile(self._code_base, count)
        scaled = self._scaled[:need].reshape(count, self._size)
        codes = self._codes[:need]
        np.multiply(flat, self._inv_width, out=scaled)
        scaled -= self._shift
        np.maximum(scaled, 0.0, out=scaled)
        np.minimum(scaled, self._bins + 1.0, out=scaled)
        np.copyto(codes, scaled.reshape(need), casting="unsafe")
        codes += self._tiled_base[:need]
        self._counts += np.bincount(
            codes, minlength=self._size * (self._bins + 2)
        ).reshape(self._size, self._bins + 2)

    def _merge(self, other: "Histogram") -> None:
        if (other._bins, other._lo, other._hi) \
                != (self._bins, self._lo, self._hi):
            raise ConfigurationError(
                f"cannot merge histograms with different binning: "
                f"{self._bins}@[{self._lo},{self._hi}) vs "
                f"{other._bins}@[{other._lo},{other._hi})")
        self._counts += other._counts

    def _payload(self) -> dict:
        return {
            "bins": self._bins,
            "lo": self._lo,
            "hi": self._hi,
            "counts": self._counts[:, 1:-1].tolist(),
            "underflow": self._counts[:, 0].tolist(),
            "overflow": self._counts[:, -1].tolist(),
        }

    def _restore(self, payload: dict) -> None:
        bins = int(payload["bins"])
        rebuilt = type(self)(self._shape[0], self._shape[1], bins=bins,
                             lo=float(payload["lo"]),
                             hi=float(payload["hi"]))
        counts = np.asarray(payload["counts"], dtype=np.int64)
        underflow = np.asarray(payload["underflow"], dtype=np.int64)
        overflow = np.asarray(payload["overflow"], dtype=np.int64)
        if counts.shape != (self._size, bins) \
                or underflow.shape != (self._size,) \
                or overflow.shape != (self._size,):
            raise ValueError("histogram count arrays have wrong shapes")
        if (counts < 0).any() or (underflow < 0).any() \
                or (overflow < 0).any():
            raise ValueError("histogram counts must be >= 0")
        rebuilt._counts[:, 1:-1] = counts
        rebuilt._counts[:, 0] = underflow
        rebuilt._counts[:, -1] = overflow
        self.__dict__.update(rebuilt.__dict__)

    def snapshot(self) -> "Histogram":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._counts = self._counts.copy()
        clone._scaled = None
        clone._codes = None
        clone._tiled_base = None
        return clone

    def _words(self) -> int:
        return self._size * (self._bins + 2) + 3

    def describe(self) -> str:
        return (f"histogram: volume={self._volume}, {self._bins} bins "
                f"over [{self._lo:g}, {self._hi:g}), "
                f"underflow={self.underflow}, overflow={self.overflow}")


@register_statistic
class Extrema(Statistic):
    """Per-entry running minimum and maximum.

    Min/max are associative and idempotent, so merging is exact in any
    order.  An empty statistic carries no extrema (payload nulls).
    """

    kind = "extrema"

    def __init__(self, nrow: int, ncol: int) -> None:
        super().__init__(nrow, ncol)
        self._min = np.full(self._shape, np.inf)
        self._max = np.full(self._shape, -np.inf)
        # Reused batch scratch; never part of snapshots or payloads.
        self._scratch: np.ndarray | None = None

    @property
    def minimum(self) -> np.ndarray:
        """Per-entry minima (``+inf`` where nothing accumulated)."""
        return self._min.copy()

    @property
    def maximum(self) -> np.ndarray:
        """Per-entry maxima (``-inf`` where nothing accumulated)."""
        return self._max.copy()

    def _update(self, matrices: np.ndarray) -> None:
        # Min/max are exact in any order, so reduce a transposed copy
        # along its contiguous axis — far faster than a strided
        # axis-0 reduction over the batch.
        count = matrices.shape[0]
        if self._scratch is None or self._scratch.shape[1] < count:
            self._scratch = np.empty((self._size, count))
        scratch = self._scratch[:, :count]
        scratch[:] = matrices.reshape(count, self._size).T
        np.minimum(self._min, scratch.min(axis=1).reshape(self._shape),
                   out=self._min)
        np.maximum(self._max, scratch.max(axis=1).reshape(self._shape),
                   out=self._max)

    def _merge(self, other: "Extrema") -> None:
        np.minimum(self._min, other._min, out=self._min)
        np.maximum(self._max, other._max, out=self._max)

    def _payload(self) -> dict:
        if self._volume == 0:
            return {"min": None, "max": None}
        return {"min": self._min.tolist(), "max": self._max.tolist()}

    def _restore(self, payload: dict) -> None:
        if payload["min"] is None or payload["max"] is None:
            if int(payload["volume"]) != 0:
                raise ValueError("non-empty extrema payload lacks bounds")
            return
        minimum = np.asarray(payload["min"], dtype=np.float64)
        maximum = np.asarray(payload["max"], dtype=np.float64)
        if minimum.shape != self._shape or maximum.shape != self._shape:
            raise ValueError("extrema arrays have wrong shapes")
        self._min = minimum
        self._max = maximum

    def snapshot(self) -> "Extrema":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._min = self._min.copy()
        clone._max = self._max.copy()
        clone._scratch = None
        return clone

    def _words(self) -> int:
        return 2 * self._size + 1

    def describe(self) -> str:
        if self._volume == 0:
            return "extrema: empty"
        return (f"extrema: volume={self._volume}, "
                f"min={self._min.min():g}, max={self._max.max():g}")


@register_statistic
class Counter(Statistic):
    """Per-entry sign counts: negative, zero and positive realizations.

    The cheapest useful event counter — e.g. the frequency a payoff
    ends in the money, or how often a trajectory entry pins at zero —
    and a template for custom event counters.  Integer counts merge
    exactly in any order.
    """

    kind = "counter"

    def __init__(self, nrow: int, ncol: int) -> None:
        super().__init__(nrow, ncol)
        self._negative = np.zeros(self._shape, dtype=np.int64)
        self._zero = np.zeros(self._shape, dtype=np.int64)
        self._positive = np.zeros(self._shape, dtype=np.int64)
        # Reused batch scratch; never part of snapshots or payloads.
        self._scratch: np.ndarray | None = None
        self._flags: np.ndarray | None = None

    @property
    def negative(self) -> np.ndarray:
        """Per-entry count of strictly negative realizations."""
        return self._negative.copy()

    @property
    def zero(self) -> np.ndarray:
        """Per-entry count of exactly-zero realizations."""
        return self._zero.copy()

    @property
    def positive(self) -> np.ndarray:
        """Per-entry count of strictly positive realizations."""
        return self._positive.copy()

    def _update(self, matrices: np.ndarray) -> None:
        # Sign counts are exact integers in any order: compare a
        # transposed copy and sum flags along the contiguous axis,
        # deriving the positive count from the other two.
        count = matrices.shape[0]
        if self._scratch is None or self._scratch.shape[1] < count:
            self._scratch = np.empty((self._size, count))
            self._flags = np.empty((self._size, count), dtype=bool)
        scratch = self._scratch[:, :count]
        flags = self._flags[:, :count]
        scratch[:] = matrices.reshape(count, self._size).T
        np.less(scratch, 0.0, out=flags)
        negative = flags.sum(axis=1)
        np.equal(scratch, 0.0, out=flags)
        zero = flags.sum(axis=1)
        self._negative += negative.reshape(self._shape)
        self._zero += zero.reshape(self._shape)
        self._positive += (count - negative - zero).reshape(self._shape)

    def _merge(self, other: "Counter") -> None:
        self._negative += other._negative
        self._zero += other._zero
        self._positive += other._positive

    def _payload(self) -> dict:
        return {
            "negative": self._negative.tolist(),
            "zero": self._zero.tolist(),
            "positive": self._positive.tolist(),
        }

    def _restore(self, payload: dict) -> None:
        for name in ("negative", "zero", "positive"):
            counts = np.asarray(payload[name], dtype=np.int64)
            if counts.shape != self._shape:
                raise ValueError(f"counter {name} array has wrong shape")
            if (counts < 0).any():
                raise ValueError("counter counts must be >= 0")
            setattr(self, f"_{name}", counts)

    def snapshot(self) -> "Counter":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._negative = self._negative.copy()
        clone._zero = self._zero.copy()
        clone._positive = self._positive.copy()
        clone._scratch = None
        clone._flags = None
        return clone

    def _words(self) -> int:
        return 3 * self._size + 1

    def describe(self) -> str:
        return (f"counter: volume={self._volume}, "
                f"negative={int(self._negative.sum())}, "
                f"zero={int(self._zero.sum())}, "
                f"positive={int(self._positive.sum())}")


# ---------------------------------------------------------------------------
# The per-worker set


class StatisticSet:
    """The statistics one worker accumulates and ships.

    Owns the run's declared statistics — the mandatory
    :class:`Moments` first, then the extras — and presents the two
    operations the worker loops need: fold a realization (or batch)
    into everything, and snapshot the extras for a data pass.  With no
    extras declared, both collapse to exactly the historical
    moment-only code path.
    """

    def __init__(self, statistics: Sequence[Statistic]) -> None:
        if not statistics or not isinstance(statistics[0], Moments):
            raise ConfigurationError(
                "a StatisticSet starts with the mandatory Moments "
                "statistic")
        shape = statistics[0].shape
        for statistic in statistics[1:]:
            if statistic.shape != shape:
                raise ConfigurationError(
                    f"statistic {statistic.kind!r} has shape "
                    f"{statistic.shape}, expected {shape}")
        self._moments = statistics[0]
        self._extras = tuple(statistics[1:])
        self._shape = shape

    @classmethod
    def for_run(cls, kinds: Sequence[str], nrow: int,
                ncol: int) -> "StatisticSet":
        """Instantiate the declared kinds for an ``nrow x ncol`` run."""
        kinds = normalize_statistics(kinds)
        return cls([create_statistic(kind, nrow, ncol) for kind in kinds])

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self._shape

    @property
    def moments(self) -> MomentAccumulator:
        """The moment accumulator (the worker hot loop's handle)."""
        return self._moments.accumulator

    @property
    def extras(self) -> tuple[Statistic, ...]:
        """The non-moment statistics, in declaration order."""
        return self._extras

    @property
    def kinds(self) -> tuple[str, ...]:
        """Every kind in this set, moments first."""
        return (self._moments.kind,
                *(statistic.kind for statistic in self._extras))

    def update(self, values, compute_time: float = 0.0) -> None:
        """Fold one realization into every statistic.

        The moment accumulator validates first (shape, finiteness) and
        raises before any statistic is touched, so a rejected
        realization never leaves the set half-updated.
        """
        self._moments.accumulator.add(values, compute_time=compute_time)
        for statistic in self._extras:
            statistic.update(values)

    def update_batch(self, values, compute_time: float = 0.0) -> None:
        """Fold a ``(B, nrow, ncol)`` batch into every statistic.

        The moment accumulator validates the whole stack (shape,
        finiteness) and raises before any extra is touched; the extras
        then fold the already-validated stack through their raw
        ``_update`` hooks, skipping per-statistic re-validation — this
        is what keeps piggybacked statistics cheap on the batched fast
        path (see ``benchmarks/test_bench_statistics_overhead.py``).
        """
        self._moments.accumulator.add_batch(values,
                                            compute_time=compute_time)
        if not self._extras:
            return
        matrices = np.asarray(values, dtype=np.float64)
        if matrices.ndim == 1:
            matrices = matrices.reshape(-1, 1, 1)
        count = matrices.shape[0]
        if not count:
            return
        for statistic in self._extras:
            statistic._update(matrices)
            statistic._volume += count

    def extras_snapshot(self) -> dict[str, Statistic] | None:
        """Frozen copies of the extras for a message, or None if none.

        None — not an empty dict — so the default moments-only message
        is byte-for-byte the historical one.
        """
        if not self._extras:
            return None
        return {statistic.kind: statistic.snapshot()
                for statistic in self._extras}

