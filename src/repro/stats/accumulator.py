"""Accumulation of sample moments over realizations.

Each worker keeps one :class:`MomentAccumulator` per run; after every
realization it adds the realization matrix, and on each ``perpass`` tick
it ships a :class:`MomentSnapshot` to the collector.  Snapshots are plain
data (sums, not means) precisely so that formula (5) averaging on the
collector is an exact sum — no precision is lost by averaging averages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stats.estimators import Estimates, estimates_from_moments

__all__ = ["MOMENT_WORDS_PER_ENTRY", "MomentSnapshot", "MomentAccumulator"]

#: Eight-byte state words shipped per matrix entry in a moment
#: snapshot — the §2.2 accounting behind the paper's "120 Kbytes for a
#: 1000 x 2 matrix" figure and the simulated cluster's cost model.
MOMENT_WORDS_PER_ENTRY = 8


@dataclass(frozen=True)
class MomentSnapshot:
    """Immutable copy of an accumulator's state at one instant.

    This is the payload of a worker-to-collector message and the unit of
    persistence in save-point files.

    Attributes:
        sum1: Elementwise realization sums (``nrow x ncol``).
        sum2: Elementwise squared-realization sums.
        volume: Number of realizations accumulated (``l_m``).
        compute_time: Seconds of simulation time behind this snapshot.
    """

    sum1: np.ndarray
    sum2: np.ndarray
    volume: int
    compute_time: float = 0.0

    def __post_init__(self) -> None:
        if self.sum1.shape != self.sum2.shape:
            raise ConfigurationError(
                f"snapshot moment shapes differ: {self.sum1.shape} vs "
                f"{self.sum2.shape}")
        if self.volume < 0:
            raise ConfigurationError(
                f"snapshot volume must be >= 0, got {self.volume}")
        if self.compute_time < 0.0:
            raise ConfigurationError(
                f"snapshot compute_time must be >= 0, got "
                f"{self.compute_time}")

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self.sum1.shape

    @property
    def nbytes(self) -> int:
        """Modelled wire size of the snapshot (cost-model bytes)."""
        return 8 * MOMENT_WORDS_PER_ENTRY * self.sum1.size

    def estimates(self) -> Estimates:
        """Turn the snapshot into result matrices (requires volume > 0)."""
        return estimates_from_moments(self.sum1, self.sum2, self.volume,
                                      self.compute_time)

    def to_dict(self) -> dict:
        """Serialize to plain Python types (for JSON save-points)."""
        return {
            "sum1": self.sum1.tolist(),
            "sum2": self.sum2.tolist(),
            "volume": int(self.volume),
            "compute_time": float(self.compute_time),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MomentSnapshot":
        """Deserialize a snapshot produced by :meth:`to_dict`."""
        try:
            return cls(
                sum1=np.asarray(data["sum1"], dtype=np.float64),
                sum2=np.asarray(data["sum2"], dtype=np.float64),
                volume=int(data["volume"]),
                compute_time=float(data.get("compute_time", 0.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed snapshot payload: {exc}") from exc

    @classmethod
    def zero(cls, nrow: int, ncol: int) -> "MomentSnapshot":
        """An empty snapshot of the given shape."""
        if nrow < 1 or ncol < 1:
            raise ConfigurationError(
                f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
        return cls(sum1=np.zeros((nrow, ncol)),
                   sum2=np.zeros((nrow, ncol)), volume=0)


class MomentAccumulator:
    """Mutable accumulator of first and second moments.

    Args:
        nrow: Rows of the realization matrix.
        ncol: Columns of the realization matrix.

    Scalar problems use a 1x1 matrix; :meth:`add` then also accepts a
    bare float.

    Example:
        >>> acc = MomentAccumulator(1, 1)
        >>> acc.add(2.0)
        >>> acc.add(4.0)
        >>> float(acc.estimates().mean[0, 0])
        3.0
    """

    def __init__(self, nrow: int, ncol: int) -> None:
        if nrow < 1 or ncol < 1:
            raise ConfigurationError(
                f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
        self._shape = (nrow, ncol)
        self._sum1 = np.zeros(self._shape, dtype=np.float64)
        self._sum2 = np.zeros(self._shape, dtype=np.float64)
        self._volume = 0
        self._compute_time = 0.0
        self._fold_stack: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self._shape

    @property
    def volume(self) -> int:
        """Number of realizations accumulated so far."""
        return self._volume

    @property
    def compute_time(self) -> float:
        """Total simulation seconds recorded via :meth:`add`."""
        return self._compute_time

    def add(self, realization, compute_time: float = 0.0) -> None:
        """Accumulate one realization of the random matrix.

        Args:
            realization: ``nrow x ncol`` array-like (a scalar is accepted
                for 1x1 problems).  Non-finite entries are rejected: a
                single NaN would silently poison every later estimate.
            compute_time: Seconds spent simulating this realization.
        """
        matrix = np.asarray(realization, dtype=np.float64)
        if matrix.shape == () and self._shape == (1, 1):
            matrix = matrix.reshape(1, 1)
        if matrix.shape != self._shape:
            raise ConfigurationError(
                f"realization shape {matrix.shape} does not match the "
                f"declared {self._shape}")
        if not np.all(np.isfinite(matrix)):
            raise ConfigurationError(
                "realization contains non-finite values")
        if compute_time < 0.0:
            raise ConfigurationError(
                f"compute_time must be >= 0, got {compute_time}")
        self._sum1 += matrix
        self._sum2 += matrix * matrix
        self._volume += 1
        self._compute_time += compute_time

    def add_batch(self, realizations, compute_time: float = 0.0) -> None:
        """Accumulate a batch of realizations in one vectorized fold.

        Bit-identical to calling :meth:`add` once per batch row, in
        order — the fold starts from the current sums and adds the rows
        sequentially, so batched and scalar runs produce the same
        moments to the last bit.  One shape/finiteness check covers the
        whole batch.

        Args:
            realizations: ``(B, nrow, ncol)`` array-like (a 1-D length-B
                vector is accepted for 1x1 problems).  Any non-finite
                entry rejects the entire batch, leaving the accumulator
                unchanged.
            compute_time: Seconds spent simulating the whole batch.
        """
        # Layout does not matter here: the chunked fold copies rows into
        # a C-contiguous stack before reducing, so even a broadcast view
        # (e.g. a constant batch) is accepted without materializing it.
        matrices = np.asarray(realizations, dtype=np.float64)
        if matrices.ndim == 1 and self._shape == (1, 1):
            matrices = matrices.reshape(-1, 1, 1)
        if matrices.ndim != 3 or matrices.shape[1:] != self._shape:
            raise ConfigurationError(
                f"batch shape {matrices.shape} does not match the "
                f"declared (B, {self._shape[0]}, {self._shape[1]})")
        if compute_time < 0.0:
            raise ConfigurationError(
                f"compute_time must be >= 0, got {compute_time}")
        count = matrices.shape[0]
        if count:
            # One check covers the whole batch, before any fold touches
            # the sums — a poisoned batch leaves the accumulator intact.
            if not np.isfinite(matrices).all():
                raise ConfigurationError(
                    "batch contains non-finite realization values")
            if self._shape == (1, 1):
                # A (B, 1, 1) axis-0 reduce has a single output element,
                # which numpy may sum pairwise; fold in Python to keep
                # the exact left-to-right association of repeated add().
                sum1 = self._sum1[0, 0].item()
                sum2 = self._sum2[0, 0].item()
                for value in matrices.ravel().tolist():
                    sum1 += value
                    sum2 += value * value
                self._sum1[0, 0] = sum1
                self._sum2[0, 0] = sum2
            else:
                self._fold_batch(matrices)
        self._volume += count
        self._compute_time += compute_time

    # Sequential-fold scratch: one (chunk+1, nrow, ncol) stack reused
    # across add_batch calls.  Chunks of 32 keep the stack resident in
    # L2 while the batch itself streams through once, which is what
    # makes the fold cheaper than a whole-batch stack.
    _FOLD_CHUNK = 32

    def _fold_batch(self, matrices: np.ndarray) -> None:
        """Fold ``(B, nrow, ncol)`` rows into the sums, exactly in order.

        An axis-0 reduce over a C-contiguous stack adds the slices
        strictly sequentially, and chaining ``reduce([s, chunk...])``
        per chunk preserves the overall left-to-right association, so
        the result is bit-identical to repeated :meth:`add`.
        """
        chunk = self._FOLD_CHUNK
        stack = self._fold_stack
        if stack is None or stack.shape[1:] != self._shape:
            stack = np.empty((chunk + 1,) + self._shape, dtype=np.float64)
            self._fold_stack = stack
        sum1 = self._sum1
        sum2 = self._sum2
        count = matrices.shape[0]
        done = 0
        while done < count:
            width = min(chunk, count - done)
            block = matrices[done:done + width]
            rows = stack[:width + 1]
            rows[0] = sum1
            rows[1:] = block
            sum1 = np.add.reduce(rows, axis=0)
            rows[0] = sum2
            np.multiply(block, block, out=rows[1:])
            sum2 = np.add.reduce(rows, axis=0)
            done += width
        self._sum1 = sum1
        self._sum2 = sum2

    def merge_snapshot(self, snapshot: MomentSnapshot) -> None:
        """Fold another accumulator's snapshot into this one (formula (5))."""
        if snapshot.shape != self._shape:
            raise ConfigurationError(
                f"snapshot shape {snapshot.shape} does not match "
                f"accumulator shape {self._shape}")
        self._sum1 += snapshot.sum1
        self._sum2 += snapshot.sum2
        self._volume += snapshot.volume
        self._compute_time += snapshot.compute_time

    def snapshot(self) -> MomentSnapshot:
        """Return an immutable copy of the current moments."""
        return MomentSnapshot(
            sum1=self._sum1.copy(), sum2=self._sum2.copy(),
            volume=self._volume, compute_time=self._compute_time)

    def reset(self) -> None:
        """Zero the accumulator (used after shipping a delta snapshot)."""
        self._sum1.fill(0.0)
        self._sum2.fill(0.0)
        self._volume = 0
        self._compute_time = 0.0

    def estimates(self) -> Estimates:
        """Return result matrices for the accumulated sample."""
        return self.snapshot().estimates()

    def __len__(self) -> int:
        return self._volume

    def __repr__(self) -> str:
        return (f"MomentAccumulator(shape={self._shape}, "
                f"volume={self._volume})")
