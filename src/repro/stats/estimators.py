"""Stochastic estimators of section 2.1.

Given ``L`` independent realizations of a random matrix ``[zeta_ij]``,
PARMONC reports

* the sample means ``mean_ij`` (formula (1)),
* the sample variances ``sigma2_ij = xi_ij - mean_ij**2`` where ``xi`` is
  the second-moment mean,
* the absolute errors ``eps_ij = 3 * sigma_ij / sqrt(L)`` (the half-width
  of the 0.997 confidence interval, formula (3) with gamma(0.997) = 3),
* the relative errors ``rho_ij = eps_ij / mean_ij * 100%``,

together with the upper bounds ``eps_max``, ``rho_max`` and
``sigma2_max`` over all matrix entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.exceptions import ConfigurationError

__all__ = [
    "CONFIDENCE_FACTOR",
    "CONFIDENCE_LEVEL",
    "confidence_factor",
    "Estimates",
    "estimates_from_moments",
    "computational_cost",
    "required_sample_volume",
]

#: The paper's default error multiplier: ``gamma(lambda) = 3``.
CONFIDENCE_FACTOR = 3.0

#: The confidence level corresponding to a factor of 3 under normality.
CONFIDENCE_LEVEL = 0.997


def confidence_factor(level: float) -> float:
    """Return ``gamma(level)``: the two-sided normal quantile for ``level``.

    ``confidence_factor(0.997)`` is approximately 3, the paper's choice.
    """
    if not 0.0 < level < 1.0:
        raise ConfigurationError(
            f"confidence level must be in (0, 1), got {level}")
    return float(_scipy_stats.norm.ppf(0.5 + level / 2.0))


@dataclass(frozen=True)
class Estimates:
    """The four PARMONC result matrices plus their upper bounds.

    Attributes:
        mean: Matrix of sample means ``[mean_ij]``.
        variance: Matrix of sample variances ``[sigma2_ij]``.
        abs_error: Matrix of absolute errors ``[eps_ij]``.
        rel_error: Matrix of relative errors ``[rho_ij]`` in percent;
            entries with zero sample mean are reported as ``inf``.
        volume: Total sample volume ``L``.
        mean_time: Mean computer time per realization in seconds
            (``tau_zeta``), 0.0 when timing was not collected.
    """

    mean: np.ndarray
    variance: np.ndarray
    abs_error: np.ndarray
    rel_error: np.ndarray
    volume: int
    mean_time: float = 0.0

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self.mean.shape

    @property
    def abs_error_max(self) -> float:
        """``eps_max``: upper bound over the absolute-error matrix."""
        return float(np.max(self.abs_error))

    @property
    def rel_error_max(self) -> float:
        """``rho_max``: upper bound over the relative-error matrix."""
        return float(np.max(self.rel_error))

    @property
    def variance_max(self) -> float:
        """``sigma2_max``: upper bound over the variance matrix."""
        return float(np.max(self.variance))

    def confidence_interval(self, level: float = CONFIDENCE_LEVEL
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Return elementwise ``(lower, upper)`` confidence bounds.

        Implements formula (3): ``mean +- gamma(level) * sigma / sqrt(L)``.
        """
        half_width = (confidence_factor(level)
                      * np.sqrt(self.variance / self.volume))
        return self.mean - half_width, self.mean + half_width

    def __str__(self) -> str:
        return (f"Estimates(shape={self.shape}, L={self.volume}, "
                f"eps_max={self.abs_error_max:.6g}, "
                f"rho_max={self.rel_error_max:.4g}%)")


def estimates_from_moments(sum1: np.ndarray, sum2: np.ndarray,
                           volume: int, total_time: float = 0.0) -> Estimates:
    """Build :class:`Estimates` from raw moment sums.

    Args:
        sum1: Elementwise sums of realizations, ``sum_i zeta_ij``.
        sum2: Elementwise sums of squares, ``sum_i zeta_ij**2``.
        volume: Sample volume ``L`` (must be positive).
        total_time: Total compute seconds spent on the ``L`` realizations.

    Variances are clipped at zero: rounding can push the difference
    ``xi - mean**2`` infinitesimally negative for (near-)deterministic
    entries.
    """
    sum1 = np.asarray(sum1, dtype=np.float64)
    sum2 = np.asarray(sum2, dtype=np.float64)
    if sum1.shape != sum2.shape:
        raise ConfigurationError(
            f"moment matrices must share a shape, got {sum1.shape} "
            f"and {sum2.shape}")
    if volume <= 0:
        raise ConfigurationError(
            f"sample volume must be positive, got {volume}")
    mean = sum1 / volume
    second = sum2 / volume
    variance = np.maximum(second - mean ** 2, 0.0)
    abs_error = CONFIDENCE_FACTOR * np.sqrt(variance / volume)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel_error = np.where(
            mean != 0.0,
            np.abs(abs_error / mean) * 100.0,
            np.where(abs_error == 0.0, 0.0, np.inf))
    return Estimates(
        mean=mean, variance=variance, abs_error=abs_error,
        rel_error=rel_error, volume=int(volume),
        mean_time=total_time / volume if volume else 0.0)


def computational_cost(mean_time: float, variance: float) -> float:
    """Return the estimator cost ``C(zeta) = tau_zeta * Var(zeta)`` (§2.2).

    The quantity the parallelization divides by ``M``: halving the cost
    means reaching a target error in half the computer time.
    """
    if mean_time < 0.0 or variance < 0.0:
        raise ConfigurationError(
            "mean_time and variance must be non-negative")
    return mean_time * variance


def required_sample_volume(variance: float, target_abs_error: float,
                           factor: float = CONFIDENCE_FACTOR) -> int:
    """Return the sample volume needed to reach a target absolute error.

    Inverts ``eps = factor * sqrt(variance / L)``; the proportionality of
    ``L`` to ``Var(zeta)`` is the paper's motivation for parallelizing.
    """
    if variance < 0.0:
        raise ConfigurationError(f"variance must be >= 0, got {variance}")
    if target_abs_error <= 0.0:
        raise ConfigurationError(
            f"target absolute error must be > 0, got {target_abs_error}")
    if variance == 0.0:
        return 1
    return max(1, math.ceil(factor ** 2 * variance / target_abs_error ** 2))
