"""Covariance accumulation between realization-matrix entries.

PARMONC's result matrices are entry-wise; errors of *derived*
quantities (a difference of two entries, a ratio's delta-method error,
a contrast across output times) additionally need the covariances
between entries, because entries of one realization are usually far
from independent — the two components of an SDE trajectory, or call
and put payoffs from the same terminal price.

:class:`CovarianceAccumulator` tracks the full second-moment matrix of
the flattened realization vector.  It composes with the rest of the
library the same way :class:`~repro.stats.accumulator.MomentAccumulator`
does (add / snapshot-free merging via sums), and is intended for small
matrices (the cross-moment storage is ``(n*m)**2``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CovarianceAccumulator"]


class CovarianceAccumulator:
    """Accumulates mean vector and covariance matrix of realizations.

    Args:
        nrow: Rows of the realization matrix.
        ncol: Columns of the realization matrix; the flattened entry
            order is row-major.

    Example:
        >>> acc = CovarianceAccumulator(1, 2)
        >>> for pair in ([1.0, 2.0], [3.0, 6.0], [2.0, 4.0]):
        ...     acc.add([pair])
        >>> bool(acc.covariance()[0, 1] > 0)   # perfectly correlated
        True
    """

    def __init__(self, nrow: int, ncol: int) -> None:
        if nrow < 1 or ncol < 1:
            raise ConfigurationError(
                f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
        self._shape = (nrow, ncol)
        size = nrow * ncol
        if size > 4096:
            raise ConfigurationError(
                f"covariance tracking stores (n*m)**2 = {size ** 2} "
                f"cross-moments; limit is 4096 entries")
        self._sum = np.zeros(size, dtype=np.float64)
        self._outer = np.zeros((size, size), dtype=np.float64)
        self._volume = 0
        # Realizations are staged in fixed blocks of _block rows before
        # folding (see _settle_block); the width depends only on the
        # matrix size, so block boundaries — and therefore the folded
        # bit pattern — are a pure function of the realization
        # sequence, never of how callers segment their batches.
        span = size + size * size
        self._block = max(1, min(self._BLOCK_ROWS,
                                 self._SCRATCH_BUDGET // (span * 8)))
        self._fill = 0
        self._buffer: np.ndarray | None = None
        self._scratch: np.ndarray | None = None

    @classmethod
    def from_state(cls, nrow: int, ncol: int, sum_vector, outer_matrix,
                   volume: int) -> "CovarianceAccumulator":
        """Rebuild an accumulator from persisted state sums.

        Args:
            nrow: Rows of the realization matrix.
            ncol: Columns of the realization matrix.
            sum_vector: Flat entry sums, length ``nrow * ncol``.
            outer_matrix: Cross-moment sums, ``(n*m, n*m)``.
            volume: Realizations behind the sums.
        """
        accumulator = cls(nrow, ncol)
        size = nrow * ncol
        sum_vector = np.asarray(sum_vector, dtype=np.float64)
        outer_matrix = np.asarray(outer_matrix, dtype=np.float64)
        if sum_vector.shape != (size,) \
                or outer_matrix.shape != (size, size):
            raise ConfigurationError(
                f"covariance state arrays have shapes {sum_vector.shape} "
                f"and {outer_matrix.shape}, expected ({size},) and "
                f"({size}, {size})")
        if not (np.isfinite(sum_vector).all()
                and np.isfinite(outer_matrix).all()):
            raise ConfigurationError(
                "covariance state contains non-finite values")
        if volume < 0:
            raise ConfigurationError(
                f"volume must be >= 0, got {volume}")
        accumulator._sum = sum_vector.copy()
        accumulator._outer = outer_matrix.copy()
        accumulator._volume = int(volume)
        return accumulator

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self._shape

    @property
    def volume(self) -> int:
        """Realizations accumulated so far."""
        return self._volume

    @property
    def sum_vector(self) -> np.ndarray:
        """Copy of the flat entry sums (persistence state)."""
        total, _outer = self._effective()
        return total.copy()

    @property
    def outer_matrix(self) -> np.ndarray:
        """Copy of the cross-moment sums (persistence state)."""
        _total, outer = self._effective()
        return outer.copy()

    def add(self, realization) -> None:
        """Accumulate one realization matrix."""
        matrix = np.asarray(realization, dtype=np.float64)
        if matrix.shape != self._shape:
            raise ConfigurationError(
                f"realization shape {matrix.shape} does not match "
                f"{self._shape}")
        if not np.all(np.isfinite(matrix)):
            raise ConfigurationError(
                "realization contains non-finite values")
        self._fold(matrix.reshape(1, -1), 1)

    # Rows per staging block, shrunk so the (span, block) product
    # scratch stays about a megabyte even for wide matrices (a block
    # of 1 falls back to plain outer-product adds — same bits, since a
    # one-row fold is the row itself).
    _BLOCK_ROWS = 1_024
    _SCRATCH_BUDGET = 1 << 20

    def add_batch(self, realizations) -> None:
        """Accumulate a batch of realizations in one vectorized fold.

        Bit-identical to calling :meth:`add` once per batch row, in
        order: rows land in the staging buffer at positions fixed by
        their arrival index, and complete blocks fold with the same
        contiguous-axis reduction either way — the resulting bit
        pattern is a pure function of the realization sequence (on a
        fixed NumPy build), so batched and scalar runs, and backends
        with different batch widths, agree to the last bit.

        Args:
            realizations: ``(B, nrow, ncol)`` array-like (a 1-D
                length-B vector is accepted for 1x1 problems).  Any
                non-finite entry rejects the entire batch, leaving the
                accumulator unchanged.
        """
        matrices = np.asarray(realizations, dtype=np.float64)
        if matrices.ndim == 1 and self._shape == (1, 1):
            matrices = matrices.reshape(-1, 1, 1)
        if matrices.ndim != 3 or matrices.shape[1:] != self._shape:
            raise ConfigurationError(
                f"batch shape {matrices.shape} does not match the "
                f"declared (B, {self._shape[0]}, {self._shape[1]})")
        count = matrices.shape[0]
        if not count:
            return
        if not np.isfinite(matrices).all():
            raise ConfigurationError(
                "batch contains non-finite realization values")
        size = self._sum.size
        self._fold(matrices.reshape(count, size), count)

    def _fold(self, flat: np.ndarray, count: int) -> None:
        """Stage validated ``(count, size)`` rows, folding full blocks.

        Trusted fast path: callers guarantee ``flat`` is finite and
        correctly shaped (``add_batch`` validates;
        :class:`~repro.stats.statistic.StatisticSet` validates once via
        the moment accumulator and feeds every statistic directly).
        """
        if self._buffer is None:
            self._buffer = np.empty((self._block, self._sum.size),
                                    dtype=np.float64)
        size = self._sum.size
        done = 0
        while done < count:
            if self._fill == 0 and count - done >= self._block:
                # Aligned full block: fold straight from the caller's
                # rows — same positions, same fold, no staging copy.
                totals = self._fold_rows(flat[done:done + self._block])
                done += self._block
            else:
                width = min(self._block - self._fill, count - done)
                self._buffer[self._fill:self._fill + width] = \
                    flat[done:done + width]
                self._fill += width
                done += width
                if self._fill != self._block:
                    continue
                totals = self._fold_rows(self._buffer)
                self._fill = 0
            self._sum += totals[:size]
            self._outer += totals[size:].reshape(size, size)
        self._volume += count

    def _fold_rows(self, rows: np.ndarray) -> np.ndarray:
        """Deterministic ``[sum(x), vec(sum(x xᵀ))]`` of staged rows.

        The products live in a ``(span, n)`` scratch so every
        reduction runs over the contiguous axis — NumPy's pairwise
        summation there is a fixed algorithm of ``n`` alone, making
        the result independent of how the rows arrived.
        """
        n, size = rows.shape
        if self._block == 1:
            row = rows[0]
            return np.concatenate([row, np.outer(row, row).ravel()])
        span = size + size * size
        if self._scratch is None:
            self._scratch = np.empty((span, self._block),
                                     dtype=np.float64)
        scratch = self._scratch[:, :n]
        scratch[:size] = rows.T
        for i in range(size):
            for j in range(i, size):
                out = scratch[size + i * size + j]
                np.multiply(scratch[i], scratch[j], out=out)
                if j > i:
                    scratch[size + j * size + i] = out
        return np.add.reduce(scratch, axis=1)

    def _effective(self) -> tuple[np.ndarray, np.ndarray]:
        """Totals including any partially filled staging block."""
        if not self._fill:
            return self._sum, self._outer
        totals = self._fold_rows(self._buffer[:self._fill])
        size = self._sum.size
        return (self._sum + totals[:size],
                self._outer + totals[size:].reshape(size, size))

    def merge(self, other: "CovarianceAccumulator") -> None:
        """Fold another accumulator in (exact, formula-(5) style)."""
        if other.shape != self._shape:
            raise ConfigurationError(
                f"cannot merge shapes {self._shape} and {other.shape}")
        mine = self._effective()
        theirs = other._effective()
        self._sum = mine[0] + theirs[0]
        self._outer = mine[1] + theirs[1]
        self._fill = 0
        self._volume += other._volume

    def mean(self) -> np.ndarray:
        """Mean matrix, shape ``(nrow, ncol)``."""
        self._require_volume(1)
        total, _outer = self._effective()
        return (total / self._volume).reshape(self._shape)

    def covariance(self) -> np.ndarray:
        """Sample covariance of the flattened entries (biased, /L)."""
        self._require_volume(2)
        total, outer = self._effective()
        mean = total / self._volume
        return outer / self._volume - np.outer(mean, mean)

    def correlation(self) -> np.ndarray:
        """Correlation matrix; entries with zero variance yield 0."""
        covariance = self.covariance()
        stddev = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
        with np.errstate(divide="ignore", invalid="ignore"):
            matrix = covariance / np.outer(stddev, stddev)
        matrix[~np.isfinite(matrix)] = 0.0
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def contrast_error(self, weights, factor: float = 3.0) -> float:
        """Error bound of a linear combination of matrix entries.

        For ``theta = sum_k w_k zeta_k`` the estimator's error is
        ``factor * sqrt(w' Sigma w / L)`` — the §2.1 formula with the
        full covariance in place of the marginal variance.

        Args:
            weights: ``(nrow, ncol)`` (or flat) weight array.
            factor: Confidence multiplier (3 = the paper's 0.997).
        """
        self._require_volume(2)
        vector = np.asarray(weights, dtype=np.float64).ravel()
        if vector.size != self._sum.size:
            raise ConfigurationError(
                f"weights must have {self._sum.size} entries, got "
                f"{vector.size}")
        variance = float(vector @ self.covariance() @ vector)
        return factor * math.sqrt(max(variance, 0.0) / self._volume)

    def _require_volume(self, minimum: int) -> None:
        if self._volume < minimum:
            raise ConfigurationError(
                f"need at least {minimum} realizations, have "
                f"{self._volume}")

    def __repr__(self) -> str:
        return (f"CovarianceAccumulator(shape={self._shape}, "
                f"volume={self._volume})")
