"""Covariance accumulation between realization-matrix entries.

PARMONC's result matrices are entry-wise; errors of *derived*
quantities (a difference of two entries, a ratio's delta-method error,
a contrast across output times) additionally need the covariances
between entries, because entries of one realization are usually far
from independent — the two components of an SDE trajectory, or call
and put payoffs from the same terminal price.

:class:`CovarianceAccumulator` tracks the full second-moment matrix of
the flattened realization vector.  It composes with the rest of the
library the same way :class:`~repro.stats.accumulator.MomentAccumulator`
does (add / snapshot-free merging via sums), and is intended for small
matrices (the cross-moment storage is ``(n*m)**2``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CovarianceAccumulator"]


class CovarianceAccumulator:
    """Accumulates mean vector and covariance matrix of realizations.

    Args:
        nrow: Rows of the realization matrix.
        ncol: Columns of the realization matrix; the flattened entry
            order is row-major.

    Example:
        >>> acc = CovarianceAccumulator(1, 2)
        >>> for pair in ([1.0, 2.0], [3.0, 6.0], [2.0, 4.0]):
        ...     acc.add([pair])
        >>> bool(acc.covariance()[0, 1] > 0)   # perfectly correlated
        True
    """

    def __init__(self, nrow: int, ncol: int) -> None:
        if nrow < 1 or ncol < 1:
            raise ConfigurationError(
                f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
        self._shape = (nrow, ncol)
        size = nrow * ncol
        if size > 4096:
            raise ConfigurationError(
                f"covariance tracking stores (n*m)**2 = {size ** 2} "
                f"cross-moments; limit is 4096 entries")
        self._sum = np.zeros(size, dtype=np.float64)
        self._outer = np.zeros((size, size), dtype=np.float64)
        self._volume = 0

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return self._shape

    @property
    def volume(self) -> int:
        """Realizations accumulated so far."""
        return self._volume

    def add(self, realization) -> None:
        """Accumulate one realization matrix."""
        matrix = np.asarray(realization, dtype=np.float64)
        if matrix.shape != self._shape:
            raise ConfigurationError(
                f"realization shape {matrix.shape} does not match "
                f"{self._shape}")
        if not np.all(np.isfinite(matrix)):
            raise ConfigurationError(
                "realization contains non-finite values")
        flat = matrix.ravel()
        self._sum += flat
        self._outer += np.outer(flat, flat)
        self._volume += 1

    def merge(self, other: "CovarianceAccumulator") -> None:
        """Fold another accumulator in (exact, formula-(5) style)."""
        if other.shape != self._shape:
            raise ConfigurationError(
                f"cannot merge shapes {self._shape} and {other.shape}")
        self._sum += other._sum
        self._outer += other._outer
        self._volume += other._volume

    def mean(self) -> np.ndarray:
        """Mean matrix, shape ``(nrow, ncol)``."""
        self._require_volume(1)
        return (self._sum / self._volume).reshape(self._shape)

    def covariance(self) -> np.ndarray:
        """Sample covariance of the flattened entries (biased, /L)."""
        self._require_volume(2)
        mean = self._sum / self._volume
        return self._outer / self._volume - np.outer(mean, mean)

    def correlation(self) -> np.ndarray:
        """Correlation matrix; entries with zero variance yield 0."""
        covariance = self.covariance()
        stddev = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
        with np.errstate(divide="ignore", invalid="ignore"):
            matrix = covariance / np.outer(stddev, stddev)
        matrix[~np.isfinite(matrix)] = 0.0
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def contrast_error(self, weights, factor: float = 3.0) -> float:
        """Error bound of a linear combination of matrix entries.

        For ``theta = sum_k w_k zeta_k`` the estimator's error is
        ``factor * sqrt(w' Sigma w / L)`` — the §2.1 formula with the
        full covariance in place of the marginal variance.

        Args:
            weights: ``(nrow, ncol)`` (or flat) weight array.
            factor: Confidence multiplier (3 = the paper's 0.997).
        """
        self._require_volume(2)
        vector = np.asarray(weights, dtype=np.float64).ravel()
        if vector.size != self._sum.size:
            raise ConfigurationError(
                f"weights must have {self._sum.size} entries, got "
                f"{vector.size}")
        variance = float(vector @ self.covariance() @ vector)
        return factor * math.sqrt(max(variance, 0.0) / self._volume)

    def _require_volume(self, minimum: int) -> None:
        if self._volume < minimum:
            raise ConfigurationError(
                f"need at least {minimum} realizations, have "
                f"{self._volume}")

    def __repr__(self) -> str:
        return (f"CovarianceAccumulator(shape={self._shape}, "
                f"volume={self._volume})")
