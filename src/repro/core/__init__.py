"""The library's primary public surface: ``parmonc`` and friends."""

from __future__ import annotations

from repro.core.batched import batched_realization
from repro.core.parmonc import BACKENDS, parmonc
from repro.core.run import MonteCarloRun
from repro.core.sweep import SweepPoint, SweepResult, parameter_sweep

__all__ = ["parmonc", "MonteCarloRun", "BACKENDS",
           "batched_realization", "parameter_sweep", "SweepPoint",
           "SweepResult"]
