"""Batching cheap realizations.

When a single realization costs less than the runtime's bookkeeping
(~15 us), simulate ``k`` of them per call and return their mean: the
batched variable is still a realization in the PARMONC sense (one value
per substream, finite variance), the estimator of its mean is unchanged
and exactly unbiased, and the per-call variance drops by ``k`` while
the per-call cost grows by ``k`` — so the error-versus-wall-time
trade-off is identical, minus the overhead.

Error accounting caveat: the reported ``eps`` then bounds the error of
the *batched* variable from ``L`` batch samples — numerically the same
bound as ``k * L`` raw samples, which is the point.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["batched_realization"]


def batched_realization(routine: Callable[[Lcg128], object],
                        batch: int) -> Callable[[Lcg128], np.ndarray]:
    """Wrap a routine to simulate ``batch`` copies per call.

    The copies draw sequentially from the call's substream (each
    realization substream holds 2**43 numbers — thousands of cheap
    copies fit comfortably), so the batched routine remains a pure
    function of its stream.

    Args:
        routine: One-argument realization routine.
        batch: Copies per call; must be >= 1.

    Example:
        >>> from repro.rng.streams import StreamTree
        >>> wrapped = batched_realization(lambda rng: rng.random(), 100)
        >>> value = wrapped(StreamTree().rng(0, 0, 0))
        >>> 0.3 < float(value) < 0.7
        True
    """
    if not callable(routine):
        raise ConfigurationError("routine must be callable")
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")

    def batched(rng: Lcg128) -> np.ndarray:
        total = np.asarray(routine(rng), dtype=np.float64).copy()
        for _ in range(batch - 1):
            total += np.asarray(routine(rng), dtype=np.float64)
        return total / batch

    return batched
