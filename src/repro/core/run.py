"""A Pythonic, resumable wrapper around :func:`repro.core.parmonc`.

Where :func:`parmonc` mirrors the C calling convention,
:class:`MonteCarloRun` manages the session lifecycle for you: the first
:meth:`run` starts fresh, every :meth:`resume` picks an unused
``seqnum`` automatically and folds earlier sessions in, and
:meth:`run_until` keeps resuming until a target absolute error is
reached — the workflow the paper's "endless simulation" example gestures
at, made explicit.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.parmonc import parmonc
from repro.exceptions import ConfigurationError, ResumeError
from repro.runtime.files import DataDirectory
from repro.runtime.result import RunResult
from repro.runtime.worker import RealizationRoutine

__all__ = ["MonteCarloRun"]


class MonteCarloRun:
    """Lifecycle manager for a resumable stochastic simulation.

    Args:
        realization: The user realization routine.
        nrow: Rows of the realization matrix.
        ncol: Columns of the realization matrix.
        workdir: Where ``parmonc_data`` lives; sessions of the same run
            must share it.
        processors: Default processor count for sessions.
        backend: Default backend name.
        **defaults: Extra keyword defaults forwarded to :func:`parmonc`
            (``perpass``, ``peraver``, ``leaps``, ...).

    Example:
        >>> import tempfile
        >>> def half(rng):
        ...     return rng.random()
        >>> with tempfile.TemporaryDirectory() as tmp:
        ...     run = MonteCarloRun(half, workdir=tmp)
        ...     first = run.run(maxsv=200)
        ...     second = run.resume(maxsv=200)
        >>> second.total_volume
        400
    """

    def __init__(self, realization: RealizationRoutine, nrow: int = 1,
                 ncol: int = 1, *, workdir: str | Path | None = None,
                 processors: int = 1, backend: str = "sequential",
                 **defaults) -> None:
        self._realization = realization
        self._nrow = nrow
        self._ncol = ncol
        self._workdir = Path(workdir) if workdir is not None else Path.cwd()
        self._processors = processors
        self._backend = backend
        self._defaults = defaults
        self._last_result: RunResult | None = None

    @property
    def workdir(self) -> Path:
        """The run's working directory."""
        return self._workdir

    @property
    def last_result(self) -> RunResult | None:
        """Result of the most recent session, if any."""
        return self._last_result

    def _data(self) -> DataDirectory:
        return DataDirectory(self._workdir)

    def _next_seqnum(self) -> int:
        """First "experiments" subsequence not used by earlier sessions."""
        data = self._data()
        if not data.has_savepoint():
            return 0
        _, meta = data.load_savepoint()
        return max(meta.used_seqnums) + 1

    def run(self, maxsv: int, *, seqnum: int = 0, **overrides) -> RunResult:
        """Start a fresh simulation (``res=0``), discarding prior results."""
        self._last_result = self._launch(maxsv=maxsv, res=0, seqnum=seqnum,
                                         **overrides)
        return self._last_result

    def resume(self, maxsv: int, *, seqnum: int | None = None,
               **overrides) -> RunResult:
        """Resume the previous simulation (``res=1``).

        Picks the next unused ``seqnum`` automatically unless one is
        given explicitly.
        """
        if not self._data().has_savepoint():
            raise ResumeError(
                f"nothing to resume under {self._workdir}; call run() "
                f"first")
        chosen = seqnum if seqnum is not None else self._next_seqnum()
        self._last_result = self._launch(maxsv=maxsv, res=1, seqnum=chosen,
                                         **overrides)
        return self._last_result

    def run_until(self, target_abs_error: float, *,
                  session_volume: int = 1000,
                  max_sessions: int = 100, **overrides) -> RunResult:
        """Run sessions until ``eps_max`` drops below the target.

        Args:
            target_abs_error: Stop once the absolute-error upper bound
                is at or below this value.
            session_volume: ``maxsv`` of each session.
            max_sessions: Hard cap on sessions (the error may stagnate
                if the variance is badly underestimated early on).

        Returns:
            The final session's result.
        """
        if target_abs_error <= 0.0:
            raise ConfigurationError(
                f"target_abs_error must be > 0, got {target_abs_error}")
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}")
        result = (self.resume(session_volume, **overrides)
                  if self._data().has_savepoint()
                  else self.run(session_volume, **overrides))
        sessions = 1
        while (result.estimates.abs_error_max > target_abs_error
               and sessions < max_sessions):
            result = self.resume(session_volume, **overrides)
            sessions += 1
        return result

    def _launch(self, **kwargs) -> RunResult:
        merged = dict(self._defaults)
        merged.update(kwargs)
        merged.setdefault("processors", self._processors)
        merged.setdefault("backend", self._backend)
        return parmonc(self._realization, self._nrow, self._ncol,
                       workdir=self._workdir, **merged)
