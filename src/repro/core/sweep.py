"""Parameter studies: one stochastic experiment per parameter value.

A sweep runs the same kind of simulation across a list of parameter
values — absorption coefficients, temperatures, strikes.  The
PARMONC-idiomatic way to do this is to give every point its **own
"experiments" subsequence** (`seqnum`), so the per-point estimates are
mutually independent and the whole study remains exactly reproducible.
:func:`parameter_sweep` packages that pattern, collecting the per-point
estimates into a renderable table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.parmonc import parmonc
from repro.exceptions import ConfigurationError
from repro.runtime.result import RunResult
from repro.runtime.worker import RealizationRoutine

__all__ = ["SweepPoint", "SweepResult", "parameter_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter study.

    Attributes:
        value: The swept parameter value.
        seqnum: The experiments subsequence the point consumed.
        result: The point's :class:`RunResult`.
    """

    value: Any
    seqnum: int
    result: RunResult

    @property
    def mean(self) -> float:
        """Shortcut: the (0, 0) sample mean."""
        return float(self.result.estimates.mean[0, 0])

    @property
    def abs_error(self) -> float:
        """Shortcut: the (0, 0) absolute error."""
        return float(self.result.estimates.abs_error[0, 0])


@dataclass(frozen=True)
class SweepResult:
    """All points of a parameter study, in sweep order."""

    points: tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def values(self) -> list[Any]:
        """The swept parameter values."""
        return [point.value for point in self.points]

    def means(self) -> list[float]:
        """The (0, 0) sample means, in sweep order."""
        return [point.mean for point in self.points]

    def table(self, value_label: str = "value",
              mean_label: str = "mean") -> str:
        """Render the study as a fixed-width text table."""
        lines = [f"{value_label:>14s}  {mean_label:>12s}  "
                 f"{'3-sigma':>10s}  {'L':>8s}"]
        for point in self.points:
            lines.append(
                f"{point.value!s:>14s}  {point.mean:12.6g}  "
                f"{point.abs_error:10.3g}  "
                f"{point.result.total_volume:8d}")
        return "\n".join(lines)


def parameter_sweep(realization_factory: Callable[[Any],
                                                  RealizationRoutine],
                    values: Sequence[Any], maxsv: int, *,
                    nrow: int = 1, ncol: int = 1,
                    seqnum_start: int = 0,
                    **parmonc_kwargs) -> SweepResult:
    """Run one independent experiment per parameter value.

    Args:
        realization_factory: Maps a parameter value to a realization
            routine (e.g. ``lambda d: make_realization(SlabProblem(
            absorption=d))``).
        values: The parameter values, one experiment each.
        maxsv: Sample volume per experiment.
        nrow: Realization matrix rows.
        ncol: Realization matrix columns.
        seqnum_start: First experiments subsequence to use; point ``k``
            consumes ``seqnum_start + k``.
        **parmonc_kwargs: Forwarded to :func:`repro.parmonc`
            (``processors``, ``backend``, ...).  ``use_files`` defaults
            to False — a sweep is an in-memory study; pass distinct
            ``workdir`` values yourself if you want per-point result
            files.

    Returns:
        A :class:`SweepResult` with one point per value, in order.
    """
    if not values:
        raise ConfigurationError("parameter sweep needs at least one value")
    if "seqnum" in parmonc_kwargs or "res" in parmonc_kwargs:
        raise ConfigurationError(
            "seqnum/res are managed by the sweep; use seqnum_start")
    parmonc_kwargs.setdefault("use_files", False)
    points = []
    for offset, value in enumerate(values):
        seqnum = seqnum_start + offset
        routine = realization_factory(value)
        result = parmonc(routine, nrow=nrow, ncol=ncol, maxsv=maxsv,
                         seqnum=seqnum, **parmonc_kwargs)
        points.append(SweepPoint(value=value, seqnum=seqnum,
                                 result=result))
    return SweepResult(points=tuple(points))
